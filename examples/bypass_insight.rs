//! The §6.3 bypass use case end to end: CacheMind identifies dead-on-arrival
//! PCs on mcf, the LRU replacement logic gets a conditional bypass for them,
//! and the hit-rate/IPC deltas are measured.
//!
//! Run with: `cargo run --release --example bypass_insight`

use cachemind_suite::core::insights::bypass;
use cachemind_suite::prelude::*;

fn main() {
    println!("Running the bypass-signature use case on mcf (LRU base policy) ...\n");
    let report = bypass::run(Scale::Small, 10);

    println!("{}", report.transcript);
    println!(
        "Bypassed {} PCs: {}",
        report.bypassed_pcs.len(),
        report.bypassed_pcs.iter().map(|p| format!("{p}")).collect::<Vec<_>>().join(", ")
    );
    println!(
        "Hit rate: {:.2}% -> {:.2}% ({:+.2}% relative)",
        report.base_hit_rate * 100.0,
        report.bypass_hit_rate * 100.0,
        report.relative_hit_gain_percent
    );
    println!(
        "IPC:      {:.5} -> {:.5} ({:+.2}% speedup)",
        report.base_ipc, report.bypass_ipc, report.speedup_percent
    );
    println!("\n(The paper reports +7.66% relative hit rate and +2.04% IPC on real mcf.)");
}
