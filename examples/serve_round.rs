//! Minimal serving-subsystem tour: build a sharded database, open two chat
//! sessions, answer one batched round, and print the transcripts.
//!
//! ```sh
//! cargo run --release --example serve_round
//! ```

use cachemind_suite::serve::engine::{ServeConfig, ServeEngine};
use cachemind_suite::serve::protocol::AskRequest;
use cachemind_suite::tracedb::{TraceDatabaseBuilder, TraceStore};

fn main() {
    let db = TraceDatabaseBuilder::quick_demo()
        .shards(3)
        .try_build_sharded()
        .expect("demo names are valid");
    println!("sharded database: {} traces across {} shards", db.len(), db.num_shards());

    let engine = ServeEngine::over(db, ServeConfig { threads: Some(2), ..Default::default() });
    let alice = engine.open_session();
    let bob = engine.open_session();

    let round = vec![
        AskRequest::in_session(
            alice,
            "What is the overall miss rate of the mcf workload under LRU?",
        ),
        AskRequest::in_session(bob, "Which policy has the lowest miss rate in astar?"),
        AskRequest::in_session(alice, "List all unique PCs in the mcf trace under LRU."),
    ];
    for response in engine.ask_round(&round) {
        println!("\nsession {} turn {}:", response.session, response.turn);
        println!("  {}", response.answer.as_deref().unwrap_or("<error>"));
    }

    println!("\n--- transcripts ---");
    for (name, id) in [("alice", alice), ("bob", bob)] {
        println!("{name} ({} turns):", engine.transcript(id).map(|t| t.len()).unwrap_or(0));
        for (q, _) in engine.transcript(id).unwrap_or_default() {
            println!("  Q: {q}");
        }
    }
}
