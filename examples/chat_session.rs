//! A multi-turn analysis session, in the style of the paper's Figure 13
//! set-hotness chat: each answer feeds the next question, with conversation
//! memory retaining intermediate findings.
//!
//! Run with: `cargo run --example chat_session`

use cachemind_suite::prelude::*;

fn main() {
    let db = TraceDatabaseBuilder::quick_demo().build();
    let mind = CacheMind::new(db).with_retriever(RetrieverKind::Ranger);
    let mut chat = ChatSession::new(mind);

    // Figure 10-style exploration commands route straight to the plan
    // runtime (the "generated code" path).
    chat.ask("List all unique PCs in the mcf trace under LRU.");
    chat.ask("Group PCs by reuse-distance variance for the mcf workload under LRU.");
    chat.ask("Identify hot and cold sets by hit rate in astar under Belady.");

    // Turn 4: whole-workload orientation.
    chat.ask("What is the overall miss rate of the astar workload under Belady?");

    // Turn 2: cross-policy view.
    chat.ask("Which workload has the highest cache miss rate under LRU?");

    // Turn 3: drill into a PC that the database really contains.
    let pc =
        chat.mind().database().get("astar_evictions_belady").expect("trace").frame.rows()[0].pc;
    chat.ask(&format!(
        "Why does Belady outperform LRU on PC {pc} in the astar workload? Link the reuse \
         pattern to the policy mechanics."
    ));

    // Turn 4: a trick premise — CacheMind should reject it.
    let mcf_pc = chat.mind().database().get("mcf_evictions_lru").expect("trace").frame.rows()[0].pc;
    chat.ask(&format!(
        "Does the memory access with PC {mcf_pc} result in a cache hit or cache miss for \
         the lbm workload and LRU replacement policy?"
    ));

    println!("{}", chat.render_transcript());

    // Conversation memory: recall what we learned about Belady.
    println!("Recalled from memory (query: 'belady reuse'):");
    for snippet in chat.recall("belady reuse", 2) {
        let first_line = snippet.lines().next().unwrap_or("");
        println!("  - {first_line}");
    }
}
