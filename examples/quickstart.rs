//! Quickstart: build a trace database, ask CacheMind trace-grounded
//! questions, and inspect the evidence behind each answer.
//!
//! Run with: `cargo run --example quickstart`

use cachemind_suite::prelude::*;

fn main() {
    // 1. Simulate: three SPEC-like workloads x four replacement policies,
    //    annotated per access (PC, address, set, hit/miss, reuse, ...).
    println!("Building the trace database (tiny demo scale) ...");
    let db = TraceDatabaseBuilder::quick_demo().build();
    println!("  {} traces: {}", db.len(), db.trace_ids().collect::<Vec<_>>().join(", "));

    // Pick a real record so questions have verifiable answers.
    let entry = db.get("mcf_evictions_lru").expect("built trace");
    let row = entry.frame.rows()[25].clone();

    // 2. Ask, with the Ranger retriever (plan generation + execution).
    let mut mind = CacheMind::new(db).with_retriever(RetrieverKind::Ranger);

    let q1 = format!(
        "Does the memory access with PC {} and address {} result in a cache hit or cache \
         miss for the mcf workload and LRU replacement policy?",
        row.pc, row.address
    );
    let a1 = mind.ask(&q1);
    println!("\nQ: {q1}");
    println!("A: {}", a1.text);
    println!("   evidence quality: {:?}, retriever: {}", a1.context.quality, a1.context.retriever);

    let q2 = format!("What is the miss rate for PC {} in the mcf workload with LRU?", row.pc);
    let a2 = mind.ask(&q2);
    println!("\nQ: {q2}");
    println!("A: {}", a2.text);

    let q3 =
        format!("Which policy has the lowest miss rate for PC {} in the mcf workload?", row.pc);
    let a3 = mind.ask(&q3);
    println!("\nQ: {q3}");
    println!("A: {}", a3.text);

    // 3. The microarchitectural microscope (Figure 2): the retrieved slice
    //    links the access to code.
    println!("\nFigure 2-style retrieved excerpt:");
    for fact in a1.context.facts.iter().take(3) {
        println!("  {}", fact.render().replace('\n', "\n  "));
    }
    let program_view =
        mind.database().get("mcf_evictions_lru").and_then(|e| e.frame.assembly_code(row.pc));
    if let Some(asm) = program_view {
        println!("  Assembly around {}:", row.pc);
        for line in asm.lines() {
            println!("    {line}");
        }
    }
}
