//! Replay one workload under every implemented replacement policy and
//! compare hit rates, wrong evictions and estimated IPC — the kind of
//! cross-policy study the CacheMind database is built from.
//!
//! Run with: `cargo run --release --example policy_explorer [workload]`

use cachemind_policies::by_name;
use cachemind_suite::prelude::*;

fn main() {
    let workload_name = std::env::args().nth(1).unwrap_or_else(|| "lbm".to_owned());
    let workload = cachemind_suite::workloads::by_name(&workload_name, Scale::Small)
        .unwrap_or_else(|| {
            panic!("unknown workload {workload_name:?} (try astar, lbm, mcf, milc, ptrchase)")
        });

    let llc = TraceDatabaseBuilder::experiment_llc();
    println!(
        "Workload {} ({} LLC accesses), LLC {} sets x {} ways",
        workload.name,
        workload.accesses.len(),
        llc.sets(),
        llc.ways
    );
    let replay = LlcReplay::new(llc, &workload.accesses);
    let model = IpcModel::from_config(&HierarchyConfig::table2());

    println!(
        "\n{:<12} {:>10} {:>12} {:>14} {:>10}",
        "policy", "hit rate", "misses", "wrong evicts", "IPC"
    );
    println!("{}", "-".repeat(64));
    for name in [
        "lru",
        "fifo",
        "random",
        "srrip",
        "drrip",
        "dip",
        "ship",
        "hawkeye",
        "mockingjay",
        "mlp",
        "parrot",
        "belady",
    ] {
        let report = replay.run(by_name(name).expect("known policy"));
        let ipc =
            model.ipc_from_llc(workload.instr_count, report.stats.hits, report.stats.demand_misses);
        println!(
            "{:<12} {:>9.2}% {:>12} {:>13.1}% {:>10.4}",
            name,
            report.hit_rate() * 100.0,
            report.stats.misses,
            report.wrong_eviction_rate() * 100.0,
            ipc
        );
    }
    println!(
        "\nBelady is the offline upper bound; the learned policies (parrot, mlp, hawkeye, \
         mockingjay) should land between LRU and Belady on reuse-structured workloads."
    );
}
