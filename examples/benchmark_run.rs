//! Run CacheMindBench end to end for one retriever x backend pair and print
//! the per-category breakdown — a miniature of the paper's Figure 4 row.
//!
//! Run with: `cargo run --release --example benchmark_run [sieve|ranger]`

use cachemind_benchsuite::harness::{self, HarnessConfig};
use cachemind_suite::prelude::*;

fn main() {
    let retriever_name = std::env::args().nth(1).unwrap_or_else(|| "ranger".to_owned());

    println!("Building database and generating the 100-question suite ...");
    let db = TraceDatabaseBuilder::quick_demo().build();
    let catalog = Catalog::generate(&db);

    let sieve = SieveRetriever::new();
    let ranger = RangerRetriever::new();
    let retriever: &dyn Retriever = match retriever_name.as_str() {
        "sieve" => &sieve,
        "ranger" => &ranger,
        other => panic!("unknown retriever {other:?} (use sieve or ranger)"),
    };

    let report =
        harness::run(&db, retriever, BackendKind::Gpt4o, &catalog, &HarnessConfig::default());

    println!("\nCacheMindBench — retriever: {}, backend: {}", report.retriever, report.backend);
    println!("{}", "-".repeat(56));
    for category in QueryCategory::ALL {
        println!(
            "{:<30} {:>8.2}%  ({} questions)",
            category.label(),
            report.category_accuracy(category),
            report.results.iter().filter(|r| r.category == category).count()
        );
    }
    println!("{}", "-".repeat(56));
    println!(
        "Trace-grounded tier: {:>6.2}%   Reasoning tier: {:>6.2}%   Total: {:>6.2}%",
        report.tier_accuracy(Tier::TraceGrounded),
        report.tier_accuracy(Tier::Reasoning),
        report.total()
    );
}
