//! Offline stand-in for `serde_json`.
//!
//! Provides [`to_string`] / [`to_string_pretty`] over the shim `serde`'s
//! JSON-producing [`serde::Serialize`] trait, and a minimal [`Value`] tree
//! for code that wants to build JSON documents imperatively.

use std::collections::BTreeMap;
use std::fmt;

/// Serializes `value` to a compact JSON string. Infallible in the shim, but
/// returns `Result` for source compatibility with real `serde_json`.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_string())
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(pretty(&value.to_json_string()))
}

/// Re-formats compact JSON with newlines and two-space indentation.
///
/// Operates on the already-escaped string, so it only needs to track whether
/// it is inside a string literal.
fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in compact.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                indent += 1;
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialization error (never produced by the shim).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON document tree, for imperative construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Object keys are kept sorted (BTreeMap) so rendering is deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Inserts into an object value; panics on non-objects.
    pub fn insert(&mut self, key: &str, value: Value) {
        match self {
            Value::Object(map) => {
                map.insert(key.to_owned(), value);
            }
            _ => panic!("Value::insert on non-object"),
        }
    }

    /// An empty object.
    pub fn object() -> Value {
        Value::Object(BTreeMap::new())
    }

    /// Member lookup on objects (`None` on non-objects / missing keys),
    /// mirroring real `serde_json`'s `Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integral
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses a JSON document into a [`Value`] tree.
///
/// Call sites write `serde_json::from_str(text)?` exactly as with the real
/// crate (the shim version is monomorphic over `Value` instead of generic
/// over `Deserialize`). Accepts the standard JSON grammar: objects, arrays,
/// strings with escapes (`\" \\ \/ \b \f \n \r \t \uXXXX`), numbers,
/// booleans and `null`; trailing non-whitespace is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => {
                Err(Error(format!("unexpected {:?} at byte {}", other as char, self.pos)))
            }
            None => Err(Error("unexpected end of input".to_owned())),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".to_owned()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unexpected end of string escape".to_owned()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".to_owned()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape {hex:?}")))?;
                            self.pos += 4;
                            // Surrogate pairs are collapsed when both halves
                            // are present; lone surrogates become U+FFFD.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .ok_or_else(|| {
                                            Error("truncated low surrogate".to_owned())
                                        })?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| Error("bad low surrogate".to_owned()))?;
                                    self.pos += 6;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined).unwrap_or('\u{FFFD}')
                                    } else {
                                        // A high surrogate followed by a
                                        // non-low-surrogate escape: the first
                                        // half is lone (U+FFFD) and the second
                                        // escape decodes on its own.
                                        out.push('\u{FFFD}');
                                        char::from_u32(lo).unwrap_or('\u{FFFD}')
                                    }
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(code).unwrap_or('\u{FFFD}')
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error("control character in string".to_owned()));
                }
                _ => return Err(Error("unterminated string".to_owned())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_owned()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }
}

impl serde::Serialize for Value {
    fn json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => serde::write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::Serialize::json(item, out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(k, out);
                    out.push(':');
                    serde::Serialize::json(v, out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&serde::Serialize::to_json_string(self))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_renders_deterministically() {
        let mut v = Value::object();
        v.insert("z", Value::from(1u64));
        v.insert("a", Value::from("hi"));
        v.insert("list", Value::Array(vec![Value::Null, Value::from(true)]));
        assert_eq!(v.to_string(), "{\"a\":\"hi\",\"list\":[null,true],\"z\":1}");
    }

    #[test]
    fn parser_round_trips_rendered_documents() {
        let mut v = Value::object();
        v.insert("question", Value::from("what is 2+2? \"quoted\"\nnewline"));
        v.insert("session", Value::from(7u64));
        v.insert("flags", Value::Array(vec![Value::from(true), Value::Null]));
        v.insert("score", Value::from(-1.25));
        let rendered = v.to_string();
        let parsed = from_str(&rendered).expect("round trip");
        assert_eq!(parsed, v);
    }

    #[test]
    fn parser_handles_escapes_and_whitespace() {
        let v = from_str(" { \"a\" : \"x\\u0041\\t\", \"b\" : [ 1 , 2.5e1 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_str), Some("xA\t"));
        assert_eq!(v.get("b").and_then(Value::as_array).map(Vec::len), Some(2));
        assert_eq!(v.get("b").unwrap().as_array().unwrap()[1].as_f64(), Some(25.0));
    }

    #[test]
    fn lone_surrogates_never_panic() {
        // A high surrogate followed by a non-low-surrogate escape must not
        // underflow (debug) or wrap (release): both halves decode lossily.
        let v = from_str("{\"q\": \"\\uD800\\u0041\"}").expect("lossy decode");
        assert_eq!(v.get("q").and_then(Value::as_str), Some("\u{FFFD}A"));
        // A lone high surrogate at end-of-string is replaced too.
        let v = from_str("\"\\uD800x\"").expect("lossy decode");
        assert_eq!(v.as_str(), Some("\u{FFFD}x"));
        // A proper pair still combines.
        let v = from_str("\"\\uD83D\\uDE00\"").expect("pair decode");
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("true false").is_err());
        assert!(from_str("").is_err());
    }

    #[test]
    fn accessors_discriminate_types() {
        let v = from_str("{\"n\": 3, \"s\": \"hi\", \"t\": true, \"z\": null}").unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("t").and_then(Value::as_bool), Some(true));
        assert!(v.get("z").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(v.get("s").and_then(Value::as_u64), None);
    }

    #[test]
    fn pretty_round_trips_structure() {
        let compact = "{\"a\":[1,2],\"b\":\"x{y}\"}";
        let p = pretty(compact);
        assert!(p.contains("\"a\": ["));
        // Braces inside string literals must not affect indentation.
        assert!(p.contains("\"x{y}\""));
    }
}
