//! Offline stand-in for `serde_json`.
//!
//! Provides [`to_string`] / [`to_string_pretty`] over the shim `serde`'s
//! JSON-producing [`serde::Serialize`] trait, and a minimal [`Value`] tree
//! for code that wants to build JSON documents imperatively.

use std::collections::BTreeMap;
use std::fmt;

/// Serializes `value` to a compact JSON string. Infallible in the shim, but
/// returns `Result` for source compatibility with real `serde_json`.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_string())
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(pretty(&value.to_json_string()))
}

/// Re-formats compact JSON with newlines and two-space indentation.
///
/// Operates on the already-escaped string, so it only needs to track whether
/// it is inside a string literal.
fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in compact.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                indent += 1;
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialization error (never produced by the shim).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON document tree, for imperative construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Object keys are kept sorted (BTreeMap) so rendering is deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Inserts into an object value; panics on non-objects.
    pub fn insert(&mut self, key: &str, value: Value) {
        match self {
            Value::Object(map) => {
                map.insert(key.to_owned(), value);
            }
            _ => panic!("Value::insert on non-object"),
        }
    }

    /// An empty object.
    pub fn object() -> Value {
        Value::Object(BTreeMap::new())
    }
}

impl serde::Serialize for Value {
    fn json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => serde::write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::Serialize::json(item, out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(k, out);
                    out.push(':');
                    serde::Serialize::json(v, out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&serde::Serialize::to_json_string(self))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_renders_deterministically() {
        let mut v = Value::object();
        v.insert("z", Value::from(1u64));
        v.insert("a", Value::from("hi"));
        v.insert("list", Value::Array(vec![Value::Null, Value::from(true)]));
        assert_eq!(v.to_string(), "{\"a\":\"hi\",\"list\":[null,true],\"z\":1}");
    }

    #[test]
    fn pretty_round_trips_structure() {
        let compact = "{\"a\":[1,2],\"b\":\"x{y}\"}";
        let p = pretty(compact);
        assert!(p.contains("\"a\": ["));
        // Braces inside string literals must not affect indentation.
        assert!(p.contains("\"x{y}\""));
    }
}
