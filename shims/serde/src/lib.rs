//! Offline stand-in for `serde`.
//!
//! The real crates.io `serde` is unavailable in this workspace (no network
//! registry), so this shim provides the subset the workspace uses:
//!
//! - a [`Serialize`] trait that writes compact JSON directly into a `String`
//!   (the full serde data model is collapsed to "serialize to JSON", which is
//!   the only format the workspace emits);
//! - a marker [`Deserialize`] trait so derived bounds typecheck;
//! - re-exported `#[derive(Serialize, Deserialize)]` macros from the
//!   sibling `serde_derive` shim.
//!
//! Swap the workspace `path` dependency for a crates.io version requirement
//! to migrate to real serde; call sites are source-compatible for the derive
//! + `serde_json::to_string` usage pattern.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization to compact JSON.
///
/// `json` appends the JSON encoding of `self` to `out`. Implementations for
/// primitives, strings, tuples, options, sequences and maps are provided
/// here; structs and enums get theirs from `#[derive(Serialize)]`.
pub trait Serialize {
    /// Appends the compact-JSON encoding of `self` to `out`.
    fn json(&self, out: &mut String);

    /// The compact-JSON encoding of `self` as a fresh string.
    fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.json(&mut out);
        out
    }
}

/// Marker for deserializable types.
///
/// The shim does not implement JSON parsing into arbitrary types; the trait
/// exists so `#[derive(Deserialize)]` and `T: Deserialize` bounds compile.
pub trait Deserialize {}

/// Writes a JSON string literal (with escaping) into `out`.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` as JSON (NaN/Inf become `null`). Uses Rust's `Display`,
/// which prints integral floats WITHOUT a trailing `.0` (`1`, not `1.0`) —
/// real serde_json prints `1.0`, so byte-level JSON baselines captured under
/// this shim will change when migrating to crates.io serde_json.
fn write_json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

macro_rules! impl_serialize_display_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_display_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Serialize for f32 {
    fn json(&self, out: &mut String) {
        write_json_f64(*self as f64, out);
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn json(&self, out: &mut String) {
        write_json_f64(*self, out);
    }
}
impl Deserialize for f64 {}

impl Serialize for char {
    fn json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        write_json_string(self.encode_utf8(&mut buf), out);
    }
}
impl Deserialize for char {}

impl Serialize for str {
    fn json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}
impl Deserialize for String {}

impl Serialize for () {
    fn json(&self, out: &mut String) {
        out.push_str("null");
    }
}
impl Deserialize for () {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json(&self, out: &mut String) {
        (**self).json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn json(&self, out: &mut String) {
        (**self).json(out);
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn json(&self, out: &mut String) {
        (**self).json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn json(&self, out: &mut String) {
        (**self).json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.json(out),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

/// Map keys must render as JSON strings; anything `Display` qualifies.
impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&k.to_string(), out);
            out.push(':');
            v.json(out);
        }
        out.push('}');
    }
}

/// `HashMap` serializes with keys sorted by their rendered form so output is
/// deterministic regardless of hasher state.
impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn json(&self, out: &mut String) {
        let mut entries: Vec<(String, &V)> = self.iter().map(|(k, v)| (k.to_string(), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        out.push('{');
        for (i, (k, v)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k, out);
            out.push(':');
            v.json(out);
        }
        out.push('}');
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_strings() {
        assert_eq!(42u64.to_json_string(), "42");
        assert_eq!((-7i32).to_json_string(), "-7");
        assert_eq!(true.to_json_string(), "true");
        assert_eq!(1.5f64.to_json_string(), "1.5");
        assert_eq!("a\"b\n".to_string().to_json_string(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u8, 2, 3].to_json_string(), "[1,2,3]");
        assert_eq!(Some(5u8).to_json_string(), "5");
        assert_eq!(None::<u8>.to_json_string(), "null");
        assert_eq!((1u8, "x".to_string()).to_json_string(), "[1,\"x\"]");
        let mut m = std::collections::HashMap::new();
        m.insert("b".to_string(), 2u8);
        m.insert("a".to_string(), 1u8);
        assert_eq!(m.to_json_string(), "{\"a\":1,\"b\":2}");
    }
}
