//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, and `Bencher::iter` with a
//! simple wall-clock measurement loop (fixed warm-up, then timed batches,
//! median-of-batches reporting). No statistics engine, plots, or baselines —
//! it prints one line per benchmark.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    /// Median per-iteration time of the measured batches.
    median: Duration,
    iterations: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher { median: Duration::ZERO, iterations: 0 }
    }

    /// Times `f`: one warm-up call, then batches sized to fit the
    /// measurement window, reporting the median batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std_black_box(f()); // warm-up

        // Size a batch so one batch takes roughly 10ms.
        let probe_start = Instant::now();
        std_black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(10).as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u64;

        const BATCHES: usize = 5;
        let mut per_iter: Vec<Duration> = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            per_iter.push(start.elapsed() / batch as u32);
        }
        per_iter.sort();
        self.median = per_iter[BATCHES / 2];
        self.iterations = batch * BATCHES as u64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rate lines.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) {
        let id = id.into();
        let mut bencher = Bencher::new();
        f(&mut bencher);
        let per_iter = bencher.median;
        let mut line = format!(
            "{}/{}: {:>12?} /iter ({} iters)",
            self.name, id.id, per_iter, bencher.iterations
        );
        if let Some(tp) = self.throughput {
            let nanos = per_iter.as_nanos().max(1) as f64;
            match tp {
                Throughput::Elements(n) => {
                    let rate = n as f64 / (nanos / 1e9);
                    line.push_str(&format!("  [{:.2e} elem/s]", rate));
                }
                Throughput::Bytes(n) => {
                    let rate = n as f64 / (nanos / 1e9);
                    line.push_str(&format!("  [{:.2e} B/s]", rate));
                }
            }
        }
        println!("{line}");
    }

    /// Variant receiving an input by reference.
    pub fn bench_with_input<I, Inp, F>(&mut self, id: I, input: &Inp, mut f: F)
    where
        I: Into<BenchmarkId>,
        Inp: ?Sized,
        F: FnMut(&mut Bencher, &Inp),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let mut group = self.benchmark_group(name);
        group.bench_function(name, f);
        group.finish();
    }
}

/// Declares a group runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
