//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! - strategies: integer/float ranges, `collection::vec`, `any::<T>()`,
//!   and simple `.{lo,hi}`-style string patterns,
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Unlike real proptest there is **no shrinking** and no failure
//! persistence: a failing case panics with the case number and the seed is
//! derived deterministically from the test name, so failures reproduce
//! across runs.

pub mod test_runner {
    use std::fmt;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property check (carries the rendered message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test RNG (splitmix64 seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name: the same test always replays the same
        /// case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of random values for one test argument.
    pub trait Strategy {
        type Value;
        /// Produces one random value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * u
        }
    }

    /// String pattern strategy.
    ///
    /// Supports the regex subset the workspace uses: `.{lo,hi}` (a string of
    /// `lo..=hi` arbitrary printable characters, with occasional whitespace
    /// and non-ASCII). Any other pattern is treated as a literal.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            if let Some((lo, hi)) = parse_dot_repeat(self) {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                let mut s = String::with_capacity(len);
                for _ in 0..len {
                    let roll = rng.below(20);
                    let c = match roll {
                        0 => ' ',
                        1 => '\t',
                        2 => 'λ', // exercise non-ASCII paths
                        3 => '0',
                        _ => {
                            // printable ASCII 0x21..=0x7e
                            char::from_u32(0x21 + rng.below(0x5e) as u32).unwrap()
                        }
                    };
                    s.push(c);
                }
                s
            } else {
                (*self).to_owned()
            }
        }
    }

    /// Parses `.{lo,hi}` → `(lo, hi)`.
    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?;
        let rest = rest.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    /// `any::<T>()`: the full-range strategy for `T`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Creates the full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// `proptest::collection::vec(element, lo..hi)`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, min: size.start, max_exclusive: size.end }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max_exclusive - self.min) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases; `prop_assert*` failures
/// panic with the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, err
                    );
                }
            }
        }
    )*};
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current proptest case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current proptest case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), l),
            ));
        }
    }};
}
