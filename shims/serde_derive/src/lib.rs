//! Offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not available
//! in this offline workspace. This crate re-implements just enough of the
//! derive logic with a hand-rolled token walker: it understands named-field
//! structs, tuple (newtype) structs, unit structs, and enums whose variants
//! are unit, tuple, or struct-like. Generic type parameters get blanket
//! `Serialize` bounds on every parameter, which is sufficient for the shapes
//! this workspace derives.
//!
//! `#[serde(...)]` attributes are accepted and ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item a derive was applied to.
enum Shape {
    /// `struct S { a: A, b: B }` with the listed field names.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` with the field count.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { ... }` with `(variant, fields)` pairs.
    Enum(Vec<(String, VariantFields)>),
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Some(item) => item,
        None => return TokenStream::new(),
    };
    emit_serialize(&item).parse().expect("serde_derive shim emitted invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Some(item) => item,
        None => return TokenStream::new(),
    };
    // Deserialization is not implemented by the shim; emit the marker impl so
    // `T: Deserialize` bounds still typecheck.
    let (impl_generics, ty) = generics_for(&item, "Deserialize");
    format!("impl{} ::serde::Deserialize for {} {{}}", impl_generics, ty)
        .parse()
        .expect("serde_derive shim emitted invalid Rust")
}

/// Renders `impl<T: Bound, ...>` and `Name<T, ...>` for an item.
fn generics_for(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params: Vec<String> =
            item.generics.iter().map(|g| format!("{g}: ::serde::{bound}")).collect();
        (format!("<{}>", params.join(", ")), format!("{}<{}>", item.name, item.generics.join(", ")))
    }
}

fn emit_serialize(item: &Item) -> String {
    let (impl_generics, ty) = generics_for(item, "Serialize");
    let body = match &item.shape {
        Shape::UnitStruct => "out.push_str(\"null\");".to_owned(),
        Shape::TupleStruct(1) => "::serde::Serialize::json(&self.0, out);".to_owned(),
        Shape::TupleStruct(n) => {
            let mut b = String::from("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!("::serde::Serialize::json(&self.{i}, out);\n"));
            }
            b.push_str("out.push(']');");
            b
        }
        Shape::NamedStruct(fields) => {
            let mut b = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::json(&self.{f}, out);\n"
                ));
            }
            b.push_str("out.push('}');");
            b
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!("Self::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"));
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut ser = format!("out.push_str(\"{{\\\"{v}\\\":\");\n");
                        if *n == 1 {
                            ser.push_str("::serde::Serialize::json(f0, out);\n");
                        } else {
                            ser.push_str("out.push('[');\n");
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    ser.push_str("out.push(',');\n");
                                }
                                ser.push_str(&format!("::serde::Serialize::json({b}, out);\n"));
                            }
                            ser.push_str("out.push(']');\n");
                        }
                        ser.push_str("out.push('}');");
                        arms.push_str(&format!("Self::{v}({}) => {{ {ser} }}\n", binds.join(", ")));
                    }
                    VariantFields::Named(names) => {
                        let mut ser =
                            format!("out.push_str(\"{{\\\"{v}\\\":\");\nout.push('{{');\n");
                        for (i, f) in names.iter().enumerate() {
                            if i > 0 {
                                ser.push_str("out.push(',');\n");
                            }
                            ser.push_str(&format!(
                                "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::json({f}, out);\n"
                            ));
                        }
                        ser.push_str("out.push('}');\nout.push('}');");
                        arms.push_str(&format!(
                            "Self::{v} {{ {} }} => {{ {ser} }}\n",
                            names.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {ty} {{\n\
         fn json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}"
    )
}

/// Walks the derive input and extracts the item name, generic parameter
/// names, and field/variant structure.
fn parse_item(input: TokenStream) -> Option<Item> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (doc comments included) and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1; // `#`
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1; // `[...]`
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1; // `(crate)` / `(super)` ...
                }
            }
            _ => break,
        }
    }
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        _ => return None,
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    i += 1;

    // Generic parameter list: collect top-level parameter names (lifetimes
    // and const params are not supported by the shim).
    let mut generics = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut expect_param = true;
        while i < tokens.len() && depth > 0 {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => expect_param = false,
                TokenTree::Ident(id) if depth == 1 && expect_param => {
                    generics.push(id.to_string());
                    expect_param = false;
                }
                _ => {}
            }
            i += 1;
        }
    }

    // Skip a `where` clause if present (up to the body group or `;`).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let shape = if kind == "enum" {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            _ => return None,
        };
        Shape::Enum(parse_variants(body))
    } else if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        }
    } else {
        return None; // unions are unsupported
    };
    Some(Item { name, generics, shape })
}

/// Extracts field names from a named-field body: for each top-level
/// comma-separated entry, the identifier immediately before the first `:`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut in_type = false; // between `:` and the next top-level `,`
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                in_type = false;
                last_ident = None;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && !in_type => {
                if let Some(f) = last_ident.take() {
                    fields.push(f);
                }
                in_type = true;
            }
            TokenTree::Ident(id) if !in_type => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}

/// Counts top-level comma-separated fields in a tuple-struct body.
fn count_top_level_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut depth = 0usize;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens = false;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

/// Parses enum variants: attribute-skipping, then `Name`, `Name(..)`, or
/// `Name { .. }`, optionally followed by `= expr`, separated by commas.
fn parse_variants(body: TokenStream) -> Vec<(String, VariantFields)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes on the variant.
        while matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '#') {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        variants.push((name, fields));
        // Skip an explicit discriminant and advance to past the next comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}
