//! Offline stand-in for `rayon`.
//!
//! Implements the parallel-iterator surface this workspace uses on top of
//! `std::thread::scope`: [`IntoParallelIterator`] and its iterator types with
//! `map`, `filter`, `flat_map`, `for_each`, `sum`, `reduce` and `collect`.
//!
//! Differences from real rayon, by design:
//!
//! - **Eager stages.** Each combinator runs its closure across worker
//!   threads immediately instead of building a lazy fused pipeline. For the
//!   coarse-grained work in this repo (one cache replay per item) fusion
//!   does not matter.
//! - **Order preservation.** Items are split into contiguous chunks, one
//!   per worker, and results are reassembled in input order, so `collect`
//!   is deterministic regardless of scheduling — the property the sweep
//!   engine's determinism tests pin down.
//! - **`RAYON_NUM_THREADS`** is honored (value `1` disables threading);
//!   otherwise `std::thread::available_parallelism()` decides.

use std::env;
use std::num::NonZeroUsize;
use std::thread;

/// Number of worker threads a parallel stage will use.
pub fn current_num_threads() -> usize {
    match env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1),
    }
}

/// Splits `items` into at most `workers` contiguous chunks, maps each
/// chunk on its own scoped thread with `f`, and concatenates the results
/// in input order.
///
/// This is the order-preserving discipline every parallel stage in the
/// workspace shares; it is public (beyond real rayon's surface) so callers
/// with their own worker-count policy — e.g. the serve engine's
/// `SERVE_NUM_THREADS` pool — reuse one implementation instead of
/// re-rolling the chunking.
pub fn parallel_chunks<T, O, F>(items: Vec<T>, workers: usize, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(Vec<T>) -> Vec<O> + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return f(items);
    }
    // Chunk i precedes chunk i+1 in input order, so concatenation restores
    // the original order.
    let chunk_size = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let results: Vec<Vec<O>> = thread::scope(|scope| {
        let handles: Vec<_> =
            chunks.into_iter().map(|chunk| scope.spawn(move || f(chunk))).collect();
        handles.into_iter().map(|h| h.join().expect("rayon shim worker panicked")).collect()
    });
    results.into_iter().flatten().collect()
}

/// Runs `f` over `items` on up to [`current_num_threads`] workers,
/// reassembling results in input order.
fn parallel_map_vec<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let f = &f;
    parallel_chunks(items, current_num_threads(), move |chunk| chunk.into_iter().map(f).collect())
}

/// An in-flight parallel computation: the (already materialized) items of
/// the current stage.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

/// Conversion into a [`ParIter`].
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self.into_iter().collect() }
    }
}

impl IntoParallelIterator for core::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for core::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> ParIter<O> {
        ParIter { items: parallel_map_vec(self.items, f) }
    }

    /// Keeps items where `f` returns true (evaluated in parallel).
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        let kept = parallel_map_vec(self.items, |item| if f(&item) { Some(item) } else { None });
        ParIter { items: kept.into_iter().flatten().collect() }
    }

    /// Maps each item to an iterator and flattens, preserving order.
    pub fn flat_map<O, I, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        I: IntoIterator<Item = O>,
        F: Fn(T) -> I + Sync,
    {
        let nested = parallel_map_vec(self.items, |item| f(item).into_iter().collect::<Vec<O>>());
        ParIter { items: nested.into_iter().flatten().collect() }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map_vec(self.items, |item| f(item));
    }

    /// Collects the stage's items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items at this stage.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Reduces with `op` starting from `identity()`. Reduction happens
    /// sequentially over the ordered items, so non-commutative operators
    /// still produce deterministic results.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }
}

/// Borrowing parallel iteration (`slice.par_iter()`).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<T: Sync + Send> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter { items: self.iter().collect() }
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_and_flat_map_preserve_order() {
        let evens: Vec<u64> = (0..100u64).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, (0..100u64).filter(|x| x % 2 == 0).collect::<Vec<_>>());
        let pairs: Vec<u64> = (0..10u64).into_par_iter().flat_map(|x| [x, x]).collect();
        assert_eq!(pairs.len(), 20);
        assert_eq!(pairs[0..4], [0, 0, 1, 1]);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u64, 2, 3];
        let s: u64 = v.par_iter().map(|x| *x).sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
