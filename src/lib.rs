//! Umbrella crate for the CacheMind reproduction workspace.
//!
//! This crate re-exports the public APIs of every sub-crate so that the
//! repository-level examples and integration tests can use a single
//! dependency. Library users should normally depend on the individual
//! crates (`cachemind-core`, `cachemind-sim`, ...) directly.
//!
//! # Example
//!
//! ```rust
//! use cachemind_suite::prelude::*;
//!
//! let db = TraceDatabaseBuilder::quick_demo().build();
//! assert!(db.trace_ids().count() > 0);
//! ```

pub use cachemind_benchsuite as benchsuite;
pub use cachemind_core as core;
pub use cachemind_lang as lang;
pub use cachemind_obs as obs;
pub use cachemind_policies as policies;
pub use cachemind_retrieval as retrieval;
pub use cachemind_serve as serve;
pub use cachemind_sim as sim;
pub use cachemind_tracedb as tracedb;
pub use cachemind_workloads as workloads;

/// Convenience prelude bringing the most commonly used types into scope.
pub mod prelude {
    pub use cachemind_core::prelude::*;
}
