//! Byte-identity pin for the optimized replay hot path.
//!
//! `tests/fixtures/golden_scenario_v1.json` is the literal stdout of the
//! pre-optimization binary running
//!
//! ```text
//! CACHEMIND_SCALE=tiny sweep_grid \
//!     --machines table2,small --prefetchers none,nextline,stride4 \
//!     --policies lru,srrip,ship,belady --workloads mcf,astar,ptrchase --json
//! ```
//!
//! This test rebuilds the identical grid through the library API and
//! asserts that serialization matches the fixture byte for byte — any
//! hot-path "optimization" that changes a single counter, score or IPC
//! digit fails here before it can silently reshape the paper's results.

use cachemind_suite::prelude::*;
use cachemind_suite::sim::sweep::{ScenarioGrid, SweepStream};
use cachemind_suite::workloads::{by_name, Scale};

fn golden_grid() -> ScenarioGrid {
    let mut streams = Vec::new();
    for name in ["mcf", "astar", "ptrchase"] {
        let w = by_name(name, Scale::Tiny).expect("known workload");
        streams.push(SweepStream::new(w.name.clone(), w.accesses).with_instr_count(w.instr_count));
    }
    ScenarioGrid {
        policies: ["lru", "srrip", "ship", "belady"].map(str::to_owned).to_vec(),
        streams,
        machines: ["table2", "small"]
            .map(|m| MachineConfig::preset(m).expect("known machine"))
            .to_vec(),
        prefetchers: ["none", "nextline", "stride4"]
            .map(|p| PrefetcherKind::parse(p).expect("known prefetcher"))
            .to_vec(),
        mlp_override: None,
    }
}

#[test]
fn scenario_report_matches_pre_optimization_golden_fixture() {
    let report = golden_grid().run(cachemind_suite::policies::by_name).expect("grid runs");
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    let expected = include_str!("fixtures/golden_scenario_v1.json");
    // `sweep_grid --json` prints the pretty report through `println!`.
    assert_eq!(
        format!("{rendered}\n"),
        expected,
        "ScenarioReport drifted from the pre-optimization golden fixture"
    );
}
