//! Golden plan-shape fixture for the query-plan optimizer.
//!
//! `tests/fixtures/golden_plans_v1.json` pins, for a set of canonical
//! questions, the **naive** plan the ranger compiles, the **optimized**
//! plan the rewrite pass produces, and the rendered retrieval code. The
//! equivalence harness (`tests/plan_equivalence.rs`) proves rewrites
//! preserve semantics; this fixture proves they keep producing the
//! *intended shapes* — a regression that silently stops pushing a
//! selector down (or starts rewriting a plan it should leave alone)
//! fails here even though the answers stay correct.
//!
//! To regenerate after an intentional planner change:
//!
//! ```text
//! cargo test --test golden_plans -- --ignored regenerate
//! ```
//!
//! then review the diff like any other code change.

use std::sync::OnceLock;

use cachemind_suite::lang::QueryIntent;
use cachemind_suite::prelude::*;
use cachemind_suite::retrieval::{optimize, RangerRetriever};
use cachemind_suite::serve::engine::{build_database, ServeConfig};
use cachemind_suite::tracedb::store::TraceStore;
use serde_json::Value;

const FIXTURE: &str = include_str!("fixtures/golden_plans_v1.json");

/// One canonical question per rewrite family, plus pass-through shapes
/// that the optimizer must leave untouched. The selector column exercises
/// every scope form the pushdown bakes in: unscoped, machine, machine +
/// prefetcher.
const CASES: &[(&str, &str, &str)] = &[
    (
        "lookup-pushdown",
        "Does the memory access with PC 0x4008f0 and address 0x7f3a00010000 result in a \
         cache hit or a cache miss for mcf under lru?",
        "",
    ),
    ("trace-length", "How many rows are in the lbm eviction trace under belady?", "@table2"),
    ("filtered-count-passthrough", "How many times did PC 0x400b20 miss in astar under lru?", ""),
    ("policy-rank-ipc", "Which policy gives the highest IPC on mcf?", "@small"),
    ("policy-rank-miss-rate", "Which policy has the lowest miss rate for lbm?", "@table2"),
    ("workload-rank-ipc", "Which workload achieves the best IPC under belady?", "@table2+stride4"),
    (
        "workload-rank-miss-rate",
        "Which workload suffers the highest miss rate under lru?",
        "@small",
    ),
    ("miss-rate-passthrough", "What is the overall miss rate of the mcf workload under lru?", ""),
];

/// The same multi-machine store the equivalence harness uses, so the
/// pinned scopes name real machines.
fn db() -> &'static cachemind_suite::tracedb::ShardedTraceDatabase {
    static DB: OnceLock<cachemind_suite::tracedb::ShardedTraceDatabase> = OnceLock::new();
    DB.get_or_init(|| {
        let config = ServeConfig {
            shards: 3,
            machines: vec!["table2".into(), "small".into()],
            prefetchers: vec!["stride4".into()],
            ..Default::default()
        };
        build_database(&config).expect("multi-machine demo build")
    })
}

/// Re-encodes a plan through its JSON string form into a [`Value`] tree,
/// so plans embed structurally in the fixture document.
fn to_value(value: &cachemind_suite::retrieval::Plan) -> Value {
    let text = serde_json::to_string(value).expect("plan serializes");
    serde_json::from_str(&text).expect("serialized plan parses back")
}

/// Compiles and optimizes every canonical case into the fixture document.
fn golden_value() -> Value {
    let db = db();
    let workloads = db.workloads();
    let policies = db.policies();
    let workload_refs: Vec<&str> = workloads.iter().map(String::as_str).collect();
    let policy_refs: Vec<&str> = policies.iter().map(String::as_str).collect();
    let ranger = RangerRetriever::new();

    let mut plans = Vec::new();
    for (name, question, scope) in CASES {
        let selector = if scope.is_empty() {
            ScenarioSelector::all()
        } else {
            ScenarioSelector::parse(scope).expect("fixture selector parses")
        };
        let intent = QueryIntent::parse_scoped(question, &workload_refs, &policy_refs, &selector);
        let naive = ranger
            .compile(db, &intent)
            .unwrap_or_else(|| panic!("canonical question {name:?} must compile"));
        let optimized = optimize(naive.clone(), &selector);

        let mut entry = Value::object();
        entry.insert("name", Value::from(*name));
        entry.insert("question", Value::from(*question));
        entry.insert("selector", Value::from(*scope));
        entry.insert("naive", to_value(&naive));
        entry.insert("optimized", to_value(&optimized));
        entry.insert("code", Value::from(optimized.render_code()));
        plans.push(entry);
    }

    let mut root = Value::object();
    root.insert("fixture_version", Value::from(1u64));
    root.insert("plans", Value::Array(plans));
    root
}

fn rendered() -> String {
    let pretty = serde_json::to_string_pretty(&golden_value()).expect("fixture serializes");
    format!("{pretty}\n")
}

#[test]
fn canonical_plan_shapes_match_the_golden_fixture() {
    assert_eq!(
        rendered(),
        FIXTURE,
        "plan shapes drifted from the golden fixture; if the planner change \
         is intentional, regenerate with `cargo test --test golden_plans -- \
         --ignored regenerate` and review the diff"
    );
}

/// Sanity floor under the byte comparison: the fixture itself must show
/// that every rewrite family actually fired (the optimized shapes differ
/// from the naive ones where a rewrite exists, and match where none does).
#[test]
fn fixture_demonstrates_every_rewrite_family() {
    let doc = serde_json::from_str(FIXTURE).expect("fixture parses");
    let plans = doc.get("plans").and_then(Value::as_array).expect("plans array");
    assert_eq!(plans.len(), CASES.len());
    let rewritten = |name: &str| {
        let entry = plans
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some(name))
            .unwrap_or_else(|| panic!("fixture entry {name:?} missing"));
        entry.get("naive") != entry.get("optimized")
    };
    for family in [
        "lookup-pushdown",
        "trace-length",
        "policy-rank-ipc",
        "policy-rank-miss-rate",
        "workload-rank-ipc",
        "workload-rank-miss-rate",
    ] {
        assert!(rewritten(family), "{family} must be rewritten by the optimizer");
    }
    for passthrough in ["filtered-count-passthrough", "miss-rate-passthrough"] {
        assert!(!rewritten(passthrough), "{passthrough} must pass through unchanged");
    }
}

/// Regenerates the fixture in place. Ignored so it never runs in CI; run
/// explicitly after an intentional planner change.
#[test]
#[ignore = "writes tests/fixtures/golden_plans_v1.json; run after intentional planner changes"]
fn regenerate_golden_fixture() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_plans_v1.json");
    std::fs::write(path, rendered()).expect("fixture written");
}
