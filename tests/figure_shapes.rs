//! Figure-level shape assertions: the qualitative results the paper reports
//! must emerge from the implementation (see EXPERIMENTS.md).

use cachemind_suite::core::eval;
use cachemind_suite::prelude::*;
use cachemind_suite::retrieval::probes::{probe_queries, run_probes};

fn setup() -> (TraceDatabase, Catalog) {
    let db = TraceDatabaseBuilder::quick_demo().build();
    let catalog = Catalog::generate(&db);
    (db, catalog)
}

#[test]
fn figure4_count_collapses_and_gpt4o_wins() {
    let (db, catalog) = setup();
    let fig = eval::figure4(&db, &catalog);
    let count_row = fig.rows.iter().find(|(l, _)| l == "Count").expect("count row");
    for (backend, acc) in fig.backends.iter().zip(&count_row.1) {
        assert!(*acc <= 20.0, "{backend} Count accuracy {acc} should collapse under Sieve");
    }
    let (best_idx, _) =
        fig.totals.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("totals");
    assert_eq!(fig.backends[best_idx], "GPT-4o", "totals: {:?}", fig.totals);
}

#[test]
fn figure5_quality_gradient() {
    let (db, catalog) = setup();
    let fig = eval::figure5(&db, &catalog);
    let mut avg = [0.0f64; 3];
    for (_, [l, m, h]) in &fig.rows {
        avg[0] += l;
        avg[1] += m;
        avg[2] += h;
    }
    assert!(avg[2] > avg[1] && avg[1] > avg[0], "quality gradient violated: {avg:?}");
}

#[test]
fn figure7_o3_is_bimodal_and_gpt4o_is_not() {
    let (db, catalog) = setup();
    let fig = eval::figure7(&db, &catalog);
    let hist_of = |name: &str| {
        fig.rows
            .iter()
            .find(|(b, _)| b == name)
            .map(|(_, h)| *h)
            .unwrap_or_else(|| panic!("missing {name}"))
    };
    let o3 = hist_of("o3");
    let extremes = o3[0] + o3[1] + o3[4] + o3[5];
    let middle = o3[2] + o3[3];
    assert!(extremes > middle, "o3 histogram not bimodal: {o3:?}");
    let gpt4o = hist_of("GPT-4o");
    let high = gpt4o[4] + gpt4o[5];
    assert!(high >= 25 / 2, "GPT-4o should cluster high: {gpt4o:?}");
}

#[test]
fn figure8_retriever_split() {
    let (db, catalog) = setup();
    let fig = eval::figure8(&db, &catalog);
    assert!(fig.tg_total.1 > fig.tg_total.0, "Ranger must win the TG tier: {:?}", fig.tg_total);
    assert!(fig.ara_total.0 > fig.ara_total.1, "Sieve must win the ARA tier: {:?}", fig.ara_total);
}

#[test]
fn figure9_retrieval_ordering_and_magnitudes() {
    let (db, _) = setup();
    let probes = probe_queries(&db);
    let dense = DenseIndexRetriever::build(&db, 4);
    let d = run_probes(&db, &dense, &probes);
    let s = run_probes(&db, &SieveRetriever::new(), &probes);
    let r = run_probes(&db, &RangerRetriever::new(), &probes);
    assert!(
        r.correct > s.correct && s.correct > d.correct,
        "{} / {} / {}",
        d.correct,
        s.correct,
        r.correct
    );
    assert!(r.correct >= 8, "ranger {}", r.correct);
    assert!(d.correct <= 3, "dense {}", d.correct);
}

#[test]
fn belady_upper_bounds_every_database_policy() {
    let (db, _) = setup();
    for w in db.workloads() {
        let opt_misses = db
            .get(&format!("{w}_evictions_belady"))
            .expect("belady trace")
            .frame
            .rows()
            .iter()
            .filter(|r| r.is_miss)
            .count();
        for p in db.policies() {
            let misses = db
                .get(&format!("{w}_evictions_{p}"))
                .expect("trace")
                .frame
                .rows()
                .iter()
                .filter(|r| r.is_miss)
                .count();
            assert!(opt_misses <= misses, "{w}: belady {opt_misses} vs {p} {misses}");
        }
    }
}
