//! Reproducibility: identical inputs must produce identical databases,
//! catalogs and benchmark reports — the property that makes CacheMindBench
//! "verified".

use cachemind_suite::benchsuite::harness::{self, HarnessConfig};
use cachemind_suite::prelude::*;

#[test]
fn database_build_is_deterministic() {
    let a = TraceDatabaseBuilder::quick_demo().build();
    let b = TraceDatabaseBuilder::quick_demo().build();
    assert_eq!(a.len(), b.len());
    for (ea, eb) in a.entries().zip(b.entries()) {
        assert_eq!(ea.id, eb.id);
        assert_eq!(ea.metadata, eb.metadata);
        assert_eq!(ea.frame.rows(), eb.frame.rows());
    }
}

#[test]
fn catalog_and_reports_are_deterministic() {
    let db = TraceDatabaseBuilder::quick_demo().build();
    let c1 = Catalog::generate(&db);
    let c2 = Catalog::generate(&db);
    assert_eq!(c1.questions(), c2.questions());

    let cfg = HarnessConfig::default();
    let r1 = harness::run(&db, &SieveRetriever::new(), BackendKind::Gpt4oMini, &c1, &cfg);
    let r2 = harness::run(&db, &SieveRetriever::new(), BackendKind::Gpt4oMini, &c2, &cfg);
    assert_eq!(r1.total(), r2.total());
    for (a, b) in r1.results.iter().zip(&r2.results) {
        assert_eq!(a.points, b.points, "question {}", a.id);
        assert_eq!(a.verdict, b.verdict, "question {}", a.id);
    }
}

#[test]
fn generator_seed_changes_results_but_stays_deterministic() {
    let db = TraceDatabaseBuilder::quick_demo().build();
    let catalog = Catalog::generate(&db);
    let base = HarnessConfig::default();
    let seeded = HarnessConfig { seed: Some(1234), ..Default::default() };
    let sieve = SieveRetriever::new();
    let r_base = harness::run(&db, &sieve, BackendKind::Gpt35Turbo, &catalog, &base);
    let r_seed1 = harness::run(&db, &sieve, BackendKind::Gpt35Turbo, &catalog, &seeded);
    let r_seed2 = harness::run(&db, &sieve, BackendKind::Gpt35Turbo, &catalog, &seeded);
    assert_eq!(r_seed1.total(), r_seed2.total());
    // A different seed perturbs at least some answers (the capability model
    // is stochastic across seeds).
    let differs = r_base.results.iter().zip(&r_seed1.results).any(|(a, b)| a.verdict != b.verdict);
    assert!(differs, "seed change should alter some verdicts");
}

#[test]
fn workload_generation_is_seeded() {
    for name in ["astar", "lbm", "mcf", "milc", "ptrchase"] {
        let a = cachemind_suite::workloads::by_name(name, Scale::Tiny).unwrap();
        let b = cachemind_suite::workloads::by_name(name, Scale::Tiny).unwrap();
        assert_eq!(a.accesses, b.accesses, "workload {name}");
        assert_eq!(a.instr_count, b.instr_count);
    }
}
