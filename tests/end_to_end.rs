//! End-to-end integration: simulate → store → retrieve → generate → score,
//! across crate boundaries.

use cachemind_suite::benchsuite::harness::{self, HarnessConfig};
use cachemind_suite::prelude::*;

fn demo_db() -> TraceDatabase {
    TraceDatabaseBuilder::quick_demo().build()
}

#[test]
fn full_pipeline_produces_verifiable_answers() {
    let db = demo_db();
    let entry = db.get("lbm_evictions_belady").expect("trace");
    let row = entry.frame.rows()[42].clone();
    let first = entry
        .frame
        .rows()
        .iter()
        .find(|r| r.pc == row.pc && r.address == row.address)
        .expect("pair exists");
    let truth = first.is_miss;

    let mut mind = CacheMind::new(db).with_retriever(RetrieverKind::Ranger);
    let q = format!(
        "Does the memory access with PC {} and address {} result in a cache hit or cache \
         miss for the lbm workload and Belady replacement policy?",
        row.pc, row.address
    );
    let a = mind.ask(&q);
    // The retrieved evidence must carry the true outcome regardless of what
    // the (noisy) generator answers.
    let evidence_truth = a.context.facts.iter().find_map(|f| match f {
        Fact::Outcome { is_miss, .. } => Some(*is_miss),
        _ => None,
    });
    assert_eq!(evidence_truth, Some(truth));
}

#[test]
fn benchmark_pipeline_round_trips_all_categories() {
    let db = demo_db();
    let catalog = Catalog::generate(&db);
    let report = harness::run(
        &db,
        &RangerRetriever::new(),
        BackendKind::Gpt4o,
        &catalog,
        &HarnessConfig::default(),
    );
    assert_eq!(report.results.len(), 100);
    for category in QueryCategory::ALL {
        let n = report.results.iter().filter(|r| r.category == category).count();
        assert!(n > 0, "category {category:?} missing from the report");
    }
    // The weighted total is a sane percentage.
    let total = report.total();
    assert!((0.0..=100.0).contains(&total));
    assert!(total > 40.0, "pipeline sanity: total {total}");
}

#[test]
fn trick_questions_are_detectable_through_both_retrievers() {
    let db = demo_db();
    let catalog = Catalog::generate(&db);
    let tricks = catalog.by_category(QueryCategory::Trick);
    assert_eq!(tricks.len(), 5);
    let workloads = db.workloads();
    let policies = db.policies();
    let wrefs: Vec<&str> = workloads.iter().map(String::as_str).collect();
    let prefs: Vec<&str> = policies.iter().map(String::as_str).collect();
    for retriever in [&SieveRetriever::new() as &dyn Retriever, &RangerRetriever::new()] {
        let detected = tricks
            .iter()
            .filter(|q| {
                let intent = QueryIntent::parse(&q.text, &wrefs, &prefs);
                retriever.retrieve(&db, &intent).premise_violation().is_some()
            })
            .count();
        assert!(detected >= 4, "{} detected only {detected}/5 false premises", retriever.name());
    }
}

#[test]
fn insight_modules_run_at_tiny_scale() {
    use cachemind_suite::core::insights;
    let hotness = insights::set_hotness::run(Scale::Tiny);
    assert_eq!(hotness.profiles.len(), 2);
    let inversions = insights::inversions::run(Scale::Tiny);
    assert_eq!(inversions.len(), 3);
    for row in &inversions {
        assert!(row.belady_hit_rate >= row.parrot_hit_rate);
    }
}

#[test]
fn chat_session_supports_multi_turn_grounding() {
    let db = demo_db();
    let mind = CacheMind::new(db).with_retriever(RetrieverKind::Ranger);
    let mut chat = ChatSession::new(mind);
    let a1 = chat.ask("What is the overall miss rate of the mcf workload under LRU?");
    assert!(matches!(a1.verdict, Verdict::Number(_)));
    let a2 = chat.ask("Which workload has the highest cache miss rate under LRU?");
    assert!(matches!(a2.verdict, Verdict::FreeForm { .. } | Verdict::Ranking(_)));
    assert_eq!(chat.transcript().len(), 2);
}
