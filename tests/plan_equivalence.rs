//! Rewrite-equivalence harness for the plan optimizer (proptest).
//!
//! The optimizer's contract is *semantics-free rewriting*: for every plan
//! `p` and selector `s`, `optimize(p, s).run_scoped(db, s)` must return
//! byte-identical facts (and errors) to `p.run_scoped(db, s)`. These
//! tests pin that over a small **multi-machine** database — baseline,
//! machine-qualified (`table2`, `small`) and prefetcher-qualified
//! (`stride4`) traces — so the pushed-down scope resolution is exercised
//! against every entry-qualification shape, not just the unqualified
//! demo store.
//!
//! Two layers:
//!
//! * a proptest sweep over randomly assembled plans × selectors (the
//!   random half explores filter/scope combinations no template hits);
//! * an exhaustive sweep of every rewritable template over every
//!   `(workload, policy, selector)` triple, so each rewrite family is
//!   provably covered even at low proptest case counts.

use std::sync::OnceLock;

use proptest::prelude::*;

use cachemind_suite::prelude::*;
use cachemind_suite::retrieval::{optimize, Plan};
use cachemind_suite::serve::engine::{build_database, ServeConfig};
use cachemind_suite::tracedb::store::TraceStore;

/// The shared multi-machine, multi-prefetcher store — built once; every
/// test case reads it immutably.
fn db() -> &'static cachemind_suite::tracedb::ShardedTraceDatabase {
    static DB: OnceLock<cachemind_suite::tracedb::ShardedTraceDatabase> = OnceLock::new();
    DB.get_or_init(|| {
        let config = ServeConfig {
            shards: 3,
            machines: vec!["table2".into(), "small".into()],
            prefetchers: vec!["stride4".into()],
            ..Default::default()
        };
        build_database(&config).expect("multi-machine demo build")
    })
}

/// The selector palette: unscoped, machine-scoped, machine+prefetcher,
/// fully qualified, and a scope matching nothing (the empty-result edge).
fn selectors() -> Vec<ScenarioSelector> {
    ["", "@table2", "@small", "@table2+stride4", "mcf@small/lru", "@nonexistent_machine"]
        .iter()
        .map(|s| {
            if s.is_empty() {
                ScenarioSelector::all()
            } else {
                ScenarioSelector::parse(s).expect("palette selector parses")
            }
        })
        .collect()
}

/// A real `(pc, address)` from the named trace, so filtered plans can hit
/// rows; falls back to values that match nothing when the trace is absent.
fn row_from(workload: &str, policy: &str, index: usize) -> (Pc, Address) {
    match db().get(&format!("{workload}_evictions_{policy}")) {
        Some(entry) => {
            let rows = entry.frame.rows();
            let row = &rows[index % rows.len()];
            (row.pc, row.address)
        }
        None => (Pc::new(0xdead_beef), Address::new(0xdead_beef)),
    }
}

/// Asserts the equivalence contract for one `(plan, selector)` pair.
fn assert_equivalent(plan: &Plan, selector: &ScenarioSelector) -> Result<(), TestCaseError> {
    let naive = plan.run_scoped(db(), selector);
    let optimized_plan = optimize(plan.clone(), selector);
    let optimized = optimized_plan.run_scoped(db(), selector);
    prop_assert_eq!(&naive, &optimized, "rewrite changed semantics for {:?}", plan);
    // Byte-for-byte: the facts' rendered forms agree too, not just their
    // structural equality.
    prop_assert_eq!(
        format!("{naive:?}"),
        format!("{optimized:?}"),
        "rendered facts diverged for {:?} under {}",
        plan,
        selector
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random plans × selectors run identically before and after the
    /// rewrite pass.
    #[test]
    fn optimized_plans_run_byte_identically(
        kind in 0usize..8,
        w in 0usize..16,
        p in 0usize..16,
        s in 0usize..6,
        filter in 0usize..4,
        row in 0usize..64,
    ) {
        let workloads = db().workloads();
        let policies = db().policies();
        let workload = workloads[w % workloads.len()].clone();
        let policy = policies[p % policies.len()].clone();
        let (pc, address) = row_from(&workload, &policy, row);
        let pc_filter = (filter % 2 == 1).then_some(pc);
        let address_filter = (filter >= 2).then_some(address);
        let selector = selectors()[s].clone();

        let plan = match kind {
            0 => Plan::Lookup {
                workload,
                policy,
                pc: pc_filter,
                address: address_filter,
            },
            1 => Plan::CountRows {
                workload,
                policy,
                pc: None,
                address: None,
                misses_only: false,
            },
            2 => Plan::CountRows {
                workload,
                policy,
                pc: pc_filter,
                address: address_filter,
                misses_only: filter % 2 == 0,
            },
            3 => Plan::CompareIpcAcrossPolicies { workload },
            4 => Plan::CompareIpcAcrossWorkloads { policy },
            5 => Plan::CompareAcrossPolicies { workload, pc: pc_filter },
            6 => Plan::CompareAcrossWorkloads { policy },
            _ => Plan::PerPcTable { workload, policy, limit: row % 7 },
        };
        assert_equivalent(&plan, &selector)?;
    }
}

/// Every rewrite family × every `(workload, policy, selector)` triple —
/// the deterministic floor under the random sweep.
#[test]
fn every_rewrite_family_is_equivalent_across_the_whole_grid() {
    let workloads = db().workloads();
    let policies = db().policies();
    let mut checked = 0usize;
    for selector in selectors() {
        for workload in &workloads {
            for policy in &policies {
                let (pc, _) = row_from(workload, policy, 0);
                let plans = [
                    Plan::Lookup {
                        workload: workload.clone(),
                        policy: policy.clone(),
                        pc: None,
                        address: None,
                    },
                    Plan::Lookup {
                        workload: workload.clone(),
                        policy: policy.clone(),
                        pc: Some(pc),
                        address: None,
                    },
                    Plan::CountRows {
                        workload: workload.clone(),
                        policy: policy.clone(),
                        pc: None,
                        address: None,
                        misses_only: false,
                    },
                    Plan::CompareIpcAcrossPolicies { workload: workload.clone() },
                    Plan::CompareIpcAcrossWorkloads { policy: policy.clone() },
                    Plan::CompareAcrossPolicies { workload: workload.clone(), pc: Some(pc) },
                    Plan::CompareAcrossWorkloads { policy: policy.clone() },
                ];
                for plan in plans {
                    assert_equivalent(&plan, &selector).unwrap();
                    checked += 1;
                }
            }
        }
    }
    assert!(checked >= 7 * 6, "the grid actually swept: {checked} cases");
}
