//! The parallel sweep engine must be schedule-independent: the same grid
//! aggregated on one worker thread and on many must produce byte-identical
//! reports (table and JSON renderings both) — for the legacy LLC-only
//! `SweepGrid` *and* the full `ScenarioGrid` (machines × prefetchers).
//!
//! These tests drive thread count through `RAYON_NUM_THREADS`, which the
//! rayon shim re-reads per parallel stage. They run in one `#[test]` so the
//! env-var mutation cannot race a sibling test in this binary.

use cachemind_suite::policies::by_name;
use cachemind_suite::prelude::*;
use cachemind_suite::sim::prefetch::PrefetcherKind;
use cachemind_suite::sim::sweep::{ScenarioGrid, SweepGrid, SweepStream};
use cachemind_suite::workloads::{self, Scale};

fn demo_grid() -> SweepGrid {
    let mut grid = SweepGrid::default()
        .policy("lru")
        .policy("srrip")
        .policy("ship")
        .policy("belady")
        .config(CacheConfig::new("small", 4, 4, 6))
        .config(CacheConfig::new("tiny", 2, 2, 6));
    for name in ["astar", "lbm", "mcf"] {
        let w = workloads::by_name(name, Scale::Tiny).expect("known workload");
        grid.streams.push(SweepStream::new(w.name, w.accesses).with_instr_count(w.instr_count));
    }
    grid
}

fn scenario_grid() -> ScenarioGrid {
    let mut grid = ScenarioGrid::default()
        .policy("lru")
        .policy("srrip")
        .machine(MachineConfig::preset("table2").expect("preset"))
        .machine(MachineConfig::preset("small").expect("preset"))
        .prefetcher(PrefetcherKind::None)
        .prefetcher(PrefetcherKind::Stride { degree: 4 });
    for name in ["lbm", "mcf"] {
        let w = workloads::by_name(name, Scale::Tiny).expect("known workload");
        grid.streams.push(SweepStream::new(w.name, w.accesses).with_instr_count(w.instr_count));
    }
    grid
}

fn run_with_threads(threads: &str) -> [String; 4] {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let legacy = demo_grid().run(by_name).expect("legacy grid runs");
    let scenario = scenario_grid().run(by_name).expect("scenario grid runs");
    std::env::remove_var("RAYON_NUM_THREADS");
    [
        legacy.to_table(),
        serde_json::to_string(&legacy).expect("legacy report serializes"),
        scenario.to_table(),
        serde_json::to_string(&scenario).expect("scenario report serializes"),
    ]
}

#[test]
fn sweep_report_is_identical_across_thread_counts() {
    let reference = run_with_threads("1");
    for threads in ["2", "8", "13"] {
        let other = run_with_threads(threads);
        for (i, kind) in
            ["legacy table", "legacy JSON", "scenario table", "scenario JSON"].iter().enumerate()
        {
            assert_eq!(
                reference[i], other[i],
                "1-thread vs {threads}-thread {kind} reports differ"
            );
        }
    }

    // Sanity: the grids actually covered their full cross products.
    let legacy = demo_grid().run(by_name).expect("legacy grid runs");
    assert_eq!(legacy.cells.len(), 24); // 4 policies x 3 workloads x 2 configs
    assert!(reference[0].contains("belady"));
    assert!(reference[1].contains("\"policy_totals\""));

    let scenario = scenario_grid().run(by_name).expect("scenario grid runs");
    assert_eq!(scenario.cells.len(), 16); // 2 policies x 2 workloads x 2 machines x 2 prefetchers
    assert_eq!(scenario.machine_totals.len(), 2);
    assert_eq!(scenario.prefetcher_totals.len(), 2);
    assert!(scenario.cells.iter().all(|c| c.ipc > 0.0), "every scenario cell reports IPC");
    assert!(reference[3].contains("\"prefetcher_totals\""));
    assert!(reference[3].contains("\"machine_totals\""));
}
