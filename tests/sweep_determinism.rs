//! The parallel sweep engine must be schedule-independent: the same grid
//! aggregated on one worker thread and on many must produce byte-identical
//! reports (table and JSON renderings both).
//!
//! These tests drive thread count through `RAYON_NUM_THREADS`, which the
//! rayon shim re-reads per parallel stage. They run in one `#[test]` so the
//! env-var mutation cannot race a sibling test in this binary.

use cachemind_suite::policies::by_name;
use cachemind_suite::prelude::*;
use cachemind_suite::sim::sweep::{SweepGrid, SweepStream};
use cachemind_suite::workloads::{self, Scale};

fn demo_grid() -> SweepGrid {
    let mut grid = SweepGrid::default()
        .policy("lru")
        .policy("srrip")
        .policy("ship")
        .policy("belady")
        .config(CacheConfig::new("small", 4, 4, 6))
        .config(CacheConfig::new("tiny", 2, 2, 6));
    for name in ["astar", "lbm", "mcf"] {
        let w = workloads::by_name(name, Scale::Tiny).expect("known workload");
        grid.streams.push(SweepStream::new(w.name, w.accesses));
    }
    grid
}

fn run_with_threads(threads: &str) -> (String, String) {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let report = demo_grid().run(by_name).expect("grid runs");
    std::env::remove_var("RAYON_NUM_THREADS");
    let json = serde_json::to_string(&report).expect("report serializes");
    (report.to_table(), json)
}

#[test]
fn sweep_report_is_identical_across_thread_counts() {
    let (table_1, json_1) = run_with_threads("1");
    let (table_4, json_4) = run_with_threads("4");
    let (table_13, json_13) = run_with_threads("13"); // odd count: ragged chunks

    assert_eq!(table_1, table_4, "1-thread vs 4-thread table reports differ");
    assert_eq!(table_1, table_13, "1-thread vs 13-thread table reports differ");
    assert_eq!(json_1, json_4, "1-thread vs 4-thread JSON reports differ");
    assert_eq!(json_1, json_13, "1-thread vs 13-thread JSON reports differ");

    // Sanity: the grid actually covered the full 4 x 3 x 2 cross product.
    let report = demo_grid().run(by_name).expect("grid runs");
    assert_eq!(report.cells.len(), 24);
    assert!(table_1.contains("belady"));
    assert!(json_1.contains("\"policy_totals\""));
}
