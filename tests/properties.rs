//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;

use cachemind_suite::policies::BeladyPolicy;
use cachemind_suite::prelude::*;
use cachemind_suite::sim::reuse::NEVER;

fn trace_from_lines(lines: &[u8]) -> Vec<MemoryAccess> {
    lines
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            MemoryAccess::load(
                Pc::new(0x400000 + (l as u64 % 5) * 4),
                Address::new(l as u64 * 64),
                i as u64,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Belady's MIN is optimal: no online policy beats it in total hits on
    /// any trace.
    #[test]
    fn belady_is_optimal(lines in proptest::collection::vec(0u8..24, 1..300)) {
        let trace = trace_from_lines(&lines);
        let cfg = CacheConfig::new("t", 1, 2, 6); // 2 sets x 2 ways
        let replay = LlcReplay::new(cfg, &trace);
        let opt = replay.run(BeladyPolicy::new());
        for name in ["lru", "fifo", "random", "srrip", "ship"] {
            let other = replay.run(cachemind_suite::policies::by_name(name).unwrap());
            prop_assert!(
                opt.stats.hits >= other.stats.hits,
                "{} beat Belady: {} vs {}", name, other.stats.hits, opt.stats.hits
            );
        }
    }

    /// LRU has the stack (inclusion) property: increasing associativity can
    /// only convert misses to hits, never the reverse.
    #[test]
    fn lru_inclusion_property(lines in proptest::collection::vec(0u8..32, 1..300)) {
        let trace = trace_from_lines(&lines);
        let small = LlcReplay::new(CacheConfig::new("s", 1, 2, 6), &trace)
            .run(RecencyPolicy::lru());
        let large = LlcReplay::new(CacheConfig::new("l", 1, 4, 6), &trace)
            .run(RecencyPolicy::lru());
        for (a, b) in small.records.iter().zip(&large.records) {
            prop_assert!(
                a.is_miss || !b.is_miss,
                "hit in 2-way but miss in 4-way at index {}", a.index
            );
        }
    }

    /// The reuse oracle's next/prev indices are mutually consistent and its
    /// distances match a naive recomputation.
    #[test]
    fn reuse_oracle_invariants(lines in proptest::collection::vec(0u8..16, 1..200)) {
        let trace = trace_from_lines(&lines);
        let oracle = ReuseOracle::from_accesses(&trace, 6);
        for i in 0..oracle.len() {
            let next = oracle.next_use(i);
            if next != NEVER {
                let j = next as usize;
                prop_assert_eq!(oracle.prev_use(j), i as u64);
                prop_assert_eq!(oracle.line(i), oracle.line(j));
                // No intervening access to the same line.
                for k in (i + 1)..j {
                    prop_assert_ne!(oracle.line(k), oracle.line(i));
                }
            }
            prop_assert_eq!(oracle.is_first_touch(i), oracle.prev_use(i) == NEVER);
        }
    }

    /// The filter engine is sound and complete: `filter` returns exactly the
    /// rows matching the predicate.
    #[test]
    fn filter_soundness(lines in proptest::collection::vec(0u8..16, 1..150), pc_pick in 0u8..5) {
        let trace = trace_from_lines(&lines);
        let replay = LlcReplay::new(CacheConfig::new("t", 1, 2, 6), &trace);
        let report = replay.run(RecencyPolicy::lru());
        let rows: Vec<TraceRow> =
            report.records.iter().map(|r| TraceRow::from_record(r, true)).collect();
        let frame = TraceFrame::new(rows, std::sync::Arc::new(ProgramImage::new()));
        let pred = Predicate::PcEquals(Pc::new(0x400000 + (pc_pick as u64 % 5) * 4))
            .and(Predicate::IsMiss(true));
        let filtered = frame.filter(&pred);
        prop_assert!(filtered.iter().all(|r| pred.matches(r)));
        let manual = frame.rows().iter().filter(|r| pred.matches(r)).count();
        prop_assert_eq!(filtered.len(), manual);
        prop_assert_eq!(frame.count(&pred), manual);
    }

    /// The tokenizer is total and deterministic on arbitrary input, and hex
    /// literals round-trip.
    #[test]
    fn tokenizer_total_and_hex_round_trip(s in ".{0,120}", v in 0u64..u64::MAX / 2) {
        let a = cachemind_suite::lang::token::tokenize(&s);
        let b = cachemind_suite::lang::token::tokenize(&s);
        prop_assert_eq!(a, b);
        let text = format!("PC 0x{v:x} accessed");
        prop_assert_eq!(cachemind_suite::lang::token::hex_literals(&text), vec![v]);
    }

    /// Embeddings are unit-norm (or zero) for arbitrary text.
    #[test]
    fn embeddings_unit_norm(s in ".{0,200}") {
        let e = HashedEmbedder::new(32);
        let v = e.embed(&s);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-4, "norm {}", norm);
    }

    /// Miss classification is exhaustive: every miss gets exactly one type
    /// and hits get none.
    #[test]
    fn miss_taxonomy_is_total(lines in proptest::collection::vec(0u8..48, 1..300)) {
        let trace = trace_from_lines(&lines);
        let replay = LlcReplay::new(CacheConfig::new("t", 2, 2, 6), &trace);
        let report = replay.run(RecencyPolicy::lru());
        let mut classified = 0u64;
        for r in &report.records {
            prop_assert_eq!(r.miss_type.is_some(), r.is_miss);
            if r.miss_type.is_some() { classified += 1; }
        }
        prop_assert_eq!(classified, report.stats.misses);
        prop_assert_eq!(
            report.capacity_misses + report.conflict_misses + report.compulsory_misses,
            report.stats.misses
        );
    }

    /// LRU thrashes on a cyclic trace longer than the cache: when N distinct
    /// lines, all mapping into one set of associativity < N, are accessed
    /// round-robin, LRU always evicts exactly the line that is needed
    /// furthest in the past — and the next access is always to the line
    /// evicted N-ways accesses ago. After the compulsory pass, every access
    /// misses: zero hits, the classic thrash invariant (and the worst case
    /// Belady avoids).
    #[test]
    fn lru_thrashes_on_long_cyclic_traces(
        extra_lines in 1u64..8,
        laps in 2u64..6,
    ) {
        let cfg = CacheConfig::new("t", 0, 4, 6); // 1 set x 4 ways
        let ways = cfg.ways as u64;
        let cycle = ways + extra_lines; // strictly longer than associativity
        let trace: Vec<MemoryAccess> = (0..cycle * laps)
            .map(|i| {
                MemoryAccess::load(Pc::new(0x400000), Address::new((i % cycle) * 64), i)
            })
            .collect();
        let report = LlcReplay::new(cfg, &trace).run(RecencyPolicy::lru());
        prop_assert_eq!(
            report.stats.hits, 0,
            "LRU must thrash: {} lines cycling through {} ways", cycle, ways
        );
        prop_assert_eq!(report.stats.misses, cycle * laps);
        // First lap is compulsory, the rest is pure capacity thrash.
        prop_assert_eq!(report.compulsory_misses, cycle);
        prop_assert_eq!(report.capacity_misses + report.conflict_misses, cycle * (laps - 1));
    }

    /// The analytic IPC model is monotone in LLC demand misses: with
    /// everything else fixed, fewer demand misses never decrease IPC — the
    /// invariant the scenario grid's per-cell IPC column relies on — and
    /// IPC never exceeds the core's issue width.
    #[test]
    fn ipc_model_is_monotone_in_demand_misses(
        instr in 1u64..5_000_000,
        l1_misses in 0u64..100_000,
        l2_misses in 0u64..100_000,
        misses_a in 0u64..200_000,
        misses_b in 0u64..200_000,
        dram_latency in 80u64..800,
    ) {
        let mut config = HierarchyConfig::table2();
        config.dram.latency_cycles = dram_latency;
        let model = IpcModel::from_config(&config);
        let report = HierarchyReport {
            llc_stream: Vec::new(),
            l1i: CacheStats::default(),
            l1d: CacheStats { misses: l1_misses, ..Default::default() },
            l2: CacheStats { misses: l2_misses, ..Default::default() },
            llc: CacheStats::default(),
            prefetch_fills: 0,
            useful_prefetches: 0,
            instr_count: instr,
        };
        let (fewer, more) = (misses_a.min(misses_b), misses_a.max(misses_b));
        let ipc_fewer = model.ipc(&report, fewer);
        let ipc_more = model.ipc(&report, more);
        prop_assert!(
            ipc_fewer >= ipc_more,
            "fewer misses lowered IPC: {} misses -> {}, {} misses -> {}",
            fewer, ipc_fewer, more, ipc_more
        );
        prop_assert!(ipc_fewer <= config.processor.width as f64 + 1e-9);
        prop_assert!(ipc_more >= 0.0);
    }

    /// `ScenarioSelector::parse ∘ to_string` is the identity on valid
    /// selectors: any combination of a workload word, a canonical machine
    /// label (which itself contains `@` and `+`), a canonical prefetcher
    /// label and a policy word survives the round trip field-for-field.
    #[test]
    fn scenario_selector_parse_tostring_identity(
        workload_raw in proptest::collection::vec(97u8..123, 0..8),
        machine_name in proptest::collection::vec(97u8..123, 1..7),
        sets in 1u64..5000,
        ways in 1u64..33,
        dram in 1u64..1000,
        has_machine in 0u8..2,
        prefetcher_pick in 0u8..5,
        policy_raw in proptest::collection::vec(97u8..123, 0..8),
    ) {
        let word = |bytes: Vec<u8>| String::from_utf8(bytes).expect("ascii letters");
        let workload = if workload_raw.is_empty() { None } else { Some(word(workload_raw)) };
        let machine = (has_machine == 1)
            .then(|| format!("{}@llc{sets}x{ways}+dram{dram}", word(machine_name)));
        let prefetcher = match prefetcher_pick {
            0 => None,
            1 => Some("none"),
            2 => Some("nextline"),
            3 => Some("stride4"),
            _ => Some("stride2"),
        }
        .map(str::to_owned);
        let policy = if policy_raw.is_empty() { None } else { Some(word(policy_raw)) };
        let selector = ScenarioSelector { workload, machine, prefetcher, policy };

        let text = selector.to_string();
        let parsed = ScenarioSelector::parse(&text);
        prop_assert!(parsed.is_ok(), "canonical form {:?} failed to parse", text);
        prop_assert_eq!(parsed.unwrap(), selector);
    }

    /// `TraceId::parse ∘ key` is the identity on qualified trace ids: any
    /// combination of machine qualification (a canonical label, itself
    /// containing `@` and `+`) and prefetcher qualification (a canonical
    /// prefetcher label) survives the round trip field-for-field — the
    /// storage-key grammar mirror of the selector identity above.
    #[test]
    fn trace_id_parse_key_identity(
        workload_raw in proptest::collection::vec(97u8..123, 1..8),
        policy_raw in proptest::collection::vec(97u8..123, 1..8),
        machine_name in proptest::collection::vec(97u8..123, 1..7),
        sets in 1u64..5000,
        ways in 1u64..33,
        dram in 1u64..1000,
        has_machine in 0u8..2,
        prefetcher_pick in 0u8..4,
    ) {
        let word = |bytes: Vec<u8>| String::from_utf8(bytes).expect("ascii letters");
        let machine = (has_machine == 1)
            .then(|| format!("{}@llc{sets}x{ways}+dram{dram}", word(machine_name)));
        let prefetcher = match prefetcher_pick {
            0 => None,
            1 => Some("nextline"),
            2 => Some("stride4"),
            _ => Some("stride2"),
        };
        let id = TraceId::qualified(
            &word(workload_raw),
            &word(policy_raw),
            machine.as_deref(),
            prefetcher,
        );
        let parsed = TraceId::parse(&id.key());
        prop_assert_eq!(parsed, Some(id));
    }

    /// Cache occupancy never exceeds capacity, and hits never change
    /// occupancy.
    #[test]
    fn occupancy_bounded(lines in proptest::collection::vec(0u8..64, 1..200)) {
        let trace = trace_from_lines(&lines);
        let cfg = CacheConfig::new("t", 1, 2, 6);
        let capacity = cfg.capacity_lines();
        let mut cache = SetAssociativeCache::new(cfg, RecencyPolicy::lru());
        for (i, a) in trace.iter().enumerate() {
            let set = cache.set_of(a.address);
            let before = cache.occupancy();
            let out = cache.access(&AccessContext::demand(i as u64, a, set));
            let after = cache.occupancy();
            prop_assert!(after <= capacity);
            if out.hit {
                prop_assert_eq!(before, after);
            }
        }
    }
}

/// A deliberately naive `Vec<Option<LineMeta>>` set-associative cache — the
/// pre-optimization storage layout, retained as an executable oracle for
/// the structure-of-arrays fast path. Decision order mirrors
/// `SetAssociativeCache::access`: probe for a tag match, fill the first
/// empty way, otherwise ask the policy; the policy observes the set through
/// an owned [`SetViewBuf`] snapshot.
struct ReferenceCache {
    sets: Vec<Vec<Option<LineMeta>>>,
    policy: Box<dyn ReplacementPolicy>,
}

impl ReferenceCache {
    fn new(config: &CacheConfig, policy: Box<dyn ReplacementPolicy>) -> Self {
        ReferenceCache { sets: vec![vec![None; config.ways]; config.sets()], policy }
    }

    /// One access; returns `(hit, way, evicted, bypassed)` — the fields the
    /// SoA cache's [`AccessOutcome`] carries.
    fn access(&mut self, ctx: &AccessContext) -> (bool, Option<usize>, Option<LineMeta>, bool) {
        let si = ctx.set.index();
        let is_store = matches!(ctx.kind, AccessKind::Store);
        if let Some(way) =
            self.sets[si].iter().position(|m| m.as_ref().is_some_and(|m| m.line == ctx.line))
        {
            let meta = self.sets[si][way].as_mut().expect("matched way is occupied");
            meta.last_touch = ctx.index;
            meta.last_pc = ctx.pc;
            meta.dirty |= is_store;
            let buf = SetViewBuf::from_metas(&self.sets[si]);
            self.policy.on_hit(way, buf.view(), ctx);
            return (true, Some(way), None, false);
        }
        let fill = LineMeta {
            line: ctx.line,
            last_pc: ctx.pc,
            insert_pc: ctx.pc,
            inserted_at: ctx.index,
            last_touch: ctx.index,
            dirty: is_store,
        };
        if let Some(way) = self.sets[si].iter().position(|m| m.is_none()) {
            self.sets[si][way] = Some(fill);
            let buf = SetViewBuf::from_metas(&self.sets[si]);
            self.policy.on_fill(way, buf.view(), ctx);
            return (false, Some(way), None, false);
        }
        let buf = SetViewBuf::from_metas(&self.sets[si]);
        match self.policy.choose_victim(buf.view(), ctx) {
            Decision::Bypass => (false, None, None, true),
            Decision::Evict(way) => {
                let evicted = self.sets[si][way].take().expect("full set has no empty way");
                self.sets[si][way] = Some(fill);
                let buf = SetViewBuf::from_metas(&self.sets[si]);
                self.policy.on_fill(way, buf.view(), ctx);
                (false, Some(way), Some(evicted), false)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SoA cache agrees with the retained `Vec<Option<LineMeta>>`
    /// reference access-for-access — hit/way/evicted/bypassed — under every
    /// stock policy, on mixed load/store traffic. Two instances of the same
    /// policy see identical contexts and set views, so any divergence is a
    /// storage-layout bug, not policy nondeterminism.
    #[test]
    fn soa_cache_matches_line_meta_reference(
        codes in proptest::collection::vec(0u8..96, 1..400)
    ) {
        // Low bit selects load vs store; the rest picks one of 48 lines.
        let trace: Vec<MemoryAccess> = codes
            .iter()
            .enumerate()
            .map(|(i, &code)| {
                let l = (code >> 1) as u64;
                let pc = Pc::new(0x400000 + (l % 7) * 4);
                let addr = Address::new(l * 64);
                if code & 1 == 1 {
                    MemoryAccess::store(pc, addr, i as u64)
                } else {
                    MemoryAccess::load(pc, addr, i as u64)
                }
            })
            .collect();
        for name in ["lru", "fifo", "srrip", "ship", "mockingjay"] {
            let cfg = CacheConfig::new("t", 2, 2, 6); // 4 sets x 2 ways
            let mut soa = SetAssociativeCache::new(
                cfg.clone(),
                cachemind_suite::policies::by_name(name).unwrap(),
            );
            let mut reference =
                ReferenceCache::new(&cfg, cachemind_suite::policies::by_name(name).unwrap());
            for (i, a) in trace.iter().enumerate() {
                let set = soa.set_of(a.address);
                let ctx = AccessContext::demand(i as u64, a, set);
                let out = soa.access(&ctx);
                let (hit, way, evicted, bypassed) = reference.access(&ctx);
                prop_assert_eq!(out.hit, hit, "{} hit diverged at {}", name, i);
                prop_assert_eq!(out.way, way, "{} way diverged at {}", name, i);
                prop_assert_eq!(out.evicted, evicted, "{} eviction diverged at {}", name, i);
                prop_assert_eq!(out.bypassed, bypassed, "{} bypass diverged at {}", name, i);
            }
        }
    }
}
