//! Per-PC conditional bypass — the §6.3 "Signature Optimization for Bypass
//! Logic" use case.
//!
//! CacheMind identifies PCs whose accesses have near-zero hit rates and long
//! reuse distances even under Belady; inserting their lines only pollutes
//! the cache. [`BypassPolicy`] wraps any inner policy and skips fills for
//! accesses issued by the listed PCs.

use std::collections::HashSet;

use cachemind_sim::addr::Pc;
use cachemind_sim::cache::SetView;
use cachemind_sim::replacement::{AccessContext, Decision, ReplacementPolicy};

/// Wraps an inner policy with a PC bypass list.
///
/// ```rust
/// use cachemind_policies::BypassPolicy;
/// use cachemind_sim::addr::Pc;
/// use cachemind_sim::replacement::{RecencyPolicy, ReplacementPolicy};
///
/// let p = BypassPolicy::new(RecencyPolicy::lru(), [Pc::new(0x4037aa)]);
/// assert_eq!(p.name(), "bypass");
/// ```
#[derive(Debug, Clone)]
pub struct BypassPolicy<P> {
    inner: P,
    bypass_pcs: HashSet<Pc>,
    bypasses: u64,
}

impl<P: ReplacementPolicy> BypassPolicy<P> {
    /// Creates the wrapper with the given bypass PCs.
    pub fn new(inner: P, pcs: impl IntoIterator<Item = Pc>) -> Self {
        BypassPolicy { inner, bypass_pcs: pcs.into_iter().collect(), bypasses: 0 }
    }

    /// The PCs currently bypassed.
    pub fn bypass_pcs(&self) -> &HashSet<Pc> {
        &self.bypass_pcs
    }

    /// Number of fills skipped so far.
    pub fn bypass_count(&self) -> u64 {
        self.bypasses
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: ReplacementPolicy> ReplacementPolicy for BypassPolicy<P> {
    fn name(&self) -> &'static str {
        "bypass"
    }

    fn on_hit(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        self.inner.on_hit(way, lines, ctx);
    }

    fn choose_victim(&mut self, lines: SetView<'_>, ctx: &AccessContext) -> Decision {
        if self.bypass_pcs.contains(&ctx.pc) {
            self.bypasses += 1;
            return Decision::Bypass;
        }
        self.inner.choose_victim(lines, ctx)
    }

    fn on_fill(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        self.inner.on_fill(way, lines, ctx);
    }

    fn line_scores_into(
        &self,
        set: cachemind_sim::addr::SetId,
        lines: SetView<'_>,
        now: u64,
        out: &mut Vec<u64>,
    ) {
        self.inner.line_scores_into(set, lines, now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::access::MemoryAccess;
    use cachemind_sim::addr::Address;
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    /// Hot lines from PC A, polluting streamers from PC B.
    fn pollution(reps: u64) -> Vec<MemoryAccess> {
        let mut out = Vec::new();
        let mut idx = 0;
        let mut cold = 1 << 20;
        for _ in 0..reps {
            for h in 0..4u64 {
                out.push(MemoryAccess::load(Pc::new(0xA), Address::new(h * 64), idx));
                idx += 1;
            }
            for _ in 0..8u64 {
                out.push(MemoryAccess::load(Pc::new(0xB), Address::new(cold * 64), idx));
                cold += 1;
                idx += 1;
            }
        }
        out
    }

    #[test]
    fn bypassing_streamer_pc_raises_hit_rate() {
        let cfg = CacheConfig::new("t", 0, 4, 6); // one 4-way set
        let s = pollution(32);
        let replay = LlcReplay::new(cfg.clone(), &s);
        let base = replay.run(RecencyPolicy::lru());
        let bypassed = replay.run(BypassPolicy::new(RecencyPolicy::lru(), [Pc::new(0xB)]));
        assert!(
            bypassed.stats.hit_rate() > base.stats.hit_rate(),
            "bypass {} vs base {}",
            bypassed.stats.hit_rate(),
            base.stats.hit_rate()
        );
        assert!(bypassed.stats.bypasses > 0);
    }

    #[test]
    fn bypass_only_applies_to_listed_pcs() {
        let cfg = CacheConfig::new("t", 0, 2, 6);
        let s = pollution(4);
        let replay = LlcReplay::new(cfg, &s);
        let report = replay.run(BypassPolicy::new(RecencyPolicy::lru(), [Pc::new(0xFF)]));
        assert_eq!(report.stats.bypasses, 0);
    }
}
