//! The PARROT surrogate: imitation learning of Belady's policy.
//!
//! PARROT (Liu et al., ICML 2020) trains an LSTM offline to imitate the
//! Belady oracle and deploys a lightweight ranking predictor. Our surrogate
//! keeps the two essential properties the CacheMind evaluation depends on —
//! *PC-local learned behaviour* and *imitation of oracle labels* — while
//! replacing the LSTM with a feature-hashed linear model that regresses the
//! log₂ reuse-distance bucket of each access. Victim selection evicts the
//! line with the largest predicted (and then aged) reuse distance, exactly
//! the oracle's decision rule under the learned estimate.
//!
//! Because imitation labels come from [`AccessContext::next_use`], the
//! policy requires an oracle-driven replay, mirroring PARROT's offline
//! training on collected traces. Unlike Belady it only ever *generalises*
//! from PC/address features, so its per-PC behaviour deviates from the
//! oracle — including the paper's observation (§6.3) that PARROT sometimes
//! beats Belady for individual PCs while losing in aggregate.

use cachemind_sim::addr::SetId;
use cachemind_sim::cache::SetView;
use cachemind_sim::replacement::{AccessContext, Decision, ReplacementPolicy};
use cachemind_sim::reuse::NEVER;

use crate::features::{feature_bucket, log2_bucket, PerWayTable};

const WEIGHT_BITS: u32 = 14;
const N_FEATURES: usize = 4;
const LEARNING_RATE: f32 = 0.08;
const MAX_BUCKET: u8 = 24;

#[derive(Debug, Clone, Copy, Default)]
struct ImLine {
    predicted_bucket: f32,
    stamped_at: u64,
}

/// The imitation-learned ("parrot") replacement policy.
#[derive(Debug, Clone)]
pub struct ImitationPolicy {
    weights: Vec<f32>,
    line: PerWayTable<ImLine>,
    /// Sum of squared training error (diagnostics).
    sse: f64,
    samples: u64,
}

impl Default for ImitationPolicy {
    fn default() -> Self {
        ImitationPolicy::new()
    }
}

impl ImitationPolicy {
    /// Creates the policy with zero-initialised weights.
    pub fn new() -> Self {
        ImitationPolicy {
            weights: vec![0.0; 1 << WEIGHT_BITS],
            line: PerWayTable::new(ImLine::default()),
            sse: 0.0,
            samples: 0,
        }
    }

    fn feature_indices(ctx: &AccessContext) -> [usize; N_FEATURES] {
        let pc = ctx.pc.value();
        let line = ctx.line.value();
        [
            feature_bucket(1, pc, WEIGHT_BITS),
            feature_bucket(2, line >> 6, WEIGHT_BITS), // 4 KB region
            feature_bucket(3, pc ^ (line >> 10), WEIGHT_BITS),
            feature_bucket(4, pc.rotate_left(17) ^ line, WEIGHT_BITS),
        ]
    }

    /// Predicted log₂ reuse-distance bucket for an access context.
    fn predict(&self, ctx: &AccessContext) -> f32 {
        Self::feature_indices(ctx).iter().map(|&i| self.weights[i]).sum()
    }

    fn train(&mut self, ctx: &AccessContext) -> f32 {
        let next = ctx.next_use.expect("ImitationPolicy requires an oracle-driven replay");
        let label = if next == NEVER {
            MAX_BUCKET as f32
        } else {
            log2_bucket(next - ctx.index, MAX_BUCKET) as f32
        };
        let prediction = self.predict(ctx);
        let err = prediction - label;
        let step = LEARNING_RATE * err / N_FEATURES as f32;
        for i in Self::feature_indices(ctx) {
            self.weights[i] -= step;
        }
        self.sse += (err * err) as f64;
        self.samples += 1;
        prediction
    }

    /// Root-mean-square imitation error over all training samples so far.
    pub fn rms_error(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            (self.sse / self.samples as f64).sqrt()
        }
    }

    fn stamp(&mut self, way: usize, ways: usize, ctx: &AccessContext, prediction: f32) {
        *self.line.slot_mut(ctx.set, way, ways) =
            ImLine { predicted_bucket: prediction, stamped_at: ctx.index };
    }

    fn score(&self, set: SetId, way: usize, now: u64) -> f32 {
        let state = self.line.slot(set, way);
        // Aging: a line predicted for bucket b should have been reused within
        // ~2^b accesses; past that, its effective distance keeps growing.
        let elapsed = now.saturating_sub(state.stamped_at).max(1);
        let elapsed_bucket = log2_bucket(elapsed, MAX_BUCKET) as f32;
        state.predicted_bucket.max(elapsed_bucket)
    }
}

impl ReplacementPolicy for ImitationPolicy {
    fn name(&self) -> &'static str {
        "parrot"
    }

    fn on_hit(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        let prediction = self.train(ctx);
        self.stamp(way, lines.len(), ctx, prediction);
    }

    fn choose_victim(&mut self, lines: SetView<'_>, ctx: &AccessContext) -> Decision {
        let victim = (0..lines.len())
            .filter(|&w| lines.is_valid(w))
            .max_by(|&a, &b| {
                self.score(ctx.set, a, ctx.index).total_cmp(&self.score(ctx.set, b, ctx.index))
            })
            .expect("set cannot be empty in choose_victim");
        Decision::Evict(victim)
    }

    fn on_fill(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        let prediction = self.train(ctx);
        self.stamp(way, lines.len(), ctx, prediction);
    }

    fn line_scores_into(&self, set: SetId, lines: SetView<'_>, now: u64, out: &mut Vec<u64>) {
        out.clear();
        out.extend((0..lines.len()).map(|way| {
            if lines.is_valid(way) {
                (self.score(set, way, now) * 256.0).max(0.0) as u64
            } else {
                u64::MAX
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady::BeladyPolicy;
    use cachemind_sim::access::MemoryAccess;
    use cachemind_sim::addr::{Address, Pc};
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    /// Short-reuse PC interleaved with never-reused streamers.
    fn workload(reps: u64) -> Vec<MemoryAccess> {
        let mut out = Vec::new();
        let mut idx = 0;
        let mut cold = 1u64 << 22;
        for _ in 0..reps {
            for h in 0..8u64 {
                out.push(MemoryAccess::load(Pc::new(0x1000), Address::new(h * 64), idx));
                idx += 1;
            }
            for _ in 0..24u64 {
                out.push(MemoryAccess::load(Pc::new(0x2000), Address::new(cold * 64), idx));
                cold += 1;
                idx += 1;
            }
        }
        out
    }

    #[test]
    fn imitation_sits_between_lru_and_belady() {
        let cfg = CacheConfig::new("t", 2, 4, 6);
        let s = workload(64);
        let replay = LlcReplay::new(cfg, &s);
        let parrot = replay.run(ImitationPolicy::new());
        let lru = replay.run(RecencyPolicy::lru());
        let opt = replay.run(BeladyPolicy::new());
        assert!(
            parrot.stats.hits > lru.stats.hits,
            "parrot {} vs lru {}",
            parrot.stats.hits,
            lru.stats.hits
        );
        assert!(parrot.stats.hits <= opt.stats.hits, "cannot beat the oracle in aggregate");
    }

    #[test]
    fn training_reduces_error() {
        let cfg = CacheConfig::new("t", 2, 4, 6);
        let s = workload(8);
        let replay = LlcReplay::new(cfg.clone(), &s);
        use cachemind_sim::cache::SetAssociativeCache;
        let mut cache = SetAssociativeCache::new(cfg, ImitationPolicy::new());
        let oracle = replay.oracle();
        for (i, a) in replay.stream().iter().enumerate() {
            let set = cache.set_of(a.address);
            let line = a.address.line(6);
            let ctx =
                AccessContext::with_oracle(i as u64, a.pc, line, set, a.kind, oracle.next_use(i));
            let _ = cache.access(&ctx);
        }
        // After seeing the workload several times the RMS bucket error must
        // be small relative to the 24-bucket range.
        assert!(cache.policy().rms_error() < 8.0, "rms {}", cache.policy().rms_error());
    }

    #[test]
    #[should_panic(expected = "oracle-driven")]
    fn online_use_panics() {
        use cachemind_sim::cache::SetAssociativeCache;
        let mut cache =
            SetAssociativeCache::new(CacheConfig::new("t", 0, 1, 6), ImitationPolicy::new());
        let a = MemoryAccess::load(Pc::new(1), Address::new(0), 0);
        let set = cache.set_of(a.address);
        let _ = cache.access(&AccessContext::demand(0, &a, set));
    }
}
