//! The MLP replacement policy: a from-scratch multi-layer perceptron
//! classifying "will this line be reused soon?".
//!
//! The paper integrates an MLP-based policy (after Jiménez & Teran's
//! multiperspective reuse prediction) into the PARROT framework as the
//! fourth database policy. This implementation builds the network from
//! scratch — one hidden layer, tanh activations, a sigmoid output — with
//! online logistic-regression training on oracle labels ("reused within a
//! window" vs not), mirroring its role as an offline-trained model.

use cachemind_sim::addr::SetId;
use cachemind_sim::cache::SetView;
use cachemind_sim::replacement::{AccessContext, Decision, ReplacementPolicy};
use cachemind_sim::reuse::NEVER;

use crate::features::{mix64, PerWayTable, SplitMix64};

const N_INPUT: usize = 14;
const N_HIDDEN: usize = 10;
const LEARNING_RATE: f32 = 0.05;
/// "Reused soon" window, in LLC accesses.
const REUSE_WINDOW: u64 = 4096;

#[derive(Debug, Clone, Copy, Default)]
struct MlpLine {
    /// Predicted reuse probability at last touch.
    p_reuse: f32,
    stamped_at: u64,
}

/// A tiny fully-connected network: `N_INPUT -> N_HIDDEN (tanh) -> 1 (sigmoid)`.
#[derive(Debug, Clone)]
struct Network {
    w1: Vec<f32>, // N_HIDDEN x N_INPUT
    b1: Vec<f32>,
    w2: Vec<f32>, // N_HIDDEN
    b2: f32,
}

impl Network {
    fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut rand_small = |scale: f32| {
            // Uniform in [-scale, scale], deterministic.
            let u = (rng.next_u64() >> 11) as f32 / (1u64 << 53) as f32;
            (u * 2.0 - 1.0) * scale
        };
        Network {
            w1: (0..N_HIDDEN * N_INPUT).map(|_| rand_small(0.4)).collect(),
            b1: (0..N_HIDDEN).map(|_| rand_small(0.1)).collect(),
            w2: (0..N_HIDDEN).map(|_| rand_small(0.4)).collect(),
            b2: 0.0,
        }
    }

    fn forward(&self, x: &[f32; N_INPUT]) -> ([f32; N_HIDDEN], f32) {
        let mut h = [0.0f32; N_HIDDEN];
        for (j, hj) in h.iter_mut().enumerate() {
            let mut acc = self.b1[j];
            for (i, &xi) in x.iter().enumerate() {
                acc += self.w1[j * N_INPUT + i] * xi;
            }
            *hj = acc.tanh();
        }
        let mut z = self.b2;
        for (j, &hj) in h.iter().enumerate() {
            z += self.w2[j] * hj;
        }
        (h, 1.0 / (1.0 + (-z).exp()))
    }

    /// One SGD step of binary cross-entropy; returns the pre-update output.
    fn train(&mut self, x: &[f32; N_INPUT], label: f32) -> f32 {
        let (h, p) = self.forward(x);
        let delta = p - label; // dL/dz for sigmoid + BCE
        for (j, &hj) in h.iter().enumerate() {
            let grad_h = delta * self.w2[j] * (1.0 - hj * hj); // through tanh
            self.w2[j] -= LEARNING_RATE * delta * hj;
            for (i, &xi) in x.iter().enumerate() {
                self.w1[j * N_INPUT + i] -= LEARNING_RATE * grad_h * xi;
            }
            self.b1[j] -= LEARNING_RATE * grad_h;
        }
        self.b2 -= LEARNING_RATE * delta;
        p
    }
}

/// The MLP replacement policy.
#[derive(Debug, Clone)]
pub struct MlpPolicy {
    net: Network,
    line: PerWayTable<MlpLine>,
}

impl Default for MlpPolicy {
    fn default() -> Self {
        MlpPolicy::new()
    }
}

impl MlpPolicy {
    /// Creates the policy with deterministic weight initialisation.
    pub fn new() -> Self {
        MlpPolicy { net: Network::new(0x31337), line: PerWayTable::new(MlpLine::default()) }
    }

    fn featurize(ctx: &AccessContext) -> [f32; N_INPUT] {
        let mut x = [0.0f32; N_INPUT];
        let pc_hash = mix64(ctx.pc.value());
        // 8 hashed PC bits.
        for (i, xi) in x.iter_mut().take(8).enumerate() {
            *xi = ((pc_hash >> i) & 1) as f32;
        }
        let addr_hash = mix64(ctx.line.value() >> 6);
        // 4 hashed 4KB-region bits.
        for i in 0..4 {
            x[8 + i] = ((addr_hash >> i) & 1) as f32;
        }
        // Low set bit (captures stride structure) and bias.
        x[12] = (ctx.set.index() & 1) as f32;
        x[13] = 1.0;
        x
    }

    fn label(ctx: &AccessContext) -> f32 {
        let next = ctx.next_use.expect("MlpPolicy requires an oracle-driven replay");
        if next != NEVER && next - ctx.index <= REUSE_WINDOW {
            1.0
        } else {
            0.0
        }
    }

    /// Predicted reuse probability for an access context (diagnostics).
    pub fn predict(&self, ctx: &AccessContext) -> f32 {
        self.net.forward(&Self::featurize(ctx)).1
    }

    fn touch(&mut self, way: usize, ways: usize, ctx: &AccessContext) {
        let x = Self::featurize(ctx);
        let p = self.net.train(&x, Self::label(ctx));
        *self.line.slot_mut(ctx.set, way, ways) = MlpLine { p_reuse: p, stamped_at: ctx.index };
    }

    fn score(&self, set: SetId, way: usize, now: u64) -> f32 {
        let state = self.line.slot(set, way);
        let age = now.saturating_sub(state.stamped_at) as f32;
        // Evictability: low predicted reuse, boosted by staleness.
        (1.0 - state.p_reuse) + (age / REUSE_WINDOW as f32).min(1.0)
    }
}

impl ReplacementPolicy for MlpPolicy {
    fn name(&self) -> &'static str {
        "mlp"
    }

    fn on_hit(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        self.touch(way, lines.len(), ctx);
    }

    fn choose_victim(&mut self, lines: SetView<'_>, ctx: &AccessContext) -> Decision {
        let victim = (0..lines.len())
            .filter(|&w| lines.is_valid(w))
            .max_by(|&a, &b| {
                self.score(ctx.set, a, ctx.index).total_cmp(&self.score(ctx.set, b, ctx.index))
            })
            .expect("set cannot be empty in choose_victim");
        Decision::Evict(victim)
    }

    fn on_fill(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        self.touch(way, lines.len(), ctx);
    }

    fn line_scores_into(&self, set: SetId, lines: SetView<'_>, now: u64, out: &mut Vec<u64>) {
        out.clear();
        out.extend((0..lines.len()).map(|way| {
            if lines.is_valid(way) {
                (self.score(set, way, now) * 1024.0).max(0.0) as u64
            } else {
                u64::MAX
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::access::MemoryAccess;
    use cachemind_sim::addr::{Address, Pc};
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    fn workload(reps: u64) -> Vec<MemoryAccess> {
        let mut out = Vec::new();
        let mut idx = 0;
        let mut cold = 1u64 << 22;
        for _ in 0..reps {
            for h in 0..8u64 {
                out.push(MemoryAccess::load(Pc::new(0x5000), Address::new(h * 64), idx));
                idx += 1;
            }
            for _ in 0..24u64 {
                out.push(MemoryAccess::load(Pc::new(0x6000), Address::new(cold * 64), idx));
                cold += 1;
                idx += 1;
            }
        }
        out
    }

    #[test]
    fn network_learns_xor_free_separable_task() {
        // Sanity: the net can learn "feature 0 set => positive".
        let mut net = Network::new(1);
        let mut pos = [0.0f32; N_INPUT];
        pos[0] = 1.0;
        pos[13] = 1.0;
        let mut neg = [0.0f32; N_INPUT];
        neg[13] = 1.0;
        for _ in 0..2000 {
            net.train(&pos, 1.0);
            net.train(&neg, 0.0);
        }
        assert!(net.forward(&pos).1 > 0.8);
        assert!(net.forward(&neg).1 < 0.2);
    }

    #[test]
    fn mlp_beats_lru_on_mixed_streams() {
        let cfg = CacheConfig::new("t", 2, 4, 6);
        let s = workload(64);
        let replay = LlcReplay::new(cfg, &s);
        let mlp = replay.run(MlpPolicy::new());
        let lru = replay.run(RecencyPolicy::lru());
        assert!(
            mlp.stats.hits > lru.stats.hits,
            "mlp {} vs lru {}",
            mlp.stats.hits,
            lru.stats.hits
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = CacheConfig::new("t", 2, 4, 6);
        let s = workload(16);
        let replay = LlcReplay::new(cfg, &s);
        let a = replay.run(MlpPolicy::new());
        let b = replay.run(MlpPolicy::new());
        assert_eq!(a.stats, b.stats);
    }
}
