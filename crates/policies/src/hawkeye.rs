//! Hawkeye (Jain & Lin, ISCA 2016) — Belady-guided PC classification.
//!
//! Hawkeye reconstructs, on a handful of *sampled sets*, what Belady's MIN
//! would have done (the OPTgen occupancy-vector test) and uses those
//! hit/miss labels to train a PC-indexed classifier. Lines inserted by
//! "cache-averse" PCs are evicted first; evicting a "cache-friendly" line
//! detrains its PC.
//!
//! This is the simplified but mechanistically faithful variant: OPTgen over
//! a bounded history window, a table of signed saturating counters, and
//! oldest-first eviction within each friendliness class.

use std::collections::HashMap;

use cachemind_sim::addr::SetId;
use cachemind_sim::cache::SetView;
use cachemind_sim::replacement::{AccessContext, Decision, ReplacementPolicy};

use crate::features::{feature_bucket, PerWayTable};

const PREDICTOR_BITS: u32 = 12;
const COUNTER_MAX: i8 = 15;
const COUNTER_MIN: i8 = -16;
const SAMPLE_MODULUS: usize = 8;
const HISTORY_QUANTA: usize = 128;

/// Per-line Hawkeye state.
#[derive(Debug, Clone, Copy, Default)]
struct HawkLine {
    friendly: bool,
    pc_sig: u32,
}

/// One sampled set's OPTgen machinery.
#[derive(Debug, Clone)]
struct SampledSet {
    /// Set-local access clock.
    clock: u64,
    /// line -> (last access clock, pc signature of that access)
    last: HashMap<u64, (u64, u32)>,
    /// Occupancy vector over the last `HISTORY_QUANTA` set accesses.
    occupancy: Vec<u8>,
}

impl SampledSet {
    fn new() -> Self {
        SampledSet { clock: 0, last: HashMap::new(), occupancy: vec![0; HISTORY_QUANTA] }
    }

    /// Runs the OPTgen test for a reuse interval ending now; returns whether
    /// MIN would have hit, and updates the occupancy vector if so.
    fn opt_would_hit(&mut self, prev: u64, now: u64, ways: u8) -> bool {
        if now - prev >= HISTORY_QUANTA as u64 {
            return false; // beyond the modelled window: treat as OPT miss
        }
        let fits = (prev..now).all(|t| self.occupancy[(t % HISTORY_QUANTA as u64) as usize] < ways);
        if fits {
            for t in prev..now {
                self.occupancy[(t % HISTORY_QUANTA as u64) as usize] += 1;
            }
        }
        fits
    }

    fn observe(&mut self, line: u64, pc_sig: u32, ways: u8) -> Option<bool> {
        let now = self.clock;
        // Reset the quantum that the advancing clock is about to reuse.
        self.occupancy[(now % HISTORY_QUANTA as u64) as usize] = 0;
        let verdict =
            self.last.get(&line).copied().map(|(prev, _)| self.opt_would_hit(prev, now, ways));
        self.last.insert(line, (now, pc_sig));
        self.clock += 1;
        // Bound the sampler.
        if self.last.len() > 4 * ways as usize {
            if let Some((&victim, _)) = self.last.iter().min_by_key(|(_, &(t, _))| t) {
                self.last.remove(&victim);
            }
        }
        verdict
    }
}

/// The Hawkeye replacement policy.
#[derive(Debug, Clone)]
pub struct HawkeyePolicy {
    predictor: Vec<i8>,
    line: PerWayTable<HawkLine>,
    samplers: HashMap<usize, SampledSet>,
}

impl Default for HawkeyePolicy {
    fn default() -> Self {
        HawkeyePolicy::new()
    }
}

impl HawkeyePolicy {
    /// Creates the policy with a weakly-friendly prior.
    pub fn new() -> Self {
        HawkeyePolicy {
            predictor: vec![1; 1 << PREDICTOR_BITS],
            line: PerWayTable::new(HawkLine::default()),
            samplers: HashMap::new(),
        }
    }

    fn sig(ctx: &AccessContext) -> u32 {
        feature_bucket(0x4A17_0E13, ctx.pc.value(), PREDICTOR_BITS) as u32
    }

    fn is_friendly(&self, sig: u32) -> bool {
        self.predictor[sig as usize] >= 0
    }

    fn train(&mut self, sig: u32, up: bool) {
        let c = &mut self.predictor[sig as usize];
        *c = if up { (*c + 1).min(COUNTER_MAX) } else { (*c - 1).max(COUNTER_MIN) };
    }

    fn sample(&mut self, ctx: &AccessContext, ways: usize) {
        if !ctx.set.index().is_multiple_of(SAMPLE_MODULUS) {
            return;
        }
        let sig = Self::sig(ctx);
        let sampler = self.samplers.entry(ctx.set.index()).or_insert_with(SampledSet::new);
        // The label trains the PC of the access that *loaded* the interval:
        // the previous toucher. We approximate with the current PC, which is
        // identical for the dominant single-PC streams the classifier keys on.
        if let Some(opt_hit) = sampler.observe(ctx.line.value(), sig, ways as u8) {
            self.train(sig, opt_hit);
        }
    }
}

impl ReplacementPolicy for HawkeyePolicy {
    fn name(&self) -> &'static str {
        "hawkeye"
    }

    fn on_hit(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        let ways = lines.len();
        self.sample(ctx, ways);
        let sig = Self::sig(ctx);
        let friendly = self.is_friendly(sig);
        *self.line.slot_mut(ctx.set, way, ways) = HawkLine { friendly, pc_sig: sig };
    }

    fn choose_victim(&mut self, lines: SetView<'_>, ctx: &AccessContext) -> Decision {
        let ways = lines.len();
        // Prefer the oldest cache-averse line; fall back to the oldest
        // friendly line and detrain its PC.
        let mut averse: Option<(usize, u64)> = None;
        let mut friendly: Option<(usize, u64)> = None;
        for way in 0..lines.len() {
            if !lines.is_valid(way) {
                continue;
            }
            let last_touch = lines.last_touch(way);
            let state = self.line.slot(ctx.set, way);
            let slot_ref = if state.friendly { &mut friendly } else { &mut averse };
            if slot_ref.is_none_or(|(_, t)| last_touch < t) {
                *slot_ref = Some((way, last_touch));
            }
        }
        if let Some((way, _)) = averse {
            return Decision::Evict(way);
        }
        let (way, _) = friendly.expect("set cannot be empty in choose_victim");
        let sig = self.line.slot(ctx.set, way).pc_sig;
        self.train(sig, false);
        let _ = ways;
        Decision::Evict(way)
    }

    fn on_fill(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        let ways = lines.len();
        self.sample(ctx, ways);
        let sig = Self::sig(ctx);
        let friendly = self.is_friendly(sig);
        *self.line.slot_mut(ctx.set, way, ways) = HawkLine { friendly, pc_sig: sig };
    }

    fn line_scores_into(&self, set: SetId, lines: SetView<'_>, now: u64, out: &mut Vec<u64>) {
        out.clear();
        out.extend((0..lines.len()).map(|way| {
            if !lines.is_valid(way) {
                return u64::MAX;
            }
            let age = now.saturating_sub(lines.last_touch(way));
            if self.line.slot(set, way).friendly {
                age
            } else {
                // Averse lines score far above any friendly line.
                (1 << 32) + age
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::access::MemoryAccess;
    use cachemind_sim::addr::{Address, Pc};
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    /// Hot set from PC A revisited twice per repetition (spread across all
    /// sets); one-shot streamers from PC B.
    fn classifier_workload(reps: u64) -> Vec<MemoryAccess> {
        let mut out = Vec::new();
        let mut idx = 0;
        let mut cold = 1u64 << 22;
        for _ in 0..reps {
            for _ in 0..2 {
                for h in 0..16u64 {
                    out.push(MemoryAccess::load(Pc::new(0xAAA0), Address::new(h * 64), idx));
                    idx += 1;
                }
            }
            for _ in 0..32u64 {
                out.push(MemoryAccess::load(Pc::new(0xBBB0), Address::new(cold * 64), idx));
                cold += 1;
                idx += 1;
            }
        }
        out
    }

    #[test]
    fn hawkeye_beats_lru_on_mixed_streams() {
        let cfg = CacheConfig::new("t", 3, 4, 6);
        let s = classifier_workload(32);
        let replay = LlcReplay::new(cfg, &s);
        let hawkeye = replay.run(HawkeyePolicy::new());
        let lru = replay.run(RecencyPolicy::lru());
        assert!(
            hawkeye.stats.hits > lru.stats.hits,
            "hawkeye {} vs lru {}",
            hawkeye.stats.hits,
            lru.stats.hits
        );
    }

    #[test]
    fn optgen_hits_within_capacity() {
        let mut s = SampledSet::new();
        assert_eq!(s.observe(1, 0, 2), None); // first touch
        assert_eq!(s.observe(2, 0, 2), None);
        assert_eq!(s.observe(1, 0, 2), Some(true)); // interval of 2 fits 2 ways
    }

    #[test]
    fn optgen_misses_beyond_capacity() {
        // OPTgen models MIN-with-bypass: only *demonstrated* reuse intervals
        // occupy the cache. With 1 way, the intervals of two interleaved
        // reused lines cannot both fit: the first reuse claims the quanta,
        // the second is an OPT miss.
        let mut s = SampledSet::new();
        assert_eq!(s.observe(1, 0, 1), None);
        assert_eq!(s.observe(2, 0, 1), None);
        assert_eq!(s.observe(1, 0, 1), Some(true)); // [0,2) free
        assert_eq!(s.observe(2, 0, 1), Some(false)); // [1,3) now occupied at t=1
    }

    #[test]
    fn counters_saturate() {
        let mut p = HawkeyePolicy::new();
        for _ in 0..100 {
            p.train(3, true);
        }
        assert_eq!(p.predictor[3], COUNTER_MAX);
        for _ in 0..100 {
            p.train(3, false);
        }
        assert_eq!(p.predictor[3], COUNTER_MIN);
    }
}
