//! Re-reference interval prediction: SRRIP, BRRIP and set-dueling DRRIP
//! (Jaleel et al., ISCA 2010).

use cachemind_sim::addr::SetId;
use cachemind_sim::cache::SetView;
use cachemind_sim::replacement::{AccessContext, Decision, ReplacementPolicy};

use crate::features::{PerWayTable, SplitMix64};

const RRPV_MAX: u8 = 3; // 2-bit RRPVs
const RRPV_LONG: u8 = RRPV_MAX - 1;
const PSEL_MAX: i32 = 1023;
const DUEL_MODULUS: usize = 32;

/// Insertion flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RripFlavor {
    /// Static: always insert with a long re-reference interval.
    Srrip,
    /// Bimodal: insert distant, occasionally long.
    Brrip,
    /// Dynamic: set dueling between SRRIP and BRRIP.
    Drrip,
}

/// The RRIP policy family.
///
/// ```rust
/// use cachemind_policies::RripPolicy;
/// use cachemind_sim::replacement::ReplacementPolicy;
/// assert_eq!(RripPolicy::drrip().name(), "drrip");
/// ```
#[derive(Debug, Clone)]
pub struct RripPolicy {
    flavor: RripFlavor,
    rrpv: PerWayTable<u8>,
    rng: SplitMix64,
    /// Policy-selection counter for DRRIP dueling; positive favors BRRIP.
    psel: i32,
}

impl RripPolicy {
    fn with_flavor(flavor: RripFlavor) -> Self {
        RripPolicy {
            flavor,
            rrpv: PerWayTable::new(RRPV_MAX),
            rng: SplitMix64::new(0x5EED_0001),
            psel: 0,
        }
    }

    /// Static RRIP.
    pub fn srrip() -> Self {
        RripPolicy::with_flavor(RripFlavor::Srrip)
    }

    /// Bimodal RRIP.
    pub fn brrip() -> Self {
        RripPolicy::with_flavor(RripFlavor::Brrip)
    }

    /// Dynamic RRIP with set dueling.
    pub fn drrip() -> Self {
        RripPolicy::with_flavor(RripFlavor::Drrip)
    }

    /// Leader-set role for DRRIP dueling.
    fn duel_role(set: SetId) -> DuelRole {
        match set.index() % DUEL_MODULUS {
            0 => DuelRole::SrripLeader,
            1 => DuelRole::BrripLeader,
            _ => DuelRole::Follower,
        }
    }

    fn insertion_rrpv(&mut self, set: SetId) -> u8 {
        let brrip_insert = |rng: &mut SplitMix64| {
            // BRRIP: distant (RRPV_MAX) most of the time, long 1/32 of the time.
            if rng.one_in(32) {
                RRPV_LONG
            } else {
                RRPV_MAX
            }
        };
        match self.flavor {
            RripFlavor::Srrip => RRPV_LONG,
            RripFlavor::Brrip => brrip_insert(&mut self.rng),
            RripFlavor::Drrip => match Self::duel_role(set) {
                DuelRole::SrripLeader => RRPV_LONG,
                DuelRole::BrripLeader => brrip_insert(&mut self.rng),
                DuelRole::Follower => {
                    if self.psel > 0 {
                        brrip_insert(&mut self.rng)
                    } else {
                        RRPV_LONG
                    }
                }
            },
        }
    }

    fn train_duel(&mut self, set: SetId) {
        if self.flavor != RripFlavor::Drrip {
            return;
        }
        // A miss in a leader set is a vote against that leader's flavor.
        match Self::duel_role(set) {
            DuelRole::SrripLeader => self.psel = (self.psel + 1).min(PSEL_MAX),
            DuelRole::BrripLeader => self.psel = (self.psel - 1).max(-PSEL_MAX),
            DuelRole::Follower => {}
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DuelRole {
    SrripLeader,
    BrripLeader,
    Follower,
}

impl ReplacementPolicy for RripPolicy {
    fn name(&self) -> &'static str {
        match self.flavor {
            RripFlavor::Srrip => "srrip",
            RripFlavor::Brrip => "brrip",
            RripFlavor::Drrip => "drrip",
        }
    }

    fn on_hit(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        // Hit promotion: RRPV := 0.
        *self.rrpv.slot_mut(ctx.set, way, lines.len()) = 0;
    }

    fn choose_victim(&mut self, lines: SetView<'_>, ctx: &AccessContext) -> Decision {
        self.train_duel(ctx.set);
        let ways = lines.len();
        // Age until some way reaches RRPV_MAX, then evict the lowest such way.
        loop {
            for way in 0..ways {
                if self.rrpv.slot(ctx.set, way) >= RRPV_MAX {
                    return Decision::Evict(way);
                }
            }
            for way in 0..ways {
                let v = self.rrpv.slot_mut(ctx.set, way, ways);
                *v = v.saturating_add(1).min(RRPV_MAX);
            }
        }
    }

    fn on_fill(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        let insert = self.insertion_rrpv(ctx.set);
        *self.rrpv.slot_mut(ctx.set, way, lines.len()) = insert;
    }

    fn line_scores_into(&self, set: SetId, lines: SetView<'_>, _now: u64, out: &mut Vec<u64>) {
        out.clear();
        out.extend((0..lines.len()).map(|way| {
            if lines.is_valid(way) {
                self.rrpv.slot(set, way) as u64
            } else {
                u64::MAX
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::access::MemoryAccess;
    use cachemind_sim::addr::{Address, Pc};
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    /// A scanning workload interleaved with a small hot set (touched twice
    /// per repetition so it is promotable): RRIP should protect the hot
    /// lines better than LRU.
    fn scan_with_reuse(hot: u64, scan: u64, reps: u64) -> Vec<MemoryAccess> {
        let mut out = Vec::new();
        let mut idx = 0u64;
        let mut scan_base = 1_000_000u64;
        for _ in 0..reps {
            for _ in 0..2 {
                for h in 0..hot {
                    out.push(MemoryAccess::load(Pc::new(0x400000), Address::new(h * 64), idx));
                    idx += 1;
                }
            }
            for s in 0..scan {
                out.push(MemoryAccess::load(
                    Pc::new(0x400100),
                    Address::new((scan_base + s) * 64),
                    idx,
                ));
                idx += 1;
            }
            scan_base += scan;
        }
        out
    }

    #[test]
    fn srrip_resists_scans_better_than_lru() {
        let cfg = CacheConfig::new("t", 4, 4, 6); // 16 sets x 4 ways
        let s = scan_with_reuse(32, 64, 24);
        let replay = LlcReplay::new(cfg, &s);
        let srrip = replay.run(RripPolicy::srrip());
        let lru = replay.run(RecencyPolicy::lru());
        assert!(
            srrip.stats.hits > lru.stats.hits,
            "srrip {} vs lru {}",
            srrip.stats.hits,
            lru.stats.hits
        );
    }

    #[test]
    fn hit_promotion_protects_reused_lines() {
        let cfg = CacheConfig::new("t", 0, 2, 6);
        // A touched twice, then scan B, C: A should survive the first scan
        // line because its RRPV is 0 while inserts age out first.
        let s: Vec<MemoryAccess> = [1u64, 1, 2, 1]
            .iter()
            .enumerate()
            .map(|(i, &l)| MemoryAccess::load(Pc::new(1), Address::new(l * 64), i as u64))
            .collect();
        let replay = LlcReplay::new(cfg, &s);
        let report = replay.run(RripPolicy::srrip());
        assert!(!report.records[3].is_miss, "A must still be resident");
    }

    #[test]
    fn drrip_psel_moves_on_leader_misses() {
        use cachemind_sim::cache::{LineMeta, SetViewBuf};
        let mut p = RripPolicy::drrip();
        // Misses in the SRRIP leader set (set 0) push PSEL toward BRRIP.
        let lines = SetViewBuf::from_metas(&vec![
            Some(LineMeta {
                line: Address::new(0).line(6),
                last_pc: Pc::new(0),
                insert_pc: Pc::new(0),
                inserted_at: 0,
                last_touch: 0,
                dirty: false,
            });
            2
        ]);
        let ctx = AccessContext::with_oracle(
            5,
            Pc::new(0x1),
            Address::new(0).line(6),
            SetId::new(0),
            cachemind_sim::access::AccessKind::Load,
            u64::MAX,
        );
        let before = p.psel;
        let _ = p.choose_victim(lines.view(), &ctx);
        assert_eq!(p.psel, before + 1);
    }

    #[test]
    fn aging_always_terminates() {
        let cfg = CacheConfig::new("t", 2, 8, 6);
        let s = scan_with_reuse(8, 32, 4);
        let replay = LlcReplay::new(cfg, &s);
        // Just ensure no hang / panic across flavors.
        for policy in [RripPolicy::srrip(), RripPolicy::brrip(), RripPolicy::drrip()] {
            let _ = replay.run(policy);
        }
    }
}
