//! Shared infrastructure for learned policies: per-way state tables,
//! feature hashing and a small deterministic RNG.

use cachemind_sim::addr::SetId;

/// Lazily-grown per-(set, way) state storage.
///
/// Policies do not know the cache geometry at construction time; this table
/// grows on demand, keyed by `set * ways + way`.
#[derive(Debug, Clone)]
pub struct PerWayTable<T> {
    ways: usize,
    slots: Vec<T>,
    default: T,
}

impl<T: Clone> PerWayTable<T> {
    /// Creates an empty table whose slots default to `default`.
    pub fn new(default: T) -> Self {
        PerWayTable { ways: 0, slots: Vec::new(), default }
    }

    fn ensure(&mut self, set: SetId, ways: usize) {
        if ways > self.ways {
            // Re-shape: geometry is constant in practice, so this happens
            // only on first touch.
            self.ways = ways;
            self.slots.clear();
        }
        let needed = (set.index() + 1) * self.ways;
        if self.slots.len() < needed {
            self.slots.resize(needed, self.default.clone());
        }
    }

    /// Mutable access to the slot for `(set, way)` in a set of `ways` ways.
    pub fn slot_mut(&mut self, set: SetId, way: usize, ways: usize) -> &mut T {
        self.ensure(set, ways);
        &mut self.slots[set.index() * self.ways + way]
    }

    /// Read access; returns the default for untouched slots.
    pub fn slot(&self, set: SetId, way: usize) -> T {
        if self.ways == 0 {
            return self.default.clone();
        }
        self.slots
            .get(set.index() * self.ways + way)
            .cloned()
            .unwrap_or_else(|| self.default.clone())
    }
}

/// A 64-bit finalizer-style hash (SplitMix64 mixing function) for feature
/// hashing. Deterministic across runs and platforms.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a feature id and value into a table of `1 << bits` buckets.
pub fn feature_bucket(feature_id: u64, value: u64, bits: u32) -> usize {
    (mix64(feature_id.wrapping_mul(0x100_0000_01B3) ^ value) & ((1 << bits) - 1)) as usize
}

/// A [`mix64`]-based `Hasher` for policy-internal maps on integer keys.
///
/// The std `HashMap`'s default SipHash costs more than the rest of a
/// sampler probe combined; this mixer is a fraction of that and
/// deterministic across runs. Only safe where map *iteration order* is
/// never observed (lookups, inserts and removals only) — per-key state is
/// layout-independent, so simulated outcomes cannot change.
#[derive(Debug, Clone, Default)]
pub struct Mix64Hasher(u64);

impl std::hash::Hasher for Mix64Hasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Composite-key fallback: fold 8-byte chunks through the mixer.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = mix64(self.0 ^ u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = mix64(self.0 ^ x);
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// `BuildHasher` plugging [`Mix64Hasher`] into `HashMap`/`HashSet`.
pub type Mix64Build = std::hash::BuildHasherDefault<Mix64Hasher>;

/// A tiny deterministic PRNG (SplitMix64) for policies that need randomness
/// (BRRIP's occasional near-insertions, random replacement).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Bernoulli draw with probability `1 / denom`.
    pub fn one_in(&mut self, denom: u64) -> bool {
        self.below(denom) == 0
    }
}

/// Clamps a reuse distance into a log2 bucket in `[0, max_bucket]`, used as
/// a compact learning target.
pub fn log2_bucket(distance: u64, max_bucket: u8) -> u8 {
    if distance == 0 {
        return 0;
    }
    let b = 64 - distance.leading_zeros();
    (b as u8).min(max_bucket)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_way_table_grows_on_demand() {
        let mut t: PerWayTable<u8> = PerWayTable::new(7);
        assert_eq!(t.slot(SetId::new(3), 1), 7);
        *t.slot_mut(SetId::new(3), 1, 4) = 9;
        assert_eq!(t.slot(SetId::new(3), 1), 9);
        assert_eq!(t.slot(SetId::new(3), 0), 7);
        assert_eq!(t.slot(SetId::new(100), 3), 7);
    }

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
    }

    #[test]
    fn feature_bucket_in_range() {
        for v in 0..1000u64 {
            assert!(feature_bucket(3, v, 10) < 1024);
        }
    }

    #[test]
    fn splitmix_below_is_bounded() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn log2_bucket_monotone() {
        assert_eq!(log2_bucket(0, 20), 0);
        assert_eq!(log2_bucket(1, 20), 1);
        assert!(log2_bucket(100, 20) <= log2_bucket(100_000, 20));
        assert_eq!(log2_bucket(u64::MAX - 1, 20), 20);
    }
}
