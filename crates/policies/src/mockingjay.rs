//! Mockingjay (Shah, Jain & Lin, HPCA 2022) — continuous reuse-distance
//! prediction with estimated-time-remaining (ETR) eviction.
//!
//! A PC-indexed reuse-distance predictor (RDP) estimates how far in the
//! future each accessed line will be reused; every resident line carries an
//! ETR that ticks down as its set is accessed, and the victim is the line
//! with the largest |ETR| (farthest predicted reuse, or most overdue).
//! Training samples come from sampled sets; the paper's §6.3 use case —
//! training the RDP only on *stable* PCs identified by CacheMind — is
//! exposed through [`MockingjayPolicy::with_training_filter`].

use std::collections::{HashMap, HashSet, VecDeque};

use cachemind_sim::addr::{Pc, SetId};
use cachemind_sim::cache::SetView;
use cachemind_sim::replacement::{AccessContext, Decision, ReplacementPolicy};

use crate::features::{feature_bucket, Mix64Build, PerWayTable};

const RDP_BITS: u32 = 12;
const SAMPLE_MODULUS: usize = 4;
/// ETR granularity: one ETR unit per this many set accesses.
const GRANULARITY: u64 = 8;
/// Reuse distance assigned to lines that die unsampled ("infinite").
const INF_RD: f32 = 1e6;
/// EWMA learning rate for RDP updates.
const ALPHA: f32 = 0.3;

/// Per-line ETR state, deliberately 8 bytes: the table is indexed by
/// `(set, way)` in near-random order on every fill, so halving the entry
/// size halves the cache-miss footprint of the hottest policy write.
/// `u32`/`i32` lose nothing: values derive from the per-set access clock
/// (bounded by the stream length) and from RDP predictions (bounded by
/// `INF_RD / GRANULARITY`), both far inside 32 bits.
#[derive(Debug, Clone, Copy, Default)]
struct MjLine {
    /// Predicted reuse distance (set accesses / GRANULARITY) at stamp time.
    etr_base: i32,
    /// Set clock when the ETR was stamped.
    stamped_at: u32,
}

/// Reuse history for one sampled set.
///
/// Eviction victims are the entries with the smallest stamp. Stamps are
/// unique and strictly increasing within a set (one clock tick per set
/// access), so the insertion-ordered `queue` yields the same victim a full
/// `min_by_key` scan over `entries` would — in amortised O(1) instead of
/// O(entries) per overflow. Queue entries superseded by a re-insertion are
/// stale (their stamp no longer matches the map) and are skipped.
#[derive(Debug, Clone, Default)]
struct SamplerSet {
    /// line -> (clock stamp, pc sig, pc).
    entries: HashMap<u64, (u64, u32, Pc), Mix64Build>,
    /// (line, clock stamp) in insertion order.
    queue: VecDeque<(u64, u64)>,
}

/// The Mockingjay replacement policy.
#[derive(Debug, Clone)]
pub struct MockingjayPolicy {
    rdp: Vec<f32>,
    line: PerWayTable<MjLine>,
    /// Per-set access clocks, indexed by set and grown on demand.
    clocks: Vec<u64>,
    /// Sampled-set reuse history, indexed by `set / SAMPLE_MODULUS` (only
    /// every `SAMPLE_MODULUS`-th set is sampled) and grown on demand.
    sampler: Vec<SamplerSet>,
    /// When set, only these PCs update the RDP (stable-PC training).
    training_filter: Option<HashSet<Pc>>,
}

impl Default for MockingjayPolicy {
    fn default() -> Self {
        MockingjayPolicy::new()
    }
}

impl MockingjayPolicy {
    /// Creates the policy with an optimistic (short-reuse) prior.
    pub fn new() -> Self {
        MockingjayPolicy {
            rdp: vec![64.0; 1 << RDP_BITS],
            line: PerWayTable::new(MjLine::default()),
            clocks: Vec::new(),
            sampler: Vec::new(),
            training_filter: None,
        }
    }

    /// Restricts RDP training to the given PCs — the CacheMind "stable PC"
    /// use case (§6.3). Lines from other PCs are still predicted and
    /// evicted, but their reuse samples no longer pollute the predictor.
    pub fn with_training_filter(mut self, pcs: impl IntoIterator<Item = Pc>) -> Self {
        self.training_filter = Some(pcs.into_iter().collect());
        self
    }

    /// Whether a training filter is installed.
    pub fn has_training_filter(&self) -> bool {
        self.training_filter.is_some()
    }

    fn sig(pc: Pc) -> u32 {
        feature_bucket(0x0CC1_0EAF, pc.value(), RDP_BITS) as u32
    }

    /// Predicted reuse distance (in set accesses) for a PC.
    pub fn predicted_reuse(&self, pc: Pc) -> f32 {
        self.rdp[Self::sig(pc) as usize]
    }

    fn clock(&mut self, set: SetId) -> u64 {
        self.clocks.get(set.index()).copied().unwrap_or(0)
    }

    fn tick(&mut self, set: SetId) -> u64 {
        if self.clocks.len() <= set.index() {
            self.clocks.resize(set.index() + 1, 0);
        }
        let c = &mut self.clocks[set.index()];
        let now = *c;
        *c += 1;
        now
    }

    fn train(&mut self, sig: u32, pc: Pc, sample: f32) {
        if let Some(filter) = &self.training_filter {
            if !filter.contains(&pc) {
                return;
            }
        }
        let entry = &mut self.rdp[sig as usize];
        *entry += ALPHA * (sample - *entry);
    }

    fn observe_sample(&mut self, ctx: &AccessContext, sig: u32, now: u64, ways: usize) {
        if !ctx.set.index().is_multiple_of(SAMPLE_MODULUS) {
            return;
        }
        let slot = ctx.set.index() / SAMPLE_MODULUS;
        if self.sampler.len() <= slot {
            self.sampler.resize_with(slot + 1, SamplerSet::default);
        }
        // At most two training samples per observation (a reuse and an
        // expiry), collected in a fixed pair so the hot path never
        // allocates.
        let mut pending: [Option<(u32, Pc, f32)>; 2] = [None, None];
        {
            let sampler = &mut self.sampler[slot];
            if let Some((prev, prev_sig, prev_pc)) =
                sampler.entries.insert(ctx.line.value(), (now, sig, ctx.pc))
            {
                pending[0] = Some((prev_sig, prev_pc, (now - prev) as f32));
            }
            sampler.queue.push_back((ctx.line.value(), now));
            // Bound the sampler; expiring entries train toward "infinite"
            // reuse. The queue front is the oldest live entry — the victim
            // a min-stamp scan would select (stamps are unique, so the
            // minimum is unambiguous).
            if sampler.entries.len() > 8 * ways {
                while let Some((line, stamp)) = sampler.queue.pop_front() {
                    match sampler.entries.get(&line) {
                        Some(&(cur, v_sig, v_pc)) if cur == stamp => {
                            sampler.entries.remove(&line);
                            pending[1] = Some((v_sig, v_pc, INF_RD));
                            break;
                        }
                        _ => {} // stale: superseded by a later re-insertion
                    }
                }
            }
        }
        for (sig, pc, sample) in pending.into_iter().flatten() {
            self.train(sig, pc, sample);
        }
    }

    fn stamp(&mut self, way: usize, ways: usize, ctx: &AccessContext, sig: u32, now: u64) {
        let predicted = self.rdp[sig as usize];
        let etr_base = (predicted / GRANULARITY as f32).round() as i32;
        *self.line.slot_mut(ctx.set, way, ways) = MjLine { etr_base, stamped_at: now as u32 };
    }

    fn current_etr(&self, set: SetId, way: usize, now: u64) -> i64 {
        let state = self.line.slot(set, way);
        let elapsed = (now.saturating_sub(state.stamped_at as u64) / GRANULARITY) as i64;
        state.etr_base as i64 - elapsed
    }
}

impl ReplacementPolicy for MockingjayPolicy {
    fn name(&self) -> &'static str {
        "mockingjay"
    }

    fn on_hit(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        let ways = lines.len();
        let now = self.tick(ctx.set);
        let sig = Self::sig(ctx.pc);
        self.observe_sample(ctx, sig, now, ways);
        self.stamp(way, ways, ctx, sig, now);
    }

    fn choose_victim(&mut self, lines: SetView<'_>, ctx: &AccessContext) -> Decision {
        let now = self.clock(ctx.set);
        let victim = (0..lines.len())
            .filter(|&w| lines.is_valid(w))
            .max_by_key(|&w| self.current_etr(ctx.set, w, now).unsigned_abs())
            .expect("set cannot be empty in choose_victim");
        Decision::Evict(victim)
    }

    fn on_fill(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        let ways = lines.len();
        let now = self.tick(ctx.set);
        let sig = Self::sig(ctx.pc);
        self.observe_sample(ctx, sig, now, ways);
        self.stamp(way, ways, ctx, sig, now);
    }

    fn line_scores_into(&self, set: SetId, lines: SetView<'_>, _now: u64, out: &mut Vec<u64>) {
        let now = self.clocks.get(set.index()).copied().unwrap_or(0);
        out.clear();
        out.extend((0..lines.len()).map(|way| {
            if lines.is_valid(way) {
                self.current_etr(set, way, now).unsigned_abs()
            } else {
                u64::MAX
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::access::MemoryAccess;
    use cachemind_sim::addr::Address;
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    /// Tight reuse from one PC (spread over all four sets), long-distance
    /// scans from another; set 0 is a sampled set (index % 4 == 0).
    fn workload(reps: u64) -> Vec<MemoryAccess> {
        let mut out = Vec::new();
        let mut idx = 0;
        let mut cold = 1u64 << 21;
        for _ in 0..reps {
            for _ in 0..2 {
                for h in 0..8u64 {
                    out.push(MemoryAccess::load(Pc::new(0x11_0000), Address::new(h * 64), idx));
                    idx += 1;
                }
            }
            for _ in 0..16u64 {
                out.push(MemoryAccess::load(Pc::new(0x22_0000), Address::new(cold * 64), idx));
                cold += 1;
                idx += 1;
            }
        }
        out
    }

    #[test]
    fn rdp_learns_short_reuse_for_hot_pc() {
        let cfg = CacheConfig::new("t", 2, 4, 6);
        let s = workload(64);
        let replay = LlcReplay::new(cfg.clone(), &s);
        use cachemind_sim::cache::SetAssociativeCache;
        let mut cache = SetAssociativeCache::new(cfg, MockingjayPolicy::new());
        for (i, a) in replay.stream().iter().enumerate() {
            let set = cache.set_of(a.address);
            let mut ctx = cachemind_sim::replacement::AccessContext::demand(i as u64, a, set);
            ctx.next_use = Some(u64::MAX);
            let _ = cache.access(&ctx);
        }
        let hot = cache.policy().predicted_reuse(Pc::new(0x11_0000));
        let cold = cache.policy().predicted_reuse(Pc::new(0x22_0000));
        assert!(hot < cold, "hot RDP {hot} should be below cold RDP {cold}");
    }

    #[test]
    fn mockingjay_beats_lru_on_scans() {
        let cfg = CacheConfig::new("t", 2, 4, 6);
        let s = workload(48);
        let replay = LlcReplay::new(cfg, &s);
        let mj = replay.run(MockingjayPolicy::new());
        let lru = replay.run(RecencyPolicy::lru());
        assert!(
            mj.stats.hits > lru.stats.hits,
            "mockingjay {} vs lru {}",
            mj.stats.hits,
            lru.stats.hits
        );
    }

    #[test]
    fn training_filter_is_respected() {
        let mut p = MockingjayPolicy::new().with_training_filter([Pc::new(0x1)]);
        assert!(p.has_training_filter());
        let before = p.rdp[MockingjayPolicy::sig(Pc::new(0x999)) as usize];
        p.train(MockingjayPolicy::sig(Pc::new(0x999)), Pc::new(0x999), 1000.0);
        let after = p.rdp[MockingjayPolicy::sig(Pc::new(0x999)) as usize];
        assert_eq!(before, after, "filtered PC must not train");
        let sig1 = MockingjayPolicy::sig(Pc::new(0x1));
        let before = p.rdp[sig1 as usize];
        p.train(sig1, Pc::new(0x1), 1000.0);
        assert!(p.rdp[sig1 as usize] > before, "allowed PC must train");
    }

    #[test]
    fn etr_ticks_down_with_set_accesses() {
        let mut p = MockingjayPolicy::new();
        let set = SetId::new(0);
        let ctx = AccessContext::with_oracle(
            0,
            Pc::new(0x42),
            Address::new(0).line(6),
            set,
            cachemind_sim::access::AccessKind::Load,
            u64::MAX,
        );
        let lines = cachemind_sim::cache::SetViewBuf::new(4);
        p.on_fill(0, lines.view(), &ctx);
        let now0 = p.clock(set);
        let etr0 = p.current_etr(set, 0, now0);
        // Advance the set clock a lot.
        for _ in 0..(GRANULARITY * 10) {
            p.tick(set);
        }
        let now1 = p.clock(set);
        let etr1 = p.current_etr(set, 0, now1);
        assert!(etr1 < etr0);
    }
}
