//! # cachemind-policies
//!
//! Cache replacement policies for the CacheMind reproduction.
//!
//! The paper's trace database covers four policies — Belady's optimal, LRU,
//! PARROT (a learned imitation policy) and an MLP-based policy — and its
//! related-work and use-case sections additionally exercise RRIP/DRRIP, DIP,
//! SHiP, Hawkeye and Mockingjay. All of them are implemented here against
//! the [`cachemind_sim::replacement::ReplacementPolicy`] trait:
//!
//! * [`BeladyPolicy`] — the offline MIN oracle (uses the replay driver's
//!   next-use oracle).
//! * [`RripPolicy`] — SRRIP, BRRIP and set-dueling DRRIP.
//! * [`DipPolicy`] — dynamic insertion (LRU/BIP dueling).
//! * [`ShipPolicy`] — signature-based hit prediction over RRIP.
//! * [`HawkeyePolicy`] — OPTgen-trained PC classifier.
//! * [`MockingjayPolicy`] — PC-indexed reuse-distance prediction with
//!   estimated-time-remaining eviction, including the stable-PC training
//!   filter from the paper's use case.
//! * [`ImitationPolicy`] — the PARROT surrogate: a feature-hashed linear
//!   model imitating Belady labels.
//! * [`MlpPolicy`] — a from-scratch multi-layer perceptron reuse predictor.
//! * [`BypassPolicy`] — wraps any policy with a per-PC bypass list (the
//!   §6.3 bypass use case).
//! * [`RandomPolicy`] — a seeded random baseline.
//!
//! # Example
//!
//! ```rust
//! use cachemind_policies::prelude::*;
//! use cachemind_sim::prelude::*;
//!
//! let stream: Vec<MemoryAccess> = (0..256u64)
//!     .map(|i| MemoryAccess::load(Pc::new(0x400000), Address::new((i % 32) * 64), i))
//!     .collect();
//! let replay = LlcReplay::new(CacheConfig::small_llc(), &stream);
//!
//! let lru = replay.run(RecencyPolicy::lru());
//! let opt = replay.run(BeladyPolicy::new());
//! assert!(opt.stats.hits >= lru.stats.hits, "Belady is optimal");
//! ```

pub mod belady;
pub mod bypass;
pub mod dip;
pub mod features;
pub mod hawkeye;
pub mod imitation;
pub mod mlp;
pub mod mockingjay;
pub mod random;
pub mod rrip;
pub mod ship;

pub use belady::BeladyPolicy;
pub use bypass::BypassPolicy;
pub use dip::DipPolicy;
pub use hawkeye::HawkeyePolicy;
pub use imitation::ImitationPolicy;
pub use mlp::MlpPolicy;
pub use mockingjay::MockingjayPolicy;
pub use random::RandomPolicy;
pub use rrip::RripPolicy;
pub use ship::ShipPolicy;

use cachemind_sim::replacement::ReplacementPolicy;

/// The set of policy names the trace database is normally populated with
/// (mirrors the paper's `belady`, `lru`, `mlp`, `parrot` keys).
pub const DATABASE_POLICIES: [&str; 4] = ["belady", "lru", "mlp", "parrot"];

/// Constructs a boxed policy by its stable name.
///
/// Supported names: `lru`, `mru`, `fifo`, `random`, `belady`, `srrip`,
/// `brrip`, `drrip`, `dip`, `lip`, `bip`, `ship`, `hawkeye`, `mockingjay`,
/// `parrot`, `mlp`.
///
/// ```rust
/// let p = cachemind_policies::by_name("belady").expect("known policy");
/// assert_eq!(p.name(), "belady");
/// ```
pub fn by_name(name: &str) -> Option<Box<dyn ReplacementPolicy>> {
    use cachemind_sim::replacement::RecencyPolicy;
    Some(match name {
        "lru" => Box::new(RecencyPolicy::lru()),
        "mru" => Box::new(RecencyPolicy::mru()),
        "fifo" => Box::new(RecencyPolicy::fifo()),
        "random" => Box::new(RandomPolicy::new(0xCAFE)),
        "belady" => Box::new(BeladyPolicy::new()),
        "srrip" => Box::new(RripPolicy::srrip()),
        "brrip" => Box::new(RripPolicy::brrip()),
        "drrip" => Box::new(RripPolicy::drrip()),
        "dip" => Box::new(DipPolicy::new()),
        "lip" => Box::new(DipPolicy::lip()),
        "bip" => Box::new(DipPolicy::bip()),
        "ship" => Box::new(ShipPolicy::new()),
        "hawkeye" => Box::new(HawkeyePolicy::new()),
        "mockingjay" => Box::new(MockingjayPolicy::new()),
        "parrot" => Box::new(ImitationPolicy::new()),
        "mlp" => Box::new(MlpPolicy::new()),
        _ => return None,
    })
}

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::belady::BeladyPolicy;
    pub use crate::by_name;
    pub use crate::bypass::BypassPolicy;
    pub use crate::dip::DipPolicy;
    pub use crate::hawkeye::HawkeyePolicy;
    pub use crate::imitation::ImitationPolicy;
    pub use crate::mlp::MlpPolicy;
    pub use crate::mockingjay::MockingjayPolicy;
    pub use crate::random::RandomPolicy;
    pub use crate::rrip::RripPolicy;
    pub use crate::ship::ShipPolicy;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_covers_documented_policies() {
        for name in [
            "lru",
            "mru",
            "fifo",
            "random",
            "belady",
            "srrip",
            "brrip",
            "drrip",
            "dip",
            "lip",
            "bip",
            "ship",
            "hawkeye",
            "mockingjay",
            "parrot",
            "mlp",
        ] {
            let p = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(p.name(), name);
        }
        assert!(by_name("nonsense").is_none());
    }
}
