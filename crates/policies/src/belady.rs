//! Belady's optimal (MIN) replacement — the offline upper bound.
//!
//! The replay driver supplies the next-use index of every access through
//! [`AccessContext::next_use`]; MIN evicts the resident line whose next use
//! is farthest in the future. Lines that are never used again are preferred
//! victims.

use cachemind_sim::cache::SetView;
use cachemind_sim::replacement::{AccessContext, Decision, ReplacementPolicy};
use cachemind_sim::reuse::NEVER;

use crate::features::PerWayTable;

/// Belady's optimal policy.
///
/// The oracle's next-use index for each resident line is stored per
/// `(set, way)` slot — every fill and hit restamps the slot the line
/// occupies, so the map lookup the original per-line table needed on every
/// touch becomes a flat array index.
///
/// # Panics
///
/// Accessing the policy without oracle information
/// (`AccessContext::next_use == None`) panics: MIN is an offline policy and
/// cannot run online.
#[derive(Debug, Clone)]
pub struct BeladyPolicy {
    next_use: PerWayTable<u64>,
}

impl Default for BeladyPolicy {
    fn default() -> Self {
        BeladyPolicy::new()
    }
}

impl BeladyPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        BeladyPolicy { next_use: PerWayTable::new(NEVER) }
    }

    fn oracle(ctx: &AccessContext) -> u64 {
        ctx.next_use.expect("BeladyPolicy requires an oracle-driven replay")
    }
}

impl ReplacementPolicy for BeladyPolicy {
    fn name(&self) -> &'static str {
        "belady"
    }

    fn on_hit(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        *self.next_use.slot_mut(ctx.set, way, lines.len()) = Self::oracle(ctx);
    }

    fn choose_victim(&mut self, lines: SetView<'_>, ctx: &AccessContext) -> Decision {
        let victim = lines
            .iter_valid()
            .max_by_key(|&(way, _)| self.next_use.slot(ctx.set, way))
            .map(|(way, _)| way)
            .expect("choose_victim called on an empty set");
        Decision::Evict(victim)
    }

    fn on_fill(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        *self.next_use.slot_mut(ctx.set, way, lines.len()) = Self::oracle(ctx);
    }

    fn line_scores_into(
        &self,
        set: cachemind_sim::addr::SetId,
        lines: SetView<'_>,
        _now: u64,
        out: &mut Vec<u64>,
    ) {
        out.clear();
        out.extend((0..lines.len()).map(|way| {
            if lines.is_valid(way) {
                self.next_use.slot(set, way)
            } else {
                u64::MAX
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::access::MemoryAccess;
    use cachemind_sim::addr::{Address, Pc};
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    fn stream(lines: &[u64]) -> Vec<MemoryAccess> {
        lines
            .iter()
            .enumerate()
            .map(|(i, &l)| MemoryAccess::load(Pc::new(0x400000), Address::new(l * 64), i as u64))
            .collect()
    }

    #[test]
    fn textbook_min_example() {
        // Single set, 2 ways. Sequence: A B C A B. LRU: A,B cached; C evicts
        // A; A evicts B; B evicts C -> 0 hits after warmup. MIN: C evicts B
        // or keeps A,B by evicting... optimal keeps A and B by evicting the
        // other: with ways=2, accesses A B C A B -> MIN evicts C... C must be
        // cached (miss fills), so MIN evicts the line with farthest next use:
        // at C's miss, A next=3, B next=4 -> evict B; then A hits; B misses.
        // MIN hits = 1, LRU hits = 0.
        let cfg = CacheConfig::new("t", 0, 2, 6);
        let s = stream(&[1, 2, 3, 1, 2]);
        let replay = LlcReplay::new(cfg, &s);
        let min = replay.run(BeladyPolicy::new());
        let lru = replay.run(RecencyPolicy::lru());
        assert_eq!(min.stats.hits, 1);
        assert_eq!(lru.stats.hits, 0);
    }

    #[test]
    fn prefers_never_reused_victims() {
        // Set of 2 ways: A, D(never again), then B, then A. MIN must evict D
        // for B, keeping A.
        let cfg = CacheConfig::new("t", 0, 2, 6);
        let s = stream(&[1, 9, 2, 1]);
        let replay = LlcReplay::new(cfg, &s);
        let min = replay.run(BeladyPolicy::new());
        assert_eq!(min.stats.hits, 1); // final A access hits
        assert_eq!(min.records[2].evicted_address, Some(Address::new(9 * 64)));
    }

    #[test]
    #[should_panic(expected = "oracle-driven")]
    fn online_use_panics() {
        use cachemind_sim::cache::SetAssociativeCache;
        use cachemind_sim::replacement::AccessContext;
        let mut cache =
            SetAssociativeCache::new(CacheConfig::new("t", 0, 1, 6), BeladyPolicy::new());
        let a = MemoryAccess::load(Pc::new(1), Address::new(0), 0);
        let set = cache.set_of(a.address);
        let _ = cache.access(&AccessContext::demand(0, &a, set));
    }
}
