//! Seeded random replacement — a baseline and sanity check.

use cachemind_sim::cache::SetView;
use cachemind_sim::replacement::{AccessContext, Decision, ReplacementPolicy};

use crate::features::SplitMix64;

/// Random replacement with a deterministic seed.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: SplitMix64,
}

impl RandomPolicy {
    /// Creates the policy from a seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy { rng: SplitMix64::new(seed) }
    }
}

impl Default for RandomPolicy {
    fn default() -> Self {
        RandomPolicy::new(0xDEAD_BEEF)
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn on_hit(&mut self, _way: usize, _lines: SetView<'_>, _ctx: &AccessContext) {}

    fn choose_victim(&mut self, lines: SetView<'_>, _ctx: &AccessContext) -> Decision {
        Decision::Evict(self.rng.below(lines.len() as u64) as usize)
    }

    fn on_fill(&mut self, _way: usize, _lines: SetView<'_>, _ctx: &AccessContext) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::access::MemoryAccess;
    use cachemind_sim::addr::{Address, Pc};
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replay::LlcReplay;

    #[test]
    fn same_seed_same_outcome() {
        let s: Vec<MemoryAccess> = (0..512u64)
            .map(|i| MemoryAccess::load(Pc::new(1), Address::new((i % 48) * 64), i))
            .collect();
        let replay = LlcReplay::new(CacheConfig::new("t", 2, 4, 6), &s);
        let a = replay.run(RandomPolicy::new(7));
        let b = replay.run(RandomPolicy::new(7));
        assert_eq!(a.stats, b.stats);
        let c = replay.run(RandomPolicy::new(8));
        // Different seeds usually differ on a thrashing trace.
        assert!(a.stats.hits != c.stats.hits || a.records != c.records);
    }
}
