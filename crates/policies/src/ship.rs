//! SHiP — signature-based hit predictor (Wu et al., MICRO 2011).
//!
//! Each line is tagged with a PC signature; a table of saturating counters
//! (the SHCT) learns whether lines inserted by that signature tend to be
//! reused. Lines from zero-counter signatures are inserted with a distant
//! re-reference prediction so scans flow through without displacing the
//! working set. Victim selection is standard RRIP aging.

use cachemind_sim::addr::SetId;
use cachemind_sim::cache::SetView;
use cachemind_sim::replacement::{AccessContext, Decision, ReplacementPolicy};

use crate::features::{feature_bucket, PerWayTable};

const RRPV_MAX: u8 = 3;
const RRPV_LONG: u8 = RRPV_MAX - 1;
const SHCT_BITS: u32 = 14;
const SHCT_MAX: u8 = 7; // 3-bit counters

/// Per-line SHiP state.
#[derive(Debug, Clone, Copy, Default)]
struct ShipLine {
    signature: u32,
    outcome: bool, // was the line reused since fill?
}

/// The SHiP replacement policy.
#[derive(Debug, Clone)]
pub struct ShipPolicy {
    rrpv: PerWayTable<u8>,
    line: PerWayTable<ShipLine>,
    shct: Vec<u8>,
}

impl Default for ShipPolicy {
    fn default() -> Self {
        ShipPolicy::new()
    }
}

impl ShipPolicy {
    /// Creates the policy with a weakly-reused prior (counters at 1).
    pub fn new() -> Self {
        ShipPolicy {
            rrpv: PerWayTable::new(RRPV_MAX),
            line: PerWayTable::new(ShipLine::default()),
            shct: vec![1; 1 << SHCT_BITS],
        }
    }

    fn signature(ctx: &AccessContext) -> u32 {
        feature_bucket(0x511b, ctx.pc.value(), SHCT_BITS) as u32
    }

    /// Current counter value for a PC's signature (useful in tests and
    /// diagnostics).
    pub fn shct_for_pc(&self, pc: cachemind_sim::addr::Pc) -> u8 {
        self.shct[feature_bucket(0x511b, pc.value(), SHCT_BITS)]
    }
}

impl ReplacementPolicy for ShipPolicy {
    fn name(&self) -> &'static str {
        "ship"
    }

    fn on_hit(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        let ways = lines.len();
        *self.rrpv.slot_mut(ctx.set, way, ways) = 0;
        let state = self.line.slot_mut(ctx.set, way, ways);
        if !state.outcome {
            state.outcome = true;
            let sig = state.signature as usize;
            self.shct[sig] = (self.shct[sig] + 1).min(SHCT_MAX);
        }
    }

    fn choose_victim(&mut self, lines: SetView<'_>, ctx: &AccessContext) -> Decision {
        let ways = lines.len();
        let victim = loop {
            if let Some(way) = (0..ways).find(|&w| self.rrpv.slot(ctx.set, w) >= RRPV_MAX) {
                break way;
            }
            for way in 0..ways {
                let v = self.rrpv.slot_mut(ctx.set, way, ways);
                *v = v.saturating_add(1).min(RRPV_MAX);
            }
        };
        // Train down on dead-on-eviction lines.
        let state = self.line.slot(ctx.set, victim);
        if !state.outcome {
            let sig = state.signature as usize;
            self.shct[sig] = self.shct[sig].saturating_sub(1);
        }
        Decision::Evict(victim)
    }

    fn on_fill(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        let ways = lines.len();
        let sig = Self::signature(ctx);
        *self.line.slot_mut(ctx.set, way, ways) = ShipLine { signature: sig, outcome: false };
        let counter = self.shct[sig as usize];
        *self.rrpv.slot_mut(ctx.set, way, ways) = if counter == 0 {
            RRPV_MAX // predicted dead-on-arrival: age out fast
        } else if counter >= SHCT_MAX - 1 {
            0 // strongly reused signature: protect
        } else {
            RRPV_LONG
        };
    }

    fn line_scores_into(&self, set: SetId, lines: SetView<'_>, _now: u64, out: &mut Vec<u64>) {
        out.clear();
        out.extend((0..lines.len()).map(|way| {
            if lines.is_valid(way) {
                self.rrpv.slot(set, way) as u64
            } else {
                u64::MAX
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::access::MemoryAccess;
    use cachemind_sim::addr::{Address, Pc};
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    /// Hot lines touched (twice per repetition) by one PC, a streaming scan
    /// driven by another PC — exactly the pattern SHiP's signatures separate.
    fn two_pc_workload(reps: u64) -> Vec<MemoryAccess> {
        let hot_pc = Pc::new(0x401000);
        let scan_pc = Pc::new(0x402000);
        let mut out = Vec::new();
        let mut idx = 0;
        let mut scan_base = 1u64 << 20;
        for _ in 0..reps {
            for _ in 0..2 {
                for h in 0..16u64 {
                    out.push(MemoryAccess::load(hot_pc, Address::new(h * 64), idx));
                    idx += 1;
                }
            }
            for s in 0..32u64 {
                out.push(MemoryAccess::load(scan_pc, Address::new((scan_base + s) * 64), idx));
                idx += 1;
            }
            scan_base += 32;
        }
        out
    }

    #[test]
    fn ship_learns_scan_signature() {
        let cfg = CacheConfig::new("t", 3, 4, 6); // 8 sets x 4 ways
        let s = two_pc_workload(24);
        let replay = LlcReplay::new(cfg, &s);
        let mut policy = ShipPolicy::new();
        // Run manually to inspect the trained policy afterwards.
        let report = {
            let p = std::mem::take(&mut policy);
            replay.run(p)
        };
        let lru = replay.run(RecencyPolicy::lru());
        assert!(
            report.stats.hits > lru.stats.hits,
            "ship {} vs lru {}",
            report.stats.hits,
            lru.stats.hits
        );
    }

    #[test]
    fn shct_counters_track_reuse() {
        let cfg = CacheConfig::new("t", 2, 4, 6);
        let s = two_pc_workload(16);
        let replay = LlcReplay::new(cfg, &s);
        // Replicate the run but keep the policy: run() consumes it, so use a
        // fresh one with the same trace through the cache API.
        use cachemind_sim::cache::SetAssociativeCache;
        use cachemind_sim::replacement::AccessContext;
        let mut cache = SetAssociativeCache::new(CacheConfig::new("t", 2, 4, 6), ShipPolicy::new());
        for (i, a) in replay.stream().iter().enumerate() {
            let set = cache.set_of(a.address);
            let mut ctx = AccessContext::demand(i as u64, a, set);
            ctx.next_use = Some(u64::MAX);
            let _ = cache.access(&ctx);
        }
        let hot = cache.policy().shct_for_pc(Pc::new(0x401000));
        let scan = cache.policy().shct_for_pc(Pc::new(0x402000));
        assert!(hot > scan, "hot sig {hot} should exceed scan sig {scan}");
        assert_eq!(scan, 0, "scan signature should saturate at zero");
    }
}
