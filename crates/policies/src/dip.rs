//! DIP — dynamic insertion policy (Qureshi et al., ISCA 2007).
//!
//! DIP duels LRU insertion against bimodal-LIP insertion (BIP: insert at the
//! LRU position except occasionally at MRU) and lets follower sets adopt the
//! winner. The recency stack itself is the cache's `last_touch` ordering; we
//! emulate "insert at LRU" by back-dating the inserted line's recency state.

use cachemind_sim::addr::SetId;
use cachemind_sim::cache::SetView;
use cachemind_sim::replacement::{AccessContext, Decision, ReplacementPolicy};

use crate::features::{PerWayTable, SplitMix64};

const PSEL_MAX: i32 = 1023;
const DUEL_MODULUS: usize = 32;
const BIP_EPSILON: u64 = 32; // MRU insertion 1/32 of the time

/// Insertion-policy flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DipFlavor {
    /// Set-dueling DIP (LRU vs BIP).
    Dynamic,
    /// Static LIP: always insert at the LRU position.
    Lip,
    /// Static BIP: insert at LRU, occasionally at MRU.
    Bip,
}

/// Dynamic insertion policy over an LRU stack (plus its static LIP/BIP
/// building blocks).
#[derive(Debug, Clone)]
pub struct DipPolicy {
    flavor: DipFlavor,
    /// Pseudo-recency per way: larger = more recent. Inserting "at LRU"
    /// assigns the minimum recency in the set instead of the access index.
    recency: PerWayTable<u64>,
    rng: SplitMix64,
    /// Positive favors BIP.
    psel: i32,
}

impl Default for DipPolicy {
    fn default() -> Self {
        DipPolicy::new()
    }
}

impl DipPolicy {
    fn with_flavor(flavor: DipFlavor) -> Self {
        DipPolicy {
            flavor,
            recency: PerWayTable::new(0),
            rng: SplitMix64::new(0xD1B_0001),
            psel: 0,
        }
    }

    /// Creates the set-dueling policy with a neutral counter.
    pub fn new() -> Self {
        DipPolicy::with_flavor(DipFlavor::Dynamic)
    }

    /// Static LRU-insertion policy (LIP): new lines start at the LRU
    /// position, so they must prove reuse before occupying MRU slots.
    pub fn lip() -> Self {
        DipPolicy::with_flavor(DipFlavor::Lip)
    }

    /// Static bimodal-insertion policy (BIP).
    pub fn bip() -> Self {
        DipPolicy::with_flavor(DipFlavor::Bip)
    }

    fn role(set: SetId) -> DipRole {
        match set.index() % DUEL_MODULUS {
            0 => DipRole::LruLeader,
            1 => DipRole::BipLeader,
            _ => DipRole::Follower,
        }
    }

    fn use_bip(&mut self, set: SetId) -> bool {
        match self.flavor {
            DipFlavor::Lip | DipFlavor::Bip => true,
            DipFlavor::Dynamic => match Self::role(set) {
                DipRole::LruLeader => false,
                DipRole::BipLeader => true,
                DipRole::Follower => self.psel > 0,
            },
        }
    }

    fn mru_epsilon(&mut self) -> bool {
        match self.flavor {
            DipFlavor::Lip => false, // LIP never promotes on insert
            _ => self.rng.one_in(BIP_EPSILON),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DipRole {
    LruLeader,
    BipLeader,
    Follower,
}

impl ReplacementPolicy for DipPolicy {
    fn name(&self) -> &'static str {
        match self.flavor {
            DipFlavor::Dynamic => "dip",
            DipFlavor::Lip => "lip",
            DipFlavor::Bip => "bip",
        }
    }

    fn on_hit(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        *self.recency.slot_mut(ctx.set, way, lines.len()) = ctx.index + 1;
    }

    fn choose_victim(&mut self, lines: SetView<'_>, ctx: &AccessContext) -> Decision {
        // Leader-set misses train PSEL against the leader's flavor.
        if self.flavor == DipFlavor::Dynamic {
            match Self::role(ctx.set) {
                DipRole::LruLeader => self.psel = (self.psel + 1).min(PSEL_MAX),
                DipRole::BipLeader => self.psel = (self.psel - 1).max(-PSEL_MAX),
                DipRole::Follower => {}
            }
        }
        let victim = (0..lines.len())
            .filter(|&w| lines.is_valid(w))
            .min_by_key(|&w| self.recency.slot(ctx.set, w))
            .expect("choose_victim called on an empty set");
        Decision::Evict(victim)
    }

    fn on_fill(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        let ways = lines.len();
        let bip = self.use_bip(ctx.set);
        let mru = !bip || self.mru_epsilon();
        let value = if mru {
            ctx.index + 1
        } else {
            // Insert at the LRU position: strictly older than every resident.
            let min = (0..ways)
                .filter(|&w| w != way && lines.is_valid(w))
                .map(|w| self.recency.slot(ctx.set, w))
                .min()
                .unwrap_or(0);
            min.saturating_sub(1)
        };
        *self.recency.slot_mut(ctx.set, way, ways) = value;
    }

    fn line_scores_into(&self, set: SetId, lines: SetView<'_>, _now: u64, out: &mut Vec<u64>) {
        // Score by pseudo-recency (smaller recency value = older = more
        // evictable), inverted so that higher means more evictable.
        out.clear();
        out.extend((0..lines.len()).map(|way| {
            if lines.is_valid(way) {
                u64::MAX / 2 - self.recency.slot(set, way).min(u64::MAX / 2)
            } else {
                u64::MAX
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::access::MemoryAccess;
    use cachemind_sim::addr::{Address, Pc};
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    /// A cyclic working set slightly larger than the cache: LRU thrashes
    /// (0% hits), BIP/DIP retains part of the working set.
    fn thrash(lines: u64, reps: u64) -> Vec<MemoryAccess> {
        let mut out = Vec::new();
        let mut idx = 0;
        for _ in 0..reps {
            for l in 0..lines {
                out.push(MemoryAccess::load(Pc::new(0x400000), Address::new(l * 64), idx));
                idx += 1;
            }
        }
        out
    }

    #[test]
    fn dip_beats_lru_on_thrashing() {
        // 4 sets x 4 ways = 16 lines capacity; cycle over 24 lines.
        let cfg = CacheConfig::new("t", 2, 4, 6);
        let s = thrash(24, 64);
        let replay = LlcReplay::new(cfg, &s);
        let dip = replay.run(DipPolicy::new());
        let lru = replay.run(RecencyPolicy::lru());
        assert!(
            dip.stats.hits > lru.stats.hits,
            "dip {} vs lru {}",
            dip.stats.hits,
            lru.stats.hits
        );
    }

    #[test]
    fn follower_sets_follow_psel() {
        let mut p = DipPolicy::new();
        p.psel = 100;
        assert!(p.use_bip(SetId::new(5)));
        p.psel = -100;
        assert!(!p.use_bip(SetId::new(5)));
    }

    #[test]
    fn lip_protects_against_thrashing_better_than_lru() {
        let cfg = CacheConfig::new("t", 2, 4, 6);
        let s = thrash(24, 64);
        let replay = LlcReplay::new(cfg, &s);
        let lip = replay.run(DipPolicy::lip());
        let lru = replay.run(RecencyPolicy::lru());
        assert!(
            lip.stats.hits > lru.stats.hits,
            "lip {} vs lru {}",
            lip.stats.hits,
            lru.stats.hits
        );
        assert_eq!(lip.policy, "lip");
    }

    #[test]
    fn static_flavors_never_duel() {
        let mut p = DipPolicy::bip();
        assert!(p.use_bip(SetId::new(0))); // even in the would-be LRU leader set
        let mut p = DipPolicy::lip();
        assert!(p.use_bip(SetId::new(0)));
    }
}
