//! Criterion suite over the replay hot path.
//!
//! Three layers, innermost first, so a regression can be localised at a
//! glance (see `docs/PERFORMANCE.md` for how to read the trajectory):
//!
//! * `cache_access` — raw [`SetAssociativeCache`] probe/fill throughput
//!   under LRU, no oracle, no record bookkeeping: the floor every other
//!   number sits on.
//! * `cell_replay` — one full scenario cell on the record-free
//!   [`LlcReplay::run_summary`] fast path, per policy. The prepared replay
//!   (stream + reuse oracle) is built once outside the timing loop, exactly
//!   as `ScenarioGrid` stage 2 sees it.
//! * `scenario_prepare` — stage 1 for one `(workload, machine)` triple:
//!   hierarchy filter plus oracle construction, the policy-independent cost
//!   every cell amortises.
//! * `tracedb_build` — the end-to-end `quick_demo` trace-database build,
//!   the closest proxy for the serve path's cold start.
//!
//! Run with `cargo bench -p cachemind-benchsuite --bench hotpath`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cachemind_sim::cache::SetAssociativeCache;
use cachemind_sim::config::{CacheConfig, HierarchyConfig, MachineConfig};
use cachemind_sim::replacement::{AccessContext, RecencyPolicy};
use cachemind_sim::replay::LlcReplay;
use cachemind_sim::sweep::prepare_scenario;
use cachemind_tracedb::TraceDatabaseBuilder;
use cachemind_workloads::{by_name, Scale};

/// The LLC geometry the trace database replays against: 256 sets x 8 ways.
fn bench_llc() -> CacheConfig {
    CacheConfig::new("LLC", 8, 8, 6).with_latency(26).with_mshr(64)
}

fn mcf_stream() -> (Vec<cachemind_sim::access::MemoryAccess>, u64) {
    let w = by_name("mcf", Scale::Small).expect("mcf generator");
    (w.accesses, w.instr_count)
}

fn cache_access(c: &mut Criterion) {
    let (stream, _) = mcf_stream();
    let config = bench_llc();
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("lru_probe_fill", |b| {
        b.iter(|| {
            let mut cache = SetAssociativeCache::new(config.clone(), RecencyPolicy::lru());
            for (i, a) in stream.iter().enumerate() {
                let set = cache.set_of(a.address);
                black_box(cache.access(&AccessContext::demand(i as u64, a, set)));
            }
            cache.stats().hits
        });
    });
    group.finish();
}

fn cell_replay(c: &mut Criterion) {
    let (stream, _) = mcf_stream();
    let replay = LlcReplay::new(bench_llc(), &stream);
    let mut group = c.benchmark_group("cell_replay");
    group.throughput(Throughput::Elements(replay.stream().len() as u64));
    for policy in ["lru", "srrip", "ship", "belady", "mockingjay"] {
        group.bench_function(policy, |b| {
            b.iter(|| {
                let p = cachemind_policies::by_name(policy).expect("known policy");
                black_box(replay.run_summary(p).stats.hits)
            });
        });
    }
    group.finish();
}

fn scenario_prepare(c: &mut Criterion) {
    let (stream, instr_count) = mcf_stream();
    let machine = MachineConfig::new("table2", HierarchyConfig::table2());
    let mut group = c.benchmark_group("scenario_prepare");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("mcf_table2", |b| {
        b.iter(|| {
            let prepared = prepare_scenario(&machine, &stream, instr_count);
            black_box(prepared.replay.stream().len())
        });
    });
    group.finish();
}

fn prepare_split(c: &mut Criterion) {
    use cachemind_sim::hierarchy::CacheHierarchy;
    let (stream, instr_count) = mcf_stream();
    let machine = MachineConfig::new("table2", HierarchyConfig::table2());
    let mut group = c.benchmark_group("prepare_split");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("hierarchy_run", |b| {
        b.iter(|| {
            let mut h = CacheHierarchy::new(machine.hierarchy.clone());
            black_box(h.run(&stream, instr_count).llc_stream.len())
        });
    });
    let mut h = CacheHierarchy::new(machine.hierarchy.clone());
    let llc_stream = h.run(&stream, instr_count).llc_stream;
    group.bench_function("oracle_build", |b| {
        b.iter(|| {
            black_box(
                LlcReplay::from_stream(machine.hierarchy.llc.clone(), llc_stream.clone())
                    .oracle()
                    .num_lines(),
            )
        });
    });
    group.bench_function("hierarchy_alloc", |b| {
        b.iter(|| {
            black_box(CacheHierarchy::new(machine.hierarchy.clone()).config().dram.latency_cycles)
        });
    });
    group.finish();
}

fn tracedb_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracedb_build");
    group.bench_function("quick_demo", |b| {
        b.iter(|| black_box(TraceDatabaseBuilder::quick_demo().build().len()));
    });
    group.finish();
}

criterion_group!(
    hotpath,
    cache_access,
    cell_replay,
    scenario_prepare,
    prepare_split,
    tracedb_build
);
criterion_main!(hotpath);
