//! Scoring: binary exact-match for the trace-grounded tier, 0–5 rubric for
//! the reasoning tier (§4.1–4.2).

use cachemind_lang::generator::{GeneratorAnswer, Verdict};

use crate::question::{Expected, Question};

/// Points awarded for an answer (out of [`Question::max_points`]).
pub fn score(question: &Question, answer: &GeneratorAnswer) -> f64 {
    match (&question.expected, &answer.verdict) {
        (Expected::HitMiss(want), Verdict::HitMiss(got)) => (want == got) as u8 as f64,
        (Expected::Number { value, tolerance }, Verdict::Number(got)) => {
            ((got - value).abs() <= *tolerance) as u8 as f64
        }
        (Expected::RankingFirst(want), Verdict::Ranking(got)) => {
            (got.first().map(String::as_str) == Some(want.as_str())) as u8 as f64
        }
        (Expected::Trick, Verdict::Trick) => 1.0,
        // Admitting ignorance on a trick question is epistemically sound
        // but not the verified answer; the paper scores it 0.
        (Expected::Rubric, Verdict::FreeForm { quality }) => f64::from((*quality).min(5)),
        // A rubric question answered with a concrete (grounded) verdict
        // earns partial credit for correctness without exposition.
        (Expected::Rubric, Verdict::Ranking(_) | Verdict::Number(_)) => 3.0,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_lang::intent::QueryCategory;

    fn q(expected: Expected, category: QueryCategory) -> Question {
        Question { id: "t".into(), text: "q".into(), category, expected }
    }

    fn a(verdict: Verdict) -> GeneratorAnswer {
        GeneratorAnswer { text: String::new(), verdict }
    }

    #[test]
    fn hitmiss_exact_match() {
        let question = q(Expected::HitMiss(true), QueryCategory::HitMiss);
        assert_eq!(score(&question, &a(Verdict::HitMiss(true))), 1.0);
        assert_eq!(score(&question, &a(Verdict::HitMiss(false))), 0.0);
        assert_eq!(score(&question, &a(Verdict::NotFound)), 0.0);
    }

    #[test]
    fn numbers_respect_tolerance() {
        let question =
            q(Expected::Number { value: 44.69, tolerance: 0.05 }, QueryCategory::MissRate);
        assert_eq!(score(&question, &a(Verdict::Number(44.71))), 1.0);
        assert_eq!(score(&question, &a(Verdict::Number(45.0))), 0.0);
    }

    #[test]
    fn ranking_scored_on_first() {
        let question = q(Expected::RankingFirst("belady".into()), QueryCategory::PolicyComparison);
        assert_eq!(score(&question, &a(Verdict::Ranking(vec!["belady".into()]))), 1.0);
        assert_eq!(
            score(&question, &a(Verdict::Ranking(vec!["lru".into(), "belady".into()]))),
            0.0
        );
    }

    #[test]
    fn trick_requires_rejection() {
        let question = q(Expected::Trick, QueryCategory::Trick);
        assert_eq!(score(&question, &a(Verdict::Trick)), 1.0);
        assert_eq!(score(&question, &a(Verdict::HitMiss(true))), 0.0);
        assert_eq!(score(&question, &a(Verdict::NotFound)), 0.0);
    }

    #[test]
    fn rubric_uses_quality() {
        let question = q(Expected::Rubric, QueryCategory::SemanticAnalysis);
        assert_eq!(score(&question, &a(Verdict::FreeForm { quality: 4 })), 4.0);
        assert_eq!(score(&question, &a(Verdict::FreeForm { quality: 7 })), 5.0);
        assert_eq!(score(&question, &a(Verdict::Number(3.0))), 3.0);
    }
}
