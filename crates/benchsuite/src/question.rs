//! Benchmark questions and their verified expected answers.

use serde::{Deserialize, Serialize};

use cachemind_lang::intent::{QueryCategory, Tier};

/// The verified ground-truth answer of a question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expected {
    /// Hit/miss classification; `true` = miss.
    HitMiss(bool),
    /// A numeric answer with an absolute tolerance.
    Number {
        /// Expected value.
        value: f64,
        /// Absolute tolerance for exact-match scoring.
        tolerance: f64,
    },
    /// A ranking question scored on its first element.
    RankingFirst(String),
    /// The premise is false; the correct response is rejection.
    Trick,
    /// Rubric-graded free-form analysis (0–5).
    Rubric,
}

/// One benchmark item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Question {
    /// Stable id, e.g. `tg-hitmiss-03`.
    pub id: String,
    /// The natural-language question.
    pub text: String,
    /// True category (for trick questions this differs from the surface
    /// category a parser would assign).
    pub category: QueryCategory,
    /// The verified answer.
    pub expected: Expected,
}

impl Question {
    /// The tier the question belongs to.
    pub fn tier(&self) -> Tier {
        self.category.tier()
    }

    /// Maximum attainable points (1 for trace-grounded, 5 for rubric).
    pub fn max_points(&self) -> f64 {
        match self.expected {
            Expected::Rubric => 5.0,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_points_by_tier() {
        let tg = Question {
            id: "tg-x".into(),
            text: "q".into(),
            category: QueryCategory::HitMiss,
            expected: Expected::HitMiss(true),
        };
        assert_eq!(tg.max_points(), 1.0);
        assert_eq!(tg.tier(), Tier::TraceGrounded);
        let ara = Question {
            id: "ara-x".into(),
            text: "q".into(),
            category: QueryCategory::PolicyAnalysis,
            expected: Expected::Rubric,
        };
        assert_eq!(ara.max_points(), 5.0);
        assert_eq!(ara.tier(), Tier::Reasoning);
    }
}
