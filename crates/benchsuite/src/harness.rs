//! The evaluation harness: run a retriever × generator pair over the suite
//! and aggregate the numbers behind Figures 4–8.

use serde::{Deserialize, Serialize};

use cachemind_lang::context::ContextQuality;
use cachemind_lang::generator::{Generator, GeneratorRequest, SimulatedBackend, Verdict};
use cachemind_lang::intent::{QueryCategory, QueryIntent, Tier};
use cachemind_lang::profiles::BackendKind;
use cachemind_lang::prompt::Example;
use cachemind_retrieval::quality::{bucket_for, degrade};
use cachemind_retrieval::retriever::Retriever;
use cachemind_tracedb::database::TraceDatabase;

use crate::catalog::Catalog;
use crate::question::Question;
use crate::scoring::score;

/// Harness options.
#[derive(Debug, Clone, Default)]
pub struct HarnessConfig {
    /// Number of in-context examples (0 = zero-shot, 1 = one-shot,
    /// 3 = few-shot), as in Figure 6.
    pub shots: usize,
    /// When set, each question's context is deterministically degraded to a
    /// Low/Medium/High bucket before generation — the Figure 5 sweep.
    pub degrade_buckets: bool,
    /// Generator seed override (for sensitivity studies).
    pub seed: Option<u64>,
}

/// Per-question outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuestionResult {
    /// Question id.
    pub id: String,
    /// Category.
    pub category: QueryCategory,
    /// Context quality the generator saw.
    pub quality: ContextQuality,
    /// Points awarded.
    pub points: f64,
    /// Maximum points.
    pub max: f64,
    /// The generator's verdict.
    pub verdict: Verdict,
}

/// Aggregated results of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Backend label.
    pub backend: String,
    /// Retriever name.
    pub retriever: String,
    /// Per-question results.
    pub results: Vec<QuestionResult>,
}

impl BenchReport {
    /// Accuracy (% of max points) for one category.
    pub fn category_accuracy(&self, category: QueryCategory) -> f64 {
        Self::ratio(self.results.iter().filter(|r| r.category == category))
    }

    /// Accuracy (% of max points) for one tier.
    pub fn tier_accuracy(&self, tier: Tier) -> f64 {
        Self::ratio(self.results.iter().filter(|r| r.category.tier() == tier))
    }

    /// Weighted total accuracy over all questions (% of max points).
    pub fn total(&self) -> f64 {
        Self::ratio(self.results.iter())
    }

    /// Accuracy restricted to questions whose context landed in `quality`.
    pub fn quality_accuracy(&self, quality: ContextQuality) -> Option<f64> {
        let subset: Vec<&QuestionResult> =
            self.results.iter().filter(|r| r.quality == quality).collect();
        if subset.is_empty() {
            None
        } else {
            Some(Self::ratio(subset.into_iter()))
        }
    }

    /// Histogram of rubric scores 0..=5 over the reasoning tier (Figure 7).
    pub fn score_histogram(&self) -> [usize; 6] {
        let mut hist = [0usize; 6];
        for r in &self.results {
            if r.category.tier() == Tier::Reasoning {
                let bucket = (r.points.round() as usize).min(5);
                hist[bucket] += 1;
            }
        }
        hist
    }

    fn ratio<'a>(results: impl Iterator<Item = &'a QuestionResult>) -> f64 {
        let (mut points, mut max) = (0.0, 0.0);
        for r in results {
            points += r.points;
            max += r.max;
        }
        if max == 0.0 {
            0.0
        } else {
            points / max * 100.0
        }
    }
}

/// K-shot examples for a category (Figure 6's Hit/Miss example plus two
/// generic companions).
fn examples_for(shots: usize) -> Vec<Example> {
    let mut pool = vec![
        Example::figure6(),
        Example {
            context: "The miss rate for PC 0x4037ba is 44.69% over 1200 accesses.".to_owned(),
            question: "What is the miss rate for PC 0x4037ba in mcf with PARROT?".to_owned(),
            answer: "44.69%".to_owned(),
        },
        Example {
            context: "Premise check failed: PC 0x4037aa appears only in mcf.".to_owned(),
            question: "Does PC 0x4037aa in lbm access address 0x1b73be82e3f?".to_owned(),
            answer: "TRICK — the premise is inconsistent with the trace.".to_owned(),
        },
    ];
    pool.truncate(shots);
    pool
}

/// Runs a full benchmark pass.
pub fn run(
    db: &TraceDatabase,
    retriever: &dyn Retriever,
    backend: BackendKind,
    catalog: &Catalog,
    config: &HarnessConfig,
) -> BenchReport {
    let generator = match config.seed {
        Some(seed) => SimulatedBackend::new(backend).with_seed(seed),
        None => SimulatedBackend::new(backend),
    };
    let workloads = db.workloads();
    let policies = db.policies();
    let wrefs: Vec<&str> = workloads.iter().map(String::as_str).collect();
    let prefs: Vec<&str> = policies.iter().map(String::as_str).collect();

    let mut results = Vec::with_capacity(catalog.questions().len());
    for q in catalog.questions() {
        let intent = QueryIntent::parse(&q.text, &wrefs, &prefs);
        let mut ctx = retriever.retrieve(db, &intent);
        if config.degrade_buckets {
            ctx = degrade(&ctx, bucket_for(&q.text));
        }
        let quality = ctx.quality;
        let request = GeneratorRequest {
            question: q.text.clone(),
            intent,
            context: ctx,
            examples: examples_for(config.shots),
        };
        let answer = generator.answer(&request);
        let points = score(q, &answer);
        results.push(QuestionResult {
            id: q.id.clone(),
            category: q.category,
            quality,
            points,
            max: q.max_points(),
            verdict: answer.verdict,
        });
    }
    BenchReport {
        backend: backend.label().to_owned(),
        retriever: retriever.name().to_owned(),
        results,
    }
}

/// Convenience: evaluate one question (used by examples and tests).
pub fn run_single(
    db: &TraceDatabase,
    retriever: &dyn Retriever,
    backend: BackendKind,
    question: &Question,
) -> QuestionResult {
    let workloads = db.workloads();
    let policies = db.policies();
    let wrefs: Vec<&str> = workloads.iter().map(String::as_str).collect();
    let prefs: Vec<&str> = policies.iter().map(String::as_str).collect();
    let intent = QueryIntent::parse(&question.text, &wrefs, &prefs);
    let ctx = retriever.retrieve(db, &intent);
    let quality = ctx.quality;
    let generator = SimulatedBackend::new(backend);
    let answer = generator.answer(&GeneratorRequest {
        question: question.text.clone(),
        intent,
        context: ctx,
        examples: Vec::new(),
    });
    let points = score(question, &answer);
    QuestionResult {
        id: question.id.clone(),
        category: question.category,
        quality,
        points,
        max: question.max_points(),
        verdict: answer.verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_retrieval::ranger::RangerRetriever;
    use cachemind_retrieval::sieve::SieveRetriever;
    use cachemind_tracedb::TraceDatabaseBuilder;

    fn setup() -> (TraceDatabase, Catalog) {
        let db = TraceDatabaseBuilder::quick_demo().build();
        let catalog = Catalog::generate(&db);
        (db, catalog)
    }

    #[test]
    fn gpt4o_beats_gpt35_overall() {
        let (db, catalog) = setup();
        let sieve = SieveRetriever::new();
        let cfg = HarnessConfig::default();
        let strong = run(&db, &sieve, BackendKind::Gpt4o, &catalog, &cfg);
        let weak = run(&db, &sieve, BackendKind::Gpt35Turbo, &catalog, &cfg);
        assert!(strong.total() > weak.total(), "4o {} vs 3.5 {}", strong.total(), weak.total());
    }

    #[test]
    fn sieve_count_collapses_and_ranger_repairs_it() {
        let (db, catalog) = setup();
        let cfg = HarnessConfig::default();
        let sieve = run(&db, &SieveRetriever::new(), BackendKind::Gpt4o, &catalog, &cfg);
        let ranger = run(&db, &RangerRetriever::new(), BackendKind::Gpt4o, &catalog, &cfg);
        let sieve_count = sieve.category_accuracy(QueryCategory::Count);
        let ranger_count = ranger.category_accuracy(QueryCategory::Count);
        assert!(sieve_count <= 20.0, "sieve count {sieve_count}");
        assert!(ranger_count >= 60.0, "ranger count {ranger_count}");
    }

    #[test]
    fn ranger_wins_tg_sieve_wins_reasoning() {
        let (db, catalog) = setup();
        let cfg = HarnessConfig::default();
        let sieve = run(&db, &SieveRetriever::new(), BackendKind::Gpt4o, &catalog, &cfg);
        let ranger = run(&db, &RangerRetriever::new(), BackendKind::Gpt4o, &catalog, &cfg);
        assert!(
            ranger.tier_accuracy(Tier::TraceGrounded) > sieve.tier_accuracy(Tier::TraceGrounded),
            "TG: ranger {} vs sieve {}",
            ranger.tier_accuracy(Tier::TraceGrounded),
            sieve.tier_accuracy(Tier::TraceGrounded)
        );
        assert!(
            sieve.tier_accuracy(Tier::Reasoning) > ranger.tier_accuracy(Tier::Reasoning),
            "ARA: sieve {} vs ranger {}",
            sieve.tier_accuracy(Tier::Reasoning),
            ranger.tier_accuracy(Tier::Reasoning)
        );
    }

    #[test]
    fn quality_buckets_are_monotone() {
        let (db, catalog) = setup();
        let cfg = HarnessConfig { degrade_buckets: true, ..Default::default() };
        let report = run(&db, &SieveRetriever::new(), BackendKind::Gpt4o, &catalog, &cfg);
        let low = report.quality_accuracy(ContextQuality::Low).unwrap_or(0.0);
        let high = report.quality_accuracy(ContextQuality::High).unwrap_or(0.0);
        assert!(high > low, "high {high} vs low {low}");
    }

    #[test]
    fn histogram_counts_reasoning_questions() {
        let (db, catalog) = setup();
        let cfg = HarnessConfig::default();
        let report = run(&db, &SieveRetriever::new(), BackendKind::O3, &catalog, &cfg);
        let hist = report.score_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 25);
        // o3 is bimodal: the middle of the distribution should be thin.
        let middle: usize = hist[2..4].iter().sum();
        let extremes = hist[0] + hist[1] + hist[4] + hist[5];
        assert!(extremes > middle, "hist {hist:?}");
    }

    #[test]
    fn few_shot_helps_trick_questions() {
        let (db, catalog) = setup();
        let zero =
            run(&db, &SieveRetriever::new(), BackendKind::O3, &catalog, &HarnessConfig::default());
        let few = run(
            &db,
            &SieveRetriever::new(),
            BackendKind::O3,
            &catalog,
            &HarnessConfig { shots: 3, ..Default::default() },
        );
        assert!(
            few.category_accuracy(QueryCategory::Trick)
                >= zero.category_accuracy(QueryCategory::Trick),
            "few {} vs zero {}",
            few.category_accuracy(QueryCategory::Trick),
            zero.category_accuracy(QueryCategory::Trick)
        );
    }
}
