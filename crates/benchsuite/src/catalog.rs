//! Catalog generation: the 100 verified questions of Table 1, derived from
//! the trace database's own ground truth.

use cachemind_lang::intent::QueryCategory;
use cachemind_sim::addr::Pc;
use cachemind_tracedb::database::{TraceDatabase, TraceEntry};
use cachemind_tracedb::stats::CacheStatisticalExpert;

use crate::question::{Expected, Question};

/// Table 1 category sizes.
pub const CATEGORY_SIZES: [(QueryCategory, usize); 11] = [
    (QueryCategory::HitMiss, 30),
    (QueryCategory::MissRate, 10),
    (QueryCategory::PolicyComparison, 15),
    (QueryCategory::Count, 5),
    (QueryCategory::Arithmetic, 10),
    (QueryCategory::Trick, 5),
    (QueryCategory::Concepts, 5),
    (QueryCategory::CodeGen, 5),
    (QueryCategory::PolicyAnalysis, 5),
    (QueryCategory::WorkloadAnalysis, 5),
    (QueryCategory::SemanticAnalysis, 5),
];

/// The generated benchmark suite.
#[derive(Debug, Clone)]
pub struct Catalog {
    questions: Vec<Question>,
}

impl Catalog {
    /// All questions, trace-grounded tier first.
    pub fn questions(&self) -> &[Question] {
        &self.questions
    }

    /// Questions of one category.
    pub fn by_category(&self, category: QueryCategory) -> Vec<&Question> {
        self.questions.iter().filter(|q| q.category == category).collect()
    }

    /// Generates the full 100-question suite from a database that contains
    /// the standard three workloads and four policies.
    ///
    /// # Panics
    ///
    /// Panics if the database lacks the traces needed to ground a category
    /// (the builder's defaults always suffice).
    pub fn generate(db: &TraceDatabase) -> Catalog {
        let mut questions = Vec::with_capacity(100);
        questions.extend(gen_hitmiss(db, 30));
        questions.extend(gen_missrate(db, 10));
        questions.extend(gen_policy_comparison(db, 15));
        questions.extend(gen_count(db, 5));
        questions.extend(gen_arithmetic(db, 10));
        questions.extend(gen_trick(db, 5));
        questions.extend(gen_concepts(5));
        questions.extend(gen_codegen(db, 5));
        questions.extend(gen_policy_analysis(db, 5));
        questions.extend(gen_workload_analysis(db, 5));
        questions.extend(gen_semantic_analysis(db, 5));
        assert_eq!(questions.len(), 100, "Table 1 requires exactly 100 questions");
        Catalog { questions }
    }
}

fn entries_in_order(db: &TraceDatabase) -> Vec<&TraceEntry> {
    // BTreeMap ordering makes this deterministic.
    db.entries().collect()
}

/// Upper-cases the policy for question text, as the paper writes them.
fn policy_caps(p: &str) -> String {
    match p {
        "lru" => "LRU".to_owned(),
        "mlp" => "MLP".to_owned(),
        "parrot" => "PARROT".to_owned(),
        "belady" => "Belady".to_owned(),
        other => other.to_owned(),
    }
}

fn gen_hitmiss(db: &TraceDatabase, n: usize) -> Vec<Question> {
    let mut out = Vec::new();
    let entries = entries_in_order(db);
    let mut i = 0usize;
    'outer: loop {
        for entry in &entries {
            if out.len() >= n {
                break 'outer;
            }
            let rows = entry.frame.rows();
            if rows.is_empty() {
                continue;
            }
            // Stride through the trace for variety.
            let row = &rows[(37 * (i + 1)) % rows.len()];
            let first = rows
                .iter()
                .find(|r| r.pc == row.pc && r.address == row.address)
                .expect("pair exists");
            out.push(Question {
                id: format!("tg-hitmiss-{:02}", out.len() + 1),
                text: format!(
                    "Does the memory access with PC {} and address {} result in a cache hit \
                     or cache miss for the {} workload and {} replacement policy?",
                    first.pc,
                    first.address,
                    entry.id.workload,
                    policy_caps(&entry.id.policy)
                ),
                category: QueryCategory::HitMiss,
                expected: Expected::HitMiss(first.is_miss),
            });
            i += 1;
        }
    }
    out
}

fn gen_missrate(db: &TraceDatabase, n: usize) -> Vec<Question> {
    let expert = CacheStatisticalExpert::new();
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let entries = entries_in_order(db);
    // 8 per-PC rates.
    let mut i = 0usize;
    while out.len() < n.saturating_sub(2) && i < 500 {
        let entry = entries[i % entries.len()];
        let pcs = entry.frame.unique_pcs();
        let pc = pcs[(i / entries.len() + i) % pcs.len()];
        if !seen.insert((entry.id.key(), pc)) {
            i += 1;
            continue;
        }
        if let Some(stats) = expert.pc_stats(&entry.frame, pc) {
            out.push(Question {
                id: format!("tg-missrate-{:02}", out.len() + 1),
                text: format!(
                    "What is the miss rate for PC {} in the {} workload with the {} \
                     replacement policy? Answer in percent.",
                    pc,
                    entry.id.workload,
                    policy_caps(&entry.id.policy)
                ),
                category: QueryCategory::MissRate,
                expected: Expected::Number { value: stats.miss_rate() * 100.0, tolerance: 0.05 },
            });
        }
        i += 1;
    }
    // 2 whole-workload rates.
    for entry in entries.iter().take(2) {
        let rate = cachemind_tracedb::meta::extract_percent(&entry.metadata, "miss rate")
            .expect("metadata always carries a miss rate");
        out.push(Question {
            id: format!("tg-missrate-{:02}", out.len() + 1),
            text: format!(
                "What is the overall miss rate of the {} workload under the {} policy? \
                 Answer in percent.",
                entry.id.workload,
                policy_caps(&entry.id.policy)
            ),
            category: QueryCategory::MissRate,
            expected: Expected::Number { value: rate, tolerance: 0.05 },
        });
    }
    out.truncate(n);
    out
}

/// Per-policy miss rates for a PC, in the same (sorted) policy order and
/// with the same stable ranking the retriever/generator pipeline uses.
fn policy_ranking(db: &TraceDatabase, workload: &str, pc: Pc, minimum: bool) -> Vec<(String, f64)> {
    let expert = CacheStatisticalExpert::new();
    let mut values = Vec::new();
    for policy in db.policies() {
        let Some(entry) = db.get_id(&cachemind_tracedb::database::TraceId::new(workload, &policy))
        else {
            continue;
        };
        if let Some(stats) = expert.pc_stats(&entry.frame, pc) {
            values.push((policy, stats.miss_rate() * 100.0));
        }
    }
    if minimum {
        values.sort_by(|a, b| a.1.total_cmp(&b.1));
    } else {
        values.sort_by(|a, b| b.1.total_cmp(&a.1));
    }
    values
}

fn gen_policy_comparison(db: &TraceDatabase, n: usize) -> Vec<Question> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let workloads = db.workloads();
    let mut skip = 0usize;
    'outer: for round in 0.. {
        for w in &workloads {
            if out.len() >= n {
                break 'outer;
            }
            let entry = db.get(&format!("{w}_evictions_lru")).expect("lru trace present");
            let pcs = entry.frame.unique_pcs();
            if pcs.is_empty() {
                continue;
            }
            let pc = pcs[(round + skip) % pcs.len()];
            let minimum = out.len() % 2 == 0;
            if seen.contains(&(w.clone(), pc, minimum)) {
                skip += 1;
                continue;
            }
            let ranking = policy_ranking(db, w, pc, minimum);
            // Require an unambiguous winner so exact-match scoring is fair.
            if ranking.len() < 2 || (ranking[0].1 - ranking[1].1).abs() < 0.01 {
                skip += 1;
                continue;
            }
            seen.insert((w.clone(), pc, minimum));
            out.push(Question {
                id: format!("tg-policycmp-{:02}", out.len() + 1),
                text: format!(
                    "Which policy has the {} miss rate for PC {} in the {} workload?",
                    if minimum { "lowest" } else { "highest" },
                    pc,
                    w
                ),
                category: QueryCategory::PolicyComparison,
                expected: Expected::RankingFirst(ranking[0].0.clone()),
            });
        }
        if round > 200 {
            break;
        }
    }
    // Fallback for sparse traces where per-PC rankings tie everywhere: the
    // verdict and the truth use the *same* stable sort over the same policy
    // order, so tied rankings still score consistently.
    let mut round = 0usize;
    while out.len() < n && round < 200 {
        let w = &workloads[round % workloads.len()];
        let entry = db.get(&format!("{w}_evictions_lru")).expect("lru trace present");
        let pcs = entry.frame.unique_pcs();
        let pc = pcs[(round / workloads.len()) % pcs.len()];
        let minimum = out.len() % 2 == 0;
        round += 1;
        if !seen.insert((w.clone(), pc, minimum)) {
            continue;
        }
        let ranking = policy_ranking(db, w, pc, minimum);
        if ranking.is_empty() {
            continue;
        }
        out.push(Question {
            id: format!("tg-policycmp-{:02}", out.len() + 1),
            text: format!(
                "Which policy has the {} miss rate for PC {} in the {} workload?",
                if minimum { "lowest" } else { "highest" },
                pc,
                w
            ),
            category: QueryCategory::PolicyComparison,
            expected: Expected::RankingFirst(ranking[0].0.clone()),
        });
    }
    out
}

fn gen_count(db: &TraceDatabase, n: usize) -> Vec<Question> {
    let mut out = Vec::new();
    let entries = entries_in_order(db);
    for (i, entry) in entries.iter().enumerate() {
        if out.len() >= n {
            break;
        }
        let pcs = entry.frame.unique_pcs();
        let pc = pcs[i % pcs.len()];
        if out.len() < 3 {
            let truth = entry.frame.rows().iter().filter(|r| r.pc == pc).count() as u64;
            out.push(Question {
                id: format!("tg-count-{:02}", out.len() + 1),
                text: format!(
                    "How many times did PC {} appear in the {} workload under {}?",
                    pc,
                    entry.id.workload,
                    policy_caps(&entry.id.policy)
                ),
                category: QueryCategory::Count,
                expected: Expected::Number { value: truth as f64, tolerance: 0.01 },
            });
        } else {
            let truth =
                entry.frame.rows().iter().filter(|r| r.pc == pc && r.is_miss).count() as u64;
            out.push(Question {
                id: format!("tg-count-{:02}", out.len() + 1),
                text: format!(
                    "How many cache misses did PC {} cause in the {} workload under {}?",
                    pc,
                    entry.id.workload,
                    policy_caps(&entry.id.policy)
                ),
                category: QueryCategory::Count,
                expected: Expected::Number { value: truth as f64, tolerance: 0.01 },
            });
        }
    }
    out
}

fn gen_arithmetic(db: &TraceDatabase, n: usize) -> Vec<Question> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let entries = entries_in_order(db);
    let mut i = 0usize;
    while out.len() < n && i < 400 {
        let entry = entries[i % entries.len()];
        let pcs = entry.frame.unique_pcs();
        let pc = pcs[(i / entries.len()) % pcs.len()];
        i += 1;
        let use_evicted = out.len() % 2 == 0;
        if !seen.insert((entry.id.key(), pc, use_evicted, out.len() % 4)) {
            continue;
        }
        let values: Vec<f64> = entry
            .frame
            .rows()
            .iter()
            .filter(|r| r.pc == pc)
            .filter_map(|r| {
                if use_evicted {
                    r.evicted_reuse_distance.map(|d| d as f64)
                } else {
                    r.accessed_reuse_distance.map(|d| d as f64)
                }
            })
            .collect();
        if values.len() < 3 {
            continue;
        }
        let (func_word, truth) = match out.len() % 4 {
            0 | 1 => ("average", values.iter().sum::<f64>() / values.len() as f64),
            2 => ("maximum", values.iter().copied().fold(f64::MIN, f64::max)),
            _ => ("minimum", values.iter().copied().fold(f64::MAX, f64::min)),
        };
        let column_word = if use_evicted { "evicted reuse distance" } else { "reuse distance" };
        out.push(Question {
            id: format!("tg-arith-{:02}", out.len() + 1),
            text: format!(
                "What is the {} {} of PC {} for the {} workload with {}?",
                func_word,
                column_word,
                pc,
                entry.id.workload,
                policy_caps(&entry.id.policy)
            ),
            category: QueryCategory::Arithmetic,
            expected: Expected::Number { value: truth, tolerance: 0.01 },
        });
    }
    // Fallback for sparse traces: whole-workload aggregates (no PC filter)
    // are always well-defined.
    let mut j = 0usize;
    while out.len() < n && j < entries.len() * 2 {
        let entry = entries[j % entries.len()];
        let use_evicted = j >= entries.len();
        j += 1;
        let values: Vec<f64> = entry
            .frame
            .rows()
            .iter()
            .filter_map(|r| {
                if use_evicted {
                    r.evicted_reuse_distance.map(|d| d as f64)
                } else {
                    r.accessed_reuse_distance.map(|d| d as f64)
                }
            })
            .collect();
        if values.is_empty() {
            continue;
        }
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let column_word = if use_evicted { "evicted reuse distance" } else { "reuse distance" };
        out.push(Question {
            id: format!("tg-arith-{:02}", out.len() + 1),
            text: format!(
                "What is the average {} across the {} workload under {}?",
                column_word,
                entry.id.workload,
                policy_caps(&entry.id.policy)
            ),
            category: QueryCategory::Arithmetic,
            expected: Expected::Number { value: truth, tolerance: 0.01 },
        });
    }
    out
}

fn gen_trick(db: &TraceDatabase, n: usize) -> Vec<Question> {
    let mut out = Vec::new();
    let workloads = db.workloads();
    // Cross-workload PC premises.
    for (i, w) in workloads.iter().enumerate() {
        if out.len() >= 3 {
            break;
        }
        let other = &workloads[(i + 1) % workloads.len()];
        let entry = db.get(&format!("{w}_evictions_lru")).expect("trace");
        let other_entry = db.get(&format!("{other}_evictions_lru")).expect("trace");
        let foreign_pc = entry
            .frame
            .unique_pcs()
            .into_iter()
            .find(|pc| !other_entry.frame.rows().iter().any(|r| r.pc == *pc))
            .expect("workload PCs are distinct");
        out.push(Question {
            id: format!("tg-trick-{:02}", out.len() + 1),
            text: format!(
                "Does the memory access with PC {foreign_pc} result in a cache hit or cache \
                 miss for the {other} workload and LRU replacement policy?"
            ),
            category: QueryCategory::Trick,
            expected: Expected::Trick,
        });
    }
    // Never-co-occurring (PC, address) pairs.
    for w in workloads.iter() {
        if out.len() >= n {
            break;
        }
        let entry = db.get(&format!("{w}_evictions_lru")).expect("trace");
        let rows = entry.frame.rows();
        let pc = rows[0].pc;
        let foreign_addr = rows
            .iter()
            .map(|r| r.address)
            .find(|a| !rows.iter().any(|r| r.pc == pc && r.address == *a))
            .expect("some address never touched by this PC");
        out.push(Question {
            id: format!("tg-trick-{:02}", out.len() + 1),
            text: format!(
                "Does PC {pc} in the {w} workload access address {foreign_addr} under LRU, \
                 and does it hit?"
            ),
            category: QueryCategory::Trick,
            expected: Expected::Trick,
        });
    }
    out.truncate(n);
    out
}

fn gen_concepts(n: usize) -> Vec<Question> {
    let texts = [
        "How does increasing cache size affect miss rate? Compare increasing the number of \
         sets versus the number of ways.",
        "Explain the difference between capacity misses and conflict misses in a \
         set-associative cache.",
        "Why can Belady's optimal policy not be implemented directly in hardware?",
        "What is a reuse distance, and why do replacement policies try to predict it?",
        "How does set dueling let a cache pick between two insertion policies at run time?",
    ];
    texts
        .iter()
        .take(n)
        .enumerate()
        .map(|(i, t)| Question {
            id: format!("ara-concepts-{:02}", i + 1),
            text: (*t).to_owned(),
            category: QueryCategory::Concepts,
            expected: Expected::Rubric,
        })
        .collect()
}

fn gen_codegen(db: &TraceDatabase, n: usize) -> Vec<Question> {
    let mut out = Vec::new();
    let entries = entries_in_order(db);
    for (i, entry) in entries.iter().enumerate() {
        if out.len() >= n {
            break;
        }
        let row = &entry.frame.rows()[(11 * (i + 1)) % entry.frame.len()];
        out.push(Question {
            id: format!("ara-codegen-{:02}", out.len() + 1),
            text: format!(
                "Write code to compute the number of hits for PC {} and address {} in the \
                 {} workload under {}.",
                row.pc,
                row.address,
                entry.id.workload,
                policy_caps(&entry.id.policy)
            ),
            category: QueryCategory::CodeGen,
            expected: Expected::Rubric,
        });
    }
    out
}

fn gen_policy_analysis(db: &TraceDatabase, n: usize) -> Vec<Question> {
    let expert = CacheStatisticalExpert::new();
    let mut out = Vec::new();
    for w in db.workloads() {
        if out.len() >= n {
            break;
        }
        let Some(belady) = db.get(&format!("{w}_evictions_belady")) else { continue };
        let Some(lru) = db.get(&format!("{w}_evictions_lru")) else { continue };
        for pc in belady.frame.unique_pcs() {
            if out.len() >= n {
                break;
            }
            let (Some(b), Some(l)) =
                (expert.pc_stats(&belady.frame, pc), expert.pc_stats(&lru.frame, pc))
            else {
                continue;
            };
            if b.miss_rate() + 0.02 < l.miss_rate() && out.len() < n {
                out.push(Question {
                    id: format!("ara-policy-{:02}", out.len() + 1),
                    text: format!(
                        "Why does Belady outperform LRU on PC {pc} in the {w} workload? \
                         Link the reuse pattern to the policy mechanics."
                    ),
                    category: QueryCategory::PolicyAnalysis,
                    expected: Expected::Rubric,
                });
                break; // one per workload per pass
            }
        }
    }
    // Fill any shortfall with PARROT-vs-Belady analyses.
    let mut i = 0;
    while out.len() < n {
        let w = &db.workloads()[i % db.workloads().len()];
        let pc = db
            .get(&format!("{w}_evictions_parrot"))
            .map(|e| e.frame.unique_pcs()[i % e.frame.unique_pcs().len()])
            .expect("parrot trace");
        out.push(Question {
            id: format!("ara-policy-{:02}", out.len() + 1),
            text: format!(
                "Why does PC {pc} perform differently under PARROT than under Belady on the \
                 {w} workload? Explain using reuse distances."
            ),
            category: QueryCategory::PolicyAnalysis,
            expected: Expected::Rubric,
        });
        i += 1;
    }
    out
}

fn gen_workload_analysis(db: &TraceDatabase, n: usize) -> Vec<Question> {
    let policies = db.policies();
    let mut out = Vec::new();
    for (i, p) in policies.iter().cycle().take(n).enumerate() {
        let text = if i % 2 == 0 {
            format!(
                "Which workload has the highest cache miss rate under {}? Explain what \
                 property of its access pattern drives the result.",
                policy_caps(p)
            )
        } else {
            format!(
                "Compare the cache behaviour of the available workloads under {} and explain \
                 which benefits most from the policy.",
                policy_caps(p)
            )
        };
        out.push(Question {
            id: format!("ara-workload-{:02}", i + 1),
            text,
            category: QueryCategory::WorkloadAnalysis,
            expected: Expected::Rubric,
        });
    }
    out
}

fn gen_semantic_analysis(db: &TraceDatabase, n: usize) -> Vec<Question> {
    let expert = CacheStatisticalExpert::new();
    let mut out = Vec::new();
    for entry in entries_in_order(db) {
        if out.len() >= n {
            break;
        }
        // Pick the PC with the highest hit rate and enough traffic.
        let mut stats = expert.per_pc(&entry.frame);
        stats.retain(|s| s.accesses >= 10);
        stats.sort_by(|a, b| b.hit_rate().total_cmp(&a.hit_rate()));
        let Some(best) = stats.first() else { continue };
        out.push(Question {
            id: format!("ara-semantic-{:02}", out.len() + 1),
            text: format!(
                "Why does PC {} have a high hit rate in the {} workload under {}? Examine \
                 the assembly context and analyze the access pattern.",
                best.pc,
                entry.id.workload,
                policy_caps(&entry.id.policy)
            ),
            category: QueryCategory::SemanticAnalysis,
            expected: Expected::Rubric,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_lang::intent::Tier;
    use cachemind_tracedb::TraceDatabaseBuilder;

    fn catalog() -> (TraceDatabase, Catalog) {
        let db = TraceDatabaseBuilder::quick_demo().build();
        let c = Catalog::generate(&db);
        (db, c)
    }

    #[test]
    fn category_sizes_match_table1() {
        let (_, c) = catalog();
        for (cat, size) in CATEGORY_SIZES {
            assert_eq!(c.by_category(cat).len(), size, "category {cat:?}");
        }
        let tg = c.questions().iter().filter(|q| q.tier() == Tier::TraceGrounded).count();
        assert_eq!(tg, 75);
    }

    #[test]
    fn question_ids_are_unique() {
        let (_, c) = catalog();
        let ids: std::collections::HashSet<&str> =
            c.questions().iter().map(|q| q.id.as_str()).collect();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn hitmiss_truth_matches_first_occurrence() {
        let (db, c) = catalog();
        for q in c.by_category(QueryCategory::HitMiss).iter().take(5) {
            // Re-derive the truth from the question text.
            let hexes = cachemind_lang::token::hex_literals(&q.text);
            let pc = cachemind_sim::addr::Pc::new(hexes[0]);
            let addr = cachemind_sim::addr::Address::new(hexes[1]);
            let entry = db
                .entries()
                .find(|e| {
                    q.text.contains(&format!("the {} workload", e.id.workload))
                        && q.text.to_lowercase().contains(&e.id.policy)
                })
                .expect("workload/policy in text");
            let first = entry
                .frame
                .rows()
                .iter()
                .find(|r| r.pc == pc && r.address == addr)
                .expect("pair exists");
            assert_eq!(q.expected, Expected::HitMiss(first.is_miss), "{}", q.id);
        }
    }

    #[test]
    fn trick_questions_have_false_premises() {
        let (db, c) = catalog();
        for q in c.by_category(QueryCategory::Trick) {
            let hexes = cachemind_lang::token::hex_literals(&q.text);
            assert!(!hexes.is_empty());
            assert_eq!(q.expected, Expected::Trick);
            let _ = &db;
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let db = TraceDatabaseBuilder::quick_demo().build();
        let a = Catalog::generate(&db);
        let b = Catalog::generate(&db);
        assert_eq!(a.questions(), b.questions());
    }
}
