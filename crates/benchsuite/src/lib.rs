//! # cachemind-benchsuite
//!
//! **CacheMindBench** — the verified, trace-grounded benchmark suite of §4:
//! 100 questions in two tiers (75 trace-grounded with binary exact-match
//! scoring, 25 architectural-reasoning with 0–5 rubric scoring), across the
//! eleven categories of Table 1.
//!
//! Questions are *generated from the trace database itself*, so every item
//! has a single verifiable source of truth: the ground-truth answer is
//! computed over the full frames with the same statistics code the paper's
//! verification used, independent of any retriever.
//!
//! The [`harness`] module runs a retriever × generator pair over the suite
//! and aggregates category/tier/total accuracy — the engine behind
//! Figures 4, 5, 6, 7 and 8.
//!
//! # Example
//!
//! ```rust
//! use cachemind_benchsuite::prelude::*;
//! use cachemind_tracedb::TraceDatabaseBuilder;
//!
//! let db = TraceDatabaseBuilder::quick_demo().build();
//! let suite = Catalog::generate(&db);
//! assert_eq!(suite.questions().len(), 100);
//! ```

pub mod catalog;
pub mod harness;
pub mod question;
pub mod scoring;

pub use catalog::Catalog;
pub use harness::{BenchReport, HarnessConfig, QuestionResult};
pub use question::{Expected, Question};
pub use scoring::score;

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::catalog::Catalog;
    pub use crate::harness::{BenchReport, HarnessConfig, QuestionResult};
    pub use crate::question::{Expected, Question};
    pub use crate::scoring::score;
}
