//! # cachemind-core
//!
//! **CacheMind** — a conversational, retrieval-augmented system for
//! trace-grounded reasoning about cache replacement (ASPLOS 2026).
//!
//! This crate ties the substrates together into the system the paper
//! describes:
//!
//! * [`system::CacheMind`] — the query-first pipeline: parse → retrieve
//!   (Sieve / Ranger / dense baseline) → generate → grounded answer.
//! * [`chat::ChatSession`] — the assistive chat layer with conversation
//!   memory, used for the multi-turn insight sessions of Figures 10–13.
//! * [`insights`] — the four actionable-insight use cases of §6.3: bypass
//!   signature optimisation, Mockingjay stable-PC retraining, software
//!   prefetch insertion, and set-hotness analysis, plus the Belady-vs-PARROT
//!   per-PC inversion study.
//! * [`eval`] — figure-level data builders over
//!   [`cachemind_benchsuite::harness`], one per table/figure of the paper.
//!
//! # Quickstart
//!
//! ```rust
//! use cachemind_core::prelude::*;
//!
//! let db = TraceDatabaseBuilder::quick_demo().build();
//! let mut mind = CacheMind::new(db).with_retriever(RetrieverKind::Ranger);
//! let answer = mind.ask("What is the overall miss rate of the mcf workload under LRU?");
//! assert!(!answer.text.is_empty());
//! ```

pub mod cache;
pub mod chat;
pub mod eval;
pub mod insights;
pub mod system;

pub use cache::AnswerCache;
pub use chat::ChatSession;
pub use system::{Answer, CacheMind, Query, QueryOptions, RetrieverKind};

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::cache::AnswerCache;
    pub use crate::chat::ChatSession;
    pub use crate::eval;
    pub use crate::insights;
    pub use crate::system::{Answer, CacheMind, Query, QueryOptions, RetrieverKind};
    pub use cachemind_benchsuite::prelude::*;
    pub use cachemind_lang::prelude::*;
    pub use cachemind_retrieval::prelude::*;
    pub use cachemind_sim::prelude::*;
    pub use cachemind_tracedb::prelude::*;
    pub use cachemind_workloads::prelude::*;
}
