//! Runnable ablation studies for the design choices DESIGN.md §5 calls out.
//!
//! Each study returns the swept parameter alongside the metric it moves, so
//! the bench harness (and tests) can assert the direction of the effect:
//!
//! * Sieve's slice cap — the single knob behind the Count/Arithmetic
//!   collapse of Figures 4/8.
//! * Ranger's schema card — the "context can suppress latent knowledge"
//!   observation: without the schema, plans bind the wrong columns.
//! * The dense baseline's index stride — coarser indexing loses the exact
//!   rows entirely.
//!
//! Plus the machine-axis ablations opened by the scenario grid:
//!
//! * DRAM latency — how strongly the modelled memory wall moves IPC.
//! * Prefetcher kind — accuracy/coverage/IPC of the hardware prefetcher
//!   models on a streaming workload.

use serde::{Deserialize, Serialize};

use cachemind_benchsuite::catalog::Catalog;
use cachemind_benchsuite::harness::{self, HarnessConfig};
use cachemind_lang::intent::QueryCategory;
use cachemind_lang::profiles::BackendKind;
use cachemind_retrieval::dense::DenseIndexRetriever;
use cachemind_retrieval::probes::{probe_queries, run_probes};
use cachemind_retrieval::ranger::RangerRetriever;
use cachemind_retrieval::sieve::SieveRetriever;
use cachemind_sim::config::MachineConfig;
use cachemind_sim::prefetch::PrefetcherKind;
use cachemind_sim::sweep::{sweep_cells, ScenarioGrid, SweepStream};
use cachemind_tracedb::database::TraceDatabase;
use cachemind_workloads::workload::Scale;

/// One swept configuration and the metric it produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationPoint {
    /// The parameter value (cap, stride, or 0/1 for off/on).
    pub parameter: usize,
    /// The measured accuracy / success rate in percent.
    pub metric: f64,
}

/// Sweeps Sieve's slice cap and reports Count-category accuracy.
///
/// A cap large enough to cover every matching slice makes Sieve's counts
/// complete, recovering the category; the paper's configuration (a small
/// fixed window) is what zeroes it.
pub fn sieve_slice_cap(
    db: &TraceDatabase,
    catalog: &Catalog,
    caps: &[usize],
) -> Vec<AblationPoint> {
    sweep_cells(caps.to_vec(), |cap| {
        let sieve = SieveRetriever::new().with_slice_cap(cap);
        let report =
            harness::run(db, &sieve, BackendKind::Gpt4o, catalog, &HarnessConfig::default());
        AblationPoint { parameter: cap, metric: report.category_accuracy(QueryCategory::Count) }
    })
}

/// Ranger with and without the schema card: Arithmetic accuracy.
///
/// Returns `[without, with]` (parameter 0 = schema hidden, 1 = shown).
pub fn ranger_schema(db: &TraceDatabase, catalog: &Catalog) -> Vec<AblationPoint> {
    sweep_cells(
        vec![(0usize, RangerRetriever::new().without_schema()), (1, RangerRetriever::new())],
        |(parameter, retriever)| {
            let report = harness::run(
                db,
                &retriever,
                BackendKind::Gpt4o,
                catalog,
                &HarnessConfig::default(),
            );
            AblationPoint { parameter, metric: report.category_accuracy(QueryCategory::Arithmetic) }
        },
    )
}

/// Dense-index stride sweep over the Figure 9 probes: retrieval success.
pub fn dense_stride(db: &TraceDatabase, strides: &[usize]) -> Vec<AblationPoint> {
    let probes = probe_queries(db);
    sweep_cells(strides.to_vec(), |stride| {
        let dense = DenseIndexRetriever::build(db, stride);
        let report = run_probes(db, &dense, &probes);
        AblationPoint { parameter: stride, metric: report.success_rate() * 100.0 }
    })
}

/// One scenario-grid ablation point: the machine or prefetcher label plus
/// the metrics it moved.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioPoint {
    /// Machine or prefetcher label of the swept cell.
    pub label: String,
    /// LLC miss rate of the cell.
    pub miss_rate: f64,
    /// Prefetch coverage of the cell (0 when no prefetcher ran).
    pub prefetch_coverage: f64,
    /// Model-estimated IPC of the cell.
    pub ipc: f64,
}

/// Sweeps the Table-2 machine across DRAM latencies (full-machine replay
/// of mcf under LRU) and reports per-machine IPC — the memory-wall
/// ablation the scenario grid opens.
pub fn dram_latency(scale: Scale, latencies: &[u64]) -> Vec<ScenarioPoint> {
    let workload = cachemind_workloads::mcf::generate(scale);
    let mut grid = ScenarioGrid::default().policy("lru").prefetcher(PrefetcherKind::None).stream(
        SweepStream::new(workload.name.clone(), workload.accesses)
            .with_instr_count(workload.instr_count),
    );
    for &cycles in latencies {
        grid = grid
            .machine(MachineConfig::preset("table2").expect("preset").with_dram_latency(cycles));
    }
    let report = grid.run(cachemind_policies::by_name).expect("scenario grid runs");
    report
        .cells
        .iter()
        .map(|c| ScenarioPoint {
            label: c.machine.clone(),
            miss_rate: c.miss_rate,
            prefetch_coverage: c.prefetch_coverage,
            ipc: c.ipc,
        })
        .collect()
}

/// Sweeps the prefetcher axis (full-machine replay of lbm under LRU) and
/// reports accuracy-driven coverage and IPC per prefetcher kind.
pub fn prefetcher_kinds(scale: Scale, kinds: &[PrefetcherKind]) -> Vec<ScenarioPoint> {
    let workload = cachemind_workloads::lbm::generate(scale);
    let mut grid = ScenarioGrid::default()
        .policy("lru")
        .machine(MachineConfig::preset("table2").expect("preset"))
        .stream(
            SweepStream::new(workload.name.clone(), workload.accesses)
                .with_instr_count(workload.instr_count),
        );
    for &kind in kinds {
        grid = grid.prefetcher(kind);
    }
    let report = grid.run(cachemind_policies::by_name).expect("scenario grid runs");
    report
        .cells
        .iter()
        .map(|c| ScenarioPoint {
            label: c.prefetcher.clone(),
            miss_rate: c.miss_rate,
            prefetch_coverage: c.prefetch_coverage,
            ipc: c.ipc,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_tracedb::database::TraceDatabaseBuilder;

    fn setup() -> (TraceDatabase, Catalog) {
        let db = TraceDatabaseBuilder::quick_demo().build();
        let catalog = Catalog::generate(&db);
        (db, catalog)
    }

    #[test]
    fn slice_cap_controls_count_accuracy() {
        let (db, catalog) = setup();
        let points = sieve_slice_cap(&db, &catalog, &[5, 1_000_000]);
        assert!(
            points[1].metric > points[0].metric,
            "huge cap {} should beat tiny cap {}",
            points[1].metric,
            points[0].metric
        );
        assert!(points[0].metric <= 20.0, "tiny cap must collapse Count");
    }

    #[test]
    fn schema_card_controls_arithmetic_accuracy() {
        let (db, catalog) = setup();
        let points = ranger_schema(&db, &catalog);
        assert!(
            points[1].metric >= points[0].metric,
            "with-schema {} should be at least without {}",
            points[1].metric,
            points[0].metric
        );
        assert!(points[1].metric - points[0].metric >= 10.0, "schema must matter: {points:?}");
    }

    #[test]
    fn dense_stride_trades_coverage() {
        let (db, _) = setup();
        let points = dense_stride(&db, &[1, 64]);
        // Denser indexing can only help (or tie) the probe success rate.
        assert!(points[0].metric >= points[1].metric, "{points:?}");
    }

    #[test]
    fn dram_latency_moves_ipc_monotonically() {
        let points = dram_latency(Scale::Tiny, &[100, 400, 1600]);
        assert_eq!(points.len(), 3);
        // Cells come back in machine-label order; re-key by latency.
        let ipc_of = |cycles: u64| {
            points.iter().find(|p| p.label.ends_with(&format!("+dram{cycles}"))).unwrap().ipc
        };
        assert!(ipc_of(100) >= ipc_of(400), "{points:?}");
        assert!(ipc_of(400) >= ipc_of(1600), "{points:?}");
        assert!(ipc_of(100) > ipc_of(1600), "DRAM latency must move IPC: {points:?}");
    }

    #[test]
    fn prefetcher_kinds_report_coverage() {
        let kinds =
            [PrefetcherKind::None, PrefetcherKind::NextLine, PrefetcherKind::Stride { degree: 4 }];
        let points = prefetcher_kinds(Scale::Tiny, &kinds);
        assert_eq!(points.len(), 3);
        let by = |label: &str| points.iter().find(|p| p.label == label).unwrap();
        assert_eq!(by("none").prefetch_coverage, 0.0);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.prefetch_coverage), "{p:?}");
            assert!(p.ipc > 0.0, "{p:?}");
        }
    }
}
