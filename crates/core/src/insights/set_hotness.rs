//! §6.3 — hot/cold cache-set identification (Figure 13).
//!
//! "CacheMind is used to identify hot and cold cache sets from access
//! traces ... In sampled-set LLC policies, learning eviction behavior from
//! hot sets is more effective than uniform random sampling."

use serde::{Deserialize, Serialize};

use cachemind_sim::prefetch::PrefetcherKind;
use cachemind_sim::replay::LlcReplay;
use cachemind_sim::sweep::{ScenarioGrid, SweepStream};
use cachemind_workloads::workload::Scale;

use super::{experiment_llc, experiment_machine};

/// Hot/cold sets under one policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicySetProfile {
    /// Policy name.
    pub policy: String,
    /// The five hottest sets (by hit rate among active sets).
    pub hot_sets: Vec<usize>,
    /// The five coldest sets.
    pub cold_sets: Vec<usize>,
    /// Hit rate of the hottest set.
    pub hot_hit_rate: f64,
    /// Hit rate of the coldest set.
    pub cold_hit_rate: f64,
}

/// Whole-trace counters for one policy, sourced from a scenario cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyCellSummary {
    /// Policy name.
    pub policy: String,
    /// Overall hit rate of the replay.
    pub hit_rate: f64,
    /// Model-estimated IPC of the replay.
    pub ipc: f64,
}

/// Outcome of the set-hotness analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetHotnessReport {
    /// Workload analysed.
    pub workload: String,
    /// Per-policy profiles (LRU and Belady).
    pub profiles: Vec<PolicySetProfile>,
    /// How many of the top-5 hot sets coincide between LRU and Belady.
    pub hot_overlap: usize,
    /// Label of the machine the scenario cells replayed on.
    pub machine: String,
    /// Per-policy whole-trace counters from the scenario grid (sorted by
    /// policy name, the grid's canonical order).
    pub cells: Vec<PolicyCellSummary>,
    /// Figure 13-shaped transcript.
    pub transcript: String,
}

fn profile(policy_name: &str, report: &cachemind_sim::replay::ReplayReport) -> PolicySetProfile {
    let mut per_set: std::collections::HashMap<usize, (u64, u64)> =
        std::collections::HashMap::new();
    for r in &report.records {
        let e = per_set.entry(r.set.index()).or_insert((0, 0));
        e.0 += 1;
        e.1 += (!r.is_miss) as u64;
    }
    let mut sets: Vec<(usize, u64, f64)> = per_set
        .into_iter()
        .filter(|(_, (accesses, _))| *accesses >= 10)
        .map(|(set, (accesses, hits))| (set, accesses, hits as f64 / accesses as f64))
        .collect();
    sets.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
    let hot: Vec<usize> = sets.iter().take(5).map(|(s, ..)| *s).collect();
    let cold: Vec<usize> = sets.iter().rev().take(5).map(|(s, ..)| *s).collect();
    PolicySetProfile {
        policy: policy_name.to_owned(),
        hot_hit_rate: sets.first().map(|(_, _, h)| *h).unwrap_or(0.0),
        cold_hit_rate: sets.last().map(|(_, _, h)| *h).unwrap_or(0.0),
        hot_sets: hot,
        cold_sets: cold,
    }
}

/// Runs the analysis on astar under LRU and Belady.
pub fn run(scale: Scale) -> SetHotnessReport {
    let workload = cachemind_workloads::astar::generate(scale);
    let replay = LlcReplay::new(experiment_llc(), &workload.accesses);
    let lru = replay.run(cachemind_sim::replacement::RecencyPolicy::lru());
    let belady = replay.run(cachemind_policies::BeladyPolicy::new());

    let lru_profile = profile("lru", &lru);
    let belady_profile = profile("belady", &belady);
    let hot_overlap =
        lru_profile.hot_sets.iter().filter(|s| belady_profile.hot_sets.contains(s)).count();

    // Whole-trace hit rates and IPC per policy come from scenario cells on
    // the experiment machine (every registered policy is one `.policy()`
    // call away).
    let machine = experiment_machine();
    let machine_label = machine.machine_label();
    let grid = ScenarioGrid::default()
        .policy("lru")
        .policy("belady")
        .stream(
            SweepStream::new(workload.name.clone(), workload.accesses.clone())
                .with_instr_count(workload.instr_count),
        )
        .machine(machine)
        .prefetcher(PrefetcherKind::None);
    let scenario = grid.run(cachemind_policies::by_name).expect("scenario grid runs");
    let cells: Vec<PolicyCellSummary> = scenario
        .cells
        .iter()
        .map(|c| PolicyCellSummary { policy: c.policy.clone(), hit_rate: c.hit_rate(), ipc: c.ipc })
        .collect();

    let transcript = format!(
        "User: For astar workload and Belady replacement policy, could you list unique \
         cache sets in ascending order?\n\
         Assistant: {} active sets.\n\n\
         User: Identify 5 hot and 5 cold sets by hit rate.\n\
         Assistant: Hot Sets = {:?}, Cold Sets = {:?}.\n\n\
         User: Compare hot sets (LRU vs Belady) and derive insights.\n\
         Assistant: {} of 5 hot sets coincide; hot sets arise from intrinsic workload \
         locality, and Belady amplifies hotness by avoiding premature evictions.\n",
        belady
            .records
            .iter()
            .map(|r| r.set.index())
            .collect::<std::collections::HashSet<_>>()
            .len(),
        belady_profile.hot_sets,
        belady_profile.cold_sets,
        hot_overlap,
    );

    SetHotnessReport {
        workload: workload.name,
        profiles: vec![lru_profile, belady_profile],
        hot_overlap,
        machine: machine_label,
        cells,
        transcript,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_and_cold_sets_are_distinct() {
        let report = run(Scale::Small);
        for p in &report.profiles {
            assert_eq!(p.hot_sets.len(), 5);
            assert_eq!(p.cold_sets.len(), 5);
            assert!(
                p.hot_hit_rate > p.cold_hit_rate,
                "{}: hot {} vs cold {}",
                p.policy,
                p.hot_hit_rate,
                p.cold_hit_rate
            );
        }
    }

    #[test]
    fn hot_set_identity_overlaps_across_policies() {
        // "Hot set identity likely overlaps" (Figure 13).
        let report = run(Scale::Small);
        assert!(report.hot_overlap >= 1, "overlap {}", report.hot_overlap);
    }

    #[test]
    fn scenario_cells_rank_belady_above_lru() {
        let report = run(Scale::Small);
        assert_eq!(report.cells.len(), 2);
        let by_policy = |name: &str| {
            report.cells.iter().find(|c| c.policy == name).expect("policy cell present")
        };
        let (lru, belady) = (by_policy("lru"), by_policy("belady"));
        assert!(belady.hit_rate >= lru.hit_rate, "OPT must not hit less than LRU");
        assert!(belady.ipc >= lru.ipc, "OPT must not run slower than LRU");
        assert!(!report.machine.is_empty());
    }
}
