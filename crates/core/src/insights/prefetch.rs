//! §6.3 — PC-directed software prefetching.
//!
//! "Using the PC identified by CacheMind, adding a software prefetch to a
//! pointer-chasing microbenchmark increases IPC from 0.131452 to 0.231261"
//! (+76%). Figure 12's chat recovers the dominant miss PC; the fix inserts
//! `__builtin_prefetch` for addresses a fixed distance ahead.
//!
//! The *analysis* half still walks per-access records (it needs the PC of
//! every miss); the *validation* half measures both program variants as
//! cells of a [`ScenarioGrid`] on the experiment machine, so the IPC delta
//! comes from the same engine the sweep driver uses.

use serde::{Deserialize, Serialize};

use cachemind_sim::addr::Pc;
use cachemind_sim::prefetch::PrefetcherKind;
use cachemind_sim::replacement::RecencyPolicy;
use cachemind_sim::replay::LlcReplay;
use cachemind_sim::sweep::{ScenarioGrid, SweepStream};
use cachemind_workloads::workload::Scale;

use super::{experiment_llc, experiment_machine};

/// Outcome of the prefetch experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefetchReport {
    /// The dominant miss PC CacheMind recovered.
    pub dominant_pc: Pc,
    /// Its share of all misses.
    pub dominant_miss_share: f64,
    /// Its miss rate.
    pub dominant_miss_rate: f64,
    /// Baseline IPC (no prefetching).
    pub base_ipc: f64,
    /// IPC with software prefetching.
    pub prefetch_ipc: f64,
    /// Speedup in percent.
    pub speedup_percent: f64,
    /// Label of the machine the scenario cells replayed on.
    pub machine: String,
    /// Accuracy of the inserted software prefetches (useful / fills).
    pub swpf_accuracy: f64,
    /// Coverage of the inserted software prefetches (useful / (useful +
    /// remaining demand misses)).
    pub swpf_coverage: f64,
    /// Figure 12-shaped transcript.
    pub transcript: String,
}

/// Runs the experiment at the given prefetch distance.
pub fn run(scale: Scale, distance: usize) -> PrefetchReport {
    let base_workload = cachemind_workloads::ptrchase::generate(scale);
    let replay = LlcReplay::new(experiment_llc(), &base_workload.accesses);
    let base = replay.run(RecencyPolicy::lru());

    // CacheMind analysis: which PC causes the most misses?
    let mut miss_by_pc: std::collections::HashMap<Pc, (u64, u64)> =
        std::collections::HashMap::new();
    for r in &base.records {
        let e = miss_by_pc.entry(r.pc).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.is_miss as u64;
    }
    let total_misses: u64 = miss_by_pc.values().map(|(_, m)| m).sum();
    let (&dominant_pc, &(accesses, misses)) =
        miss_by_pc.iter().max_by_key(|(_, (_, m))| *m).expect("non-empty trace");

    // The fix: regenerate the benchmark with prefetches inserted, then
    // measure both variants as scenario cells. Pointer chasing serialises
    // misses: MLP = 1.
    let fixed_workload = cachemind_workloads::ptrchase::generate_prefetched(scale, distance);
    let machine = experiment_machine();
    let machine_label = machine.machine_label();
    let grid = ScenarioGrid::default()
        .policy("lru")
        .stream(
            SweepStream::new("ptrchase", base_workload.accesses.clone())
                .with_instr_count(base_workload.instr_count),
        )
        .stream(
            SweepStream::new("ptrchase-swpf", fixed_workload.accesses.clone())
                .with_instr_count(fixed_workload.instr_count),
        )
        .machine(machine)
        .prefetcher(PrefetcherKind::None)
        .with_mlp(1.0);
    let report = grid.run(cachemind_policies::by_name).expect("scenario grid runs");
    let base_cell =
        report.cell("ptrchase", &machine_label, "none", "lru").expect("baseline cell exists");
    let fixed_cell =
        report.cell("ptrchase-swpf", &machine_label, "none", "lru").expect("fixed cell exists");
    let (base_ipc, prefetch_ipc) = (base_cell.ipc, fixed_cell.ipc);

    let transcript = format!(
        "User: List all unique PCs in the given trace.\n\
         Assistant: {} unique PCs.\n\n\
         User: From the unique PCs, identify the PC causing the most cache misses.\n\
         Assistant: {dominant_pc}.\n\n\
         User: What is the miss rate of PC {dominant_pc}?\n\
         Assistant: {:.2}% miss rate.\n",
        miss_by_pc.len(),
        misses as f64 * 100.0 / accesses as f64,
    );

    PrefetchReport {
        dominant_pc,
        dominant_miss_share: misses as f64 / total_misses.max(1) as f64,
        dominant_miss_rate: misses as f64 / accesses as f64,
        base_ipc,
        prefetch_ipc,
        speedup_percent: cachemind_sim::timing::IpcModel::speedup_percent(base_ipc, prefetch_ipc),
        machine: machine_label,
        swpf_accuracy: fixed_cell.prefetch_accuracy,
        swpf_coverage: fixed_cell.prefetch_coverage,
        transcript,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetching_gives_large_speedup() {
        let report = run(Scale::Small, 8);
        assert!(report.dominant_miss_share > 0.9, "share {}", report.dominant_miss_share);
        assert!(
            report.dominant_miss_rate > 0.6,
            "dominant PC miss rate {}",
            report.dominant_miss_rate
        );
        // Paper: +76%. Require a large positive effect (shape, not value).
        assert!(report.speedup_percent > 30.0, "speedup {}", report.speedup_percent);
        // The chase PC maps back to the program image.
        let w = cachemind_workloads::ptrchase::generate(Scale::Tiny);
        assert!(w.program.function_of(report.dominant_pc).is_some());
    }

    #[test]
    fn scenario_cells_reproduce_the_hand_rolled_ipc() {
        // The pre-refactor implementation computed IPC directly from a
        // replay: model.with_mlp(1.0).ipc_from_llc(instr, demand hits,
        // demand misses). Scenario cells must reproduce it bit-for-bit.
        let scale = Scale::Tiny;
        let report = run(scale, 8);
        let manual = |w: &cachemind_workloads::workload::Workload| {
            let stats =
                LlcReplay::new(experiment_llc(), &w.accesses).run(RecencyPolicy::lru()).stats;
            let model = super::super::experiment_ipc_model().with_mlp(1.0);
            let demand_accesses = stats.accesses - stats.prefetches;
            let demand_hits = demand_accesses.saturating_sub(stats.demand_misses);
            model.ipc_from_llc(w.instr_count, demand_hits, stats.demand_misses)
        };
        let base = manual(&cachemind_workloads::ptrchase::generate(scale));
        let fixed = manual(&cachemind_workloads::ptrchase::generate_prefetched(scale, 8));
        assert!((report.base_ipc - base).abs() < 1e-12, "{} vs {base}", report.base_ipc);
        assert!((report.prefetch_ipc - fixed).abs() < 1e-12, "{} vs {fixed}", report.prefetch_ipc);
        assert!(report.machine.starts_with("LLC@"));
    }
}
