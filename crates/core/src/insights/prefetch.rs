//! §6.3 — PC-directed software prefetching.
//!
//! "Using the PC identified by CacheMind, adding a software prefetch to a
//! pointer-chasing microbenchmark increases IPC from 0.131452 to 0.231261"
//! (+76%). Figure 12's chat recovers the dominant miss PC; the fix inserts
//! `__builtin_prefetch` for addresses a fixed distance ahead.

use serde::{Deserialize, Serialize};

use cachemind_sim::addr::Pc;
use cachemind_sim::replacement::RecencyPolicy;
use cachemind_sim::replay::LlcReplay;
use cachemind_sim::stats::CacheStats;
use cachemind_workloads::workload::Scale;

use super::{experiment_ipc_model, experiment_llc};

/// Outcome of the prefetch experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefetchReport {
    /// The dominant miss PC CacheMind recovered.
    pub dominant_pc: Pc,
    /// Its share of all misses.
    pub dominant_miss_share: f64,
    /// Its miss rate.
    pub dominant_miss_rate: f64,
    /// Baseline IPC (no prefetching).
    pub base_ipc: f64,
    /// IPC with software prefetching.
    pub prefetch_ipc: f64,
    /// Speedup in percent.
    pub speedup_percent: f64,
    /// Figure 12-shaped transcript.
    pub transcript: String,
}

fn demand_ipc(instr: u64, stats: &CacheStats) -> f64 {
    // Pointer chasing serialises misses: MLP = 1.
    let model = experiment_ipc_model().with_mlp(1.0);
    let demand_accesses = stats.accesses - stats.prefetches;
    let demand_hits = demand_accesses.saturating_sub(stats.demand_misses);
    model.ipc_from_llc(instr, demand_hits, stats.demand_misses)
}

/// Runs the experiment at the given prefetch distance.
pub fn run(scale: Scale, distance: usize) -> PrefetchReport {
    let base_workload = cachemind_workloads::ptrchase::generate(scale);
    let replay = LlcReplay::new(experiment_llc(), &base_workload.accesses);
    let base = replay.run(RecencyPolicy::lru());

    // CacheMind analysis: which PC causes the most misses?
    let mut miss_by_pc: std::collections::HashMap<Pc, (u64, u64)> =
        std::collections::HashMap::new();
    for r in &base.records {
        let e = miss_by_pc.entry(r.pc).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.is_miss as u64;
    }
    let total_misses: u64 = miss_by_pc.values().map(|(_, m)| m).sum();
    let (&dominant_pc, &(accesses, misses)) =
        miss_by_pc.iter().max_by_key(|(_, (_, m))| *m).expect("non-empty trace");

    // The fix: regenerate the benchmark with prefetches inserted.
    let fixed_workload = cachemind_workloads::ptrchase::generate_prefetched(scale, distance);
    let fixed_replay = LlcReplay::new(experiment_llc(), &fixed_workload.accesses);
    let fixed = fixed_replay.run(RecencyPolicy::lru());

    let base_ipc = demand_ipc(base_workload.instr_count, &base.stats);
    let prefetch_ipc = demand_ipc(fixed_workload.instr_count, &fixed.stats);

    let transcript = format!(
        "User: List all unique PCs in the given trace.\n\
         Assistant: {} unique PCs.\n\n\
         User: From the unique PCs, identify the PC causing the most cache misses.\n\
         Assistant: {dominant_pc}.\n\n\
         User: What is the miss rate of PC {dominant_pc}?\n\
         Assistant: {:.2}% miss rate.\n",
        miss_by_pc.len(),
        misses as f64 * 100.0 / accesses as f64,
    );

    PrefetchReport {
        dominant_pc,
        dominant_miss_share: misses as f64 / total_misses.max(1) as f64,
        dominant_miss_rate: misses as f64 / accesses as f64,
        base_ipc,
        prefetch_ipc,
        speedup_percent: cachemind_sim::timing::IpcModel::speedup_percent(base_ipc, prefetch_ipc),
        transcript,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetching_gives_large_speedup() {
        let report = run(Scale::Small, 8);
        assert!(report.dominant_miss_share > 0.9, "share {}", report.dominant_miss_share);
        assert!(
            report.dominant_miss_rate > 0.6,
            "dominant PC miss rate {}",
            report.dominant_miss_rate
        );
        // Paper: +76%. Require a large positive effect (shape, not value).
        assert!(report.speedup_percent > 30.0, "speedup {}", report.speedup_percent);
        // The chase PC maps back to the program image.
        let w = cachemind_workloads::ptrchase::generate(Scale::Tiny);
        assert!(w.program.function_of(report.dominant_pc).is_some());
    }
}
