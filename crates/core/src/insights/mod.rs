//! The actionable-insight use cases of §6.3.
//!
//! Each module reproduces one end-to-end loop: *CacheMind-style analysis
//! identifies a property → the simulator is re-run with the corresponding
//! intervention → the IPC/hit-rate delta is measured*:
//!
//! * [`bypass`] — signature optimisation for bypass logic (mcf/LRU).
//! * [`mockingjay`] — stable-PC reuse-distance-predictor training (milc).
//! * [`prefetch`] — software prefetch insertion at the dominant miss PC
//!   (pointer-chase microbenchmark).
//! * [`set_hotness`] — hot/cold cache-set identification (astar).
//! * [`inversions`] — the Belady-vs-PARROT per-PC hit-rate inversions.
//! * [`ablation`] — runnable ablation sweeps for the DESIGN.md §5 design
//!   choices (Sieve slice cap, Ranger schema card, dense index stride).

pub mod ablation;
pub mod bypass;
pub mod inversions;
pub mod mockingjay;
pub mod prefetch;
pub mod set_hotness;

use cachemind_sim::config::{CacheConfig, HierarchyConfig, MachineConfig};
use cachemind_sim::timing::IpcModel;

/// The LLC geometry shared by the use-case experiments (matches the trace
/// database's experiment LLC).
pub fn experiment_llc() -> CacheConfig {
    cachemind_tracedb::database::TraceDatabaseBuilder::experiment_llc()
}

/// The IPC model used by the use-case experiments.
pub fn experiment_ipc_model() -> IpcModel {
    IpcModel::from_config(&HierarchyConfig::table2())
}

/// The machine the use-case experiments replay on: the experiment LLC
/// wrapped in Table-2 core/DRAM timing, in LLC-only mode (the trace
/// database replays LLC streams directly). Scenario cells built on this
/// machine reproduce [`experiment_ipc_model`] IPC numbers exactly, so the
/// §6.3 interventions can be measured as grid cells instead of hand-rolled
/// replay loops.
pub fn experiment_machine() -> MachineConfig {
    MachineConfig::llc_only(experiment_llc())
}
