//! §6.3 — Mockingjay stable-PC reuse-distance-predictor training.
//!
//! Figure 10's chat identifies PCs with low ETR/reuse-distance variance;
//! "we changed the Mockingjay source code to train only on the list of
//! stable PCs identified by CacheMind ... stable training increased IPC
//! from 0.47698 to 0.480307 (0.7% speedup) over milc."

use serde::{Deserialize, Serialize};

use cachemind_policies::MockingjayPolicy;
use cachemind_sim::addr::Pc;
use cachemind_sim::prefetch::PrefetcherKind;
use cachemind_sim::replacement::{RecencyPolicy, ReplacementPolicy};
use cachemind_sim::replay::LlcReplay;
use cachemind_sim::sweep::{ScenarioGrid, SweepStream};
use cachemind_workloads::workload::Scale;

use super::{experiment_llc, experiment_machine};

/// Outcome of the stable-PC retraining experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MockingjayReport {
    /// PCs classified as stable (low reuse-distance variance).
    pub stable_pcs: Vec<Pc>,
    /// PCs classified as noisy.
    pub noisy_pcs: Vec<Pc>,
    /// IPC with unrestricted RDP training.
    pub base_ipc: f64,
    /// IPC with training restricted to stable PCs.
    pub stable_ipc: f64,
    /// Speedup in percent.
    pub speedup_percent: f64,
    /// Baseline Mockingjay hit rate.
    pub base_hit_rate: f64,
    /// Stable-trained Mockingjay hit rate.
    pub stable_hit_rate: f64,
    /// Label of the machine the scenario cells replayed on.
    pub machine: String,
    /// Figure 10-shaped transcript.
    pub transcript: String,
}

/// Runs the experiment on milc.
pub fn run(scale: Scale) -> MockingjayReport {
    let workload = cachemind_workloads::milc::generate(scale);
    let replay = LlcReplay::new(experiment_llc(), &workload.accesses);

    // CacheMind analysis: per-PC reuse-distance coefficient of variation
    // over an LRU trace (the chat's mean/std ETR grouping).
    let lru = replay.run(RecencyPolicy::lru());
    let mut samples: std::collections::HashMap<Pc, Vec<f64>> = std::collections::HashMap::new();
    for r in &lru.records {
        if let Some(d) = r.accessed_reuse_distance {
            samples.entry(r.pc).or_default().push(d as f64);
        }
    }
    let cv = |v: &[f64]| {
        let n = v.len() as f64;
        let mean = v.iter().sum::<f64>() / n;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        if mean > 0.0 {
            var.sqrt() / mean
        } else {
            0.0
        }
    };
    let mut scored: Vec<(Pc, f64)> =
        samples.iter().filter(|(_, v)| v.len() >= 20).map(|(pc, v)| (*pc, cv(v))).collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    let split = scored.len() / 2;
    let stable_pcs: Vec<Pc> = scored[..split.max(1)].iter().map(|(pc, _)| *pc).collect();
    let noisy_pcs: Vec<Pc> = scored[split.max(1)..].iter().map(|(pc, _)| *pc).collect();

    // Validation: Mockingjay with and without the training filter, as two
    // policy cells of a scenario grid on the experiment machine. The
    // filtered variant is not in the global registry, so the grid's policy
    // factory extends `cachemind_policies::by_name` with one local name.
    let stable_filter: Vec<Pc> = stable_pcs.clone();
    let factory = move |name: &str| -> Option<Box<dyn ReplacementPolicy>> {
        match name {
            "mockingjay-stable" => Some(Box::new(
                MockingjayPolicy::new().with_training_filter(stable_filter.iter().copied()),
            )),
            other => cachemind_policies::by_name(other),
        }
    };
    let machine = experiment_machine();
    let machine_label = machine.machine_label();
    let grid = ScenarioGrid::default()
        .policy("mockingjay")
        .policy("mockingjay-stable")
        .stream(
            SweepStream::new(workload.name.clone(), workload.accesses.clone())
                .with_instr_count(workload.instr_count),
        )
        .machine(machine)
        .prefetcher(PrefetcherKind::None);
    let report = grid.run(factory).expect("scenario grid runs");
    let base = report
        .cell(&workload.name, &machine_label, "none", "mockingjay")
        .expect("base cell exists");
    let stable = report
        .cell(&workload.name, &machine_label, "none", "mockingjay-stable")
        .expect("stable cell exists");
    let (base_ipc, stable_ipc) = (base.ipc, stable.ipc);

    let transcript = format!(
        "User: Mockingjay uses PC-based reuse-distance prediction; suggest ideas to improve \
         performance.\n\
         Assistant: Cluster PCs by ETR variance; train the RDP on stable samples.\n\n\
         User: List all unique PCs in the trace.\n\
         Assistant: {} unique PCs.\n\n\
         User: Group PCs by reuse-distance variance.\n\
         Assistant: LowVar: {:?}, HighVar: {:?}.\n",
        samples.len(),
        stable_pcs.iter().map(|p| format!("{p}")).collect::<Vec<_>>(),
        noisy_pcs.iter().map(|p| format!("{p}")).collect::<Vec<_>>(),
    );

    MockingjayReport {
        stable_pcs,
        noisy_pcs,
        base_ipc,
        stable_ipc,
        speedup_percent: cachemind_sim::timing::IpcModel::speedup_percent(base_ipc, stable_ipc),
        base_hit_rate: base.hit_rate(),
        stable_hit_rate: stable.hit_rate(),
        machine: machine_label,
        transcript,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_training_does_not_hurt_and_usually_helps() {
        let report = run(Scale::Small);
        assert!(!report.stable_pcs.is_empty());
        assert!(!report.noisy_pcs.is_empty());
        // The paper's gain is small (0.7%); require a non-negative effect
        // with some tolerance for simulator noise.
        assert!(
            report.speedup_percent > -0.5,
            "stable training regressed: {}%",
            report.speedup_percent
        );
        // The scenario cell carries the machine the numbers came from.
        assert_eq!(report.machine, super::super::experiment_machine().machine_label());
    }
}
