//! §6.3 — Signature Optimization for Bypass Logic.
//!
//! "On the mcf workload, bypassing the PCs identified by CacheMind improves
//! performance under an LRU policy. Specifically, bypassing ten PCs
//! increases the cache hit rate from 25.06% to 26.98% (+7.66% relative) and
//! improves IPC ... corresponding to a 2.04% speedup."
//!
//! The identification step mirrors the Figure 11 chat: per-PC reuse and hit
//! statistics under Belady's optimal reveal PCs that are "frequently
//! evicted even by the optimal policy" — high reuse distance, near-zero hit
//! rate — which makes their fills pure pollution.

use serde::{Deserialize, Serialize};

use cachemind_policies::{BeladyPolicy, BypassPolicy};
use cachemind_sim::addr::Pc;
use cachemind_sim::replacement::RecencyPolicy;
use cachemind_sim::replay::LlcReplay;
use cachemind_sim::stats::CacheStats;
use cachemind_workloads::workload::Scale;

use super::{experiment_ipc_model, experiment_llc};

/// Outcome of the bypass experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BypassReport {
    /// Workload name.
    pub workload: String,
    /// The PCs CacheMind identified for bypassing.
    pub bypassed_pcs: Vec<Pc>,
    /// LRU hit rate without bypassing.
    pub base_hit_rate: f64,
    /// LRU hit rate with the bypass list installed.
    pub bypass_hit_rate: f64,
    /// Relative hit-rate improvement in percent.
    pub relative_hit_gain_percent: f64,
    /// Baseline IPC.
    pub base_ipc: f64,
    /// Bypass IPC.
    pub bypass_ipc: f64,
    /// Speedup in percent.
    pub speedup_percent: f64,
    /// The condensed analysis transcript (Figure 11 shape).
    pub transcript: String,
}

fn demand_stats_ipc(instr: u64, stats: &CacheStats) -> f64 {
    let demand_accesses = stats.accesses - stats.prefetches;
    let demand_hits = demand_accesses.saturating_sub(stats.demand_misses);
    experiment_ipc_model().ipc_from_llc(instr, demand_hits, stats.demand_misses)
}

/// Runs the full identify-then-bypass loop on mcf.
pub fn run(scale: Scale, bypass_count: usize) -> BypassReport {
    let workload = cachemind_workloads::mcf::generate(scale);
    let replay = LlcReplay::new(experiment_llc(), &workload.accesses);

    // Identification (the CacheMind query): Belady per-PC statistics.
    let belady = replay.run(BeladyPolicy::new());
    let mut per_pc: std::collections::HashMap<Pc, (u64, u64, f64, u64)> =
        std::collections::HashMap::new();
    for r in &belady.records {
        let e = per_pc.entry(r.pc).or_insert((0, 0, 0.0, 0));
        e.0 += 1; // accesses
        e.1 += r.is_miss as u64; // misses
        if let Some(d) = r.accessed_reuse_distance {
            e.2 += d as f64;
            e.3 += 1;
        }
    }
    let mut candidates: Vec<(Pc, f64, f64)> = per_pc
        .iter()
        .filter(|(_, (accesses, ..))| *accesses >= 50)
        .map(|(pc, (accesses, misses, reuse_sum, reuse_n))| {
            let hit_rate = 1.0 - *misses as f64 / *accesses as f64;
            let mean_reuse = if *reuse_n > 0 { reuse_sum / *reuse_n as f64 } else { f64::MAX };
            (*pc, hit_rate, mean_reuse)
        })
        .collect();
    // "high reuse distance and/or near-zero hit rate": sort by hit rate
    // ascending, break ties by reuse distance descending.
    candidates.sort_by(|a, b| a.1.total_cmp(&b.1).then(b.2.total_cmp(&a.2)));
    let bypassed_pcs: Vec<Pc> = candidates
        .iter()
        .filter(|(_, hit_rate, _)| *hit_rate < 0.25)
        .take(bypass_count)
        .map(|(pc, ..)| *pc)
        .collect();

    // Validation: LRU with and without the bypass list.
    let base = replay.run(RecencyPolicy::lru());
    let bypassed = replay.run(BypassPolicy::new(RecencyPolicy::lru(), bypassed_pcs.clone()));

    let base_hit_rate = base.hit_rate();
    let bypass_hit_rate = bypassed.hit_rate();
    let base_ipc = demand_stats_ipc(workload.instr_count, &base.stats);
    let bypass_ipc = demand_stats_ipc(workload.instr_count, &bypassed.stats);

    let transcript = format!(
        "User: List all PCs in the mcf workload.\n\
         Assistant: {} unique PCs found.\n\n\
         User: For mcf + Belady, compute average accessed-address reuse distance, cache hit \
         rate and hit count per PC; sort in descending order in terms of reuse distance.\n\
         Assistant: {} PCs ranked (top candidate hit rate {:.1}%).\n\n\
         User: Identify PCs suitable for bypassing to improve IPC.\n\
         Assistant: Bypass candidates: {}.\n",
        per_pc.len(),
        candidates.len(),
        candidates.first().map(|c| c.1 * 100.0).unwrap_or(0.0),
        bypassed_pcs.iter().map(|p| format!("{p}")).collect::<Vec<_>>().join(", "),
    );

    BypassReport {
        workload: workload.name,
        bypassed_pcs,
        base_hit_rate,
        bypass_hit_rate,
        relative_hit_gain_percent: if base_hit_rate > 0.0 {
            (bypass_hit_rate / base_hit_rate - 1.0) * 100.0
        } else {
            0.0
        },
        base_ipc,
        bypass_ipc,
        speedup_percent: cachemind_sim::timing::IpcModel::speedup_percent(base_ipc, bypass_ipc),
        transcript,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypassing_improves_hit_rate_and_ipc() {
        let report = run(Scale::Small, 10);
        assert!(!report.bypassed_pcs.is_empty());
        assert!(
            report.bypass_hit_rate > report.base_hit_rate,
            "hit rate {} -> {}",
            report.base_hit_rate,
            report.bypass_hit_rate
        );
        assert!(report.speedup_percent > 0.0, "speedup {}", report.speedup_percent);
        assert!(report.transcript.contains("Bypass candidates"));
    }
}
