//! §6.3 — Belady vs PARROT per-PC inversions.
//!
//! "Across the three benchmarks, astar, lbm, and mcf, PARROT outperformed
//! Belady for 2, 5, and 3 PCs respectively, in terms of hit rate. ... OPT
//! provides an upper bound on the *total* cache hit rate ... this global
//! guarantee does not extend to individual program counters."

use serde::{Deserialize, Serialize};

use cachemind_policies::{BeladyPolicy, ImitationPolicy};
use cachemind_sim::addr::Pc;
use cachemind_sim::replay::LlcReplay;
use cachemind_workloads::workload::Scale;

use super::experiment_llc;

/// One workload's inversion summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InversionRow {
    /// Workload name.
    pub workload: String,
    /// PCs where PARROT's hit rate exceeds Belady's.
    pub inverted_pcs: Vec<Pc>,
    /// Aggregate Belady hit rate.
    pub belady_hit_rate: f64,
    /// Aggregate PARROT hit rate.
    pub parrot_hit_rate: f64,
}

/// Runs the study over the three database workloads.
pub fn run(scale: Scale) -> Vec<InversionRow> {
    let mut out = Vec::new();
    for name in cachemind_workloads::DATABASE_WORKLOADS {
        let workload = cachemind_workloads::by_name(name, scale).expect("known database workload");
        let replay = LlcReplay::new(experiment_llc(), &workload.accesses);
        let belady = replay.run(BeladyPolicy::new());
        let parrot = replay.run(ImitationPolicy::new());

        let mut per_pc: std::collections::HashMap<Pc, [(u64, u64); 2]> =
            std::collections::HashMap::new();
        for (slot, report) in [(0usize, &belady), (1, &parrot)] {
            for r in &report.records {
                let e = per_pc.entry(r.pc).or_insert([(0, 0); 2]);
                e[slot].0 += 1;
                e[slot].1 += (!r.is_miss) as u64;
            }
        }
        let mut inverted: Vec<Pc> = per_pc
            .iter()
            .filter(|(_, [b, p])| {
                b.0 >= 30
                    && p.0 >= 30
                    && (p.1 as f64 / p.0 as f64) > (b.1 as f64 / b.0 as f64) + 1e-9
            })
            .map(|(pc, _)| *pc)
            .collect();
        inverted.sort();

        out.push(InversionRow {
            workload: name.to_owned(),
            inverted_pcs: inverted,
            belady_hit_rate: belady.hit_rate(),
            parrot_hit_rate: parrot.hit_rate(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn belady_wins_globally_but_not_per_pc() {
        let rows = run(Scale::Small);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            // The global guarantee always holds...
            assert!(
                row.belady_hit_rate >= row.parrot_hit_rate,
                "{}: belady {} vs parrot {}",
                row.workload,
                row.belady_hit_rate,
                row.parrot_hit_rate
            );
        }
        // ...but at least one workload exhibits per-PC inversions.
        let total_inversions: usize = rows.iter().map(|r| r.inverted_pcs.len()).sum();
        assert!(total_inversions >= 1, "no per-PC inversions found");
    }
}
