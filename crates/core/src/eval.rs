//! Figure-level data builders: one function per evaluation artefact of the
//! paper, all driven by [`cachemind_benchsuite::harness`].
//!
//! Every builder that evaluates several independent configurations
//! (backends, shot counts, retrievers) spreads them across cores with
//! [`cachemind_sim::sweep::sweep_cells`] — the same order-preserving
//! parallel primitive behind `SweepGrid` — so the figure binaries stop
//! replaying configurations serially while their outputs stay
//! byte-identical for any thread count.

use serde::{Deserialize, Serialize};

use cachemind_benchsuite::catalog::Catalog;
use cachemind_benchsuite::harness::{self, BenchReport, HarnessConfig};
use cachemind_lang::context::ContextQuality;
use cachemind_lang::intent::{QueryCategory, Tier};
use cachemind_lang::profiles::BackendKind;
use cachemind_retrieval::ranger::RangerRetriever;
use cachemind_retrieval::sieve::SieveRetriever;
use cachemind_sim::sweep::sweep_cells;
use cachemind_tracedb::database::TraceDatabase;

/// Figure 4: accuracy per category for each backend (Sieve retrieval).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4 {
    /// Backend labels, in Figure 4 order.
    pub backends: Vec<String>,
    /// `(category label, per-backend accuracy %)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Per-backend weighted totals.
    pub totals: Vec<f64>,
}

/// Builds Figure 4.
pub fn figure4(db: &TraceDatabase, catalog: &Catalog) -> Figure4 {
    let sieve = SieveRetriever::new();
    let config = HarnessConfig::default();
    let reports: Vec<BenchReport> =
        sweep_cells(BackendKind::ALL.to_vec(), |b| harness::run(db, &sieve, b, catalog, &config));
    let rows = QueryCategory::ALL
        .iter()
        .map(|&cat| {
            (cat.label().to_owned(), reports.iter().map(|r| r.category_accuracy(cat)).collect())
        })
        .collect();
    Figure4 {
        backends: BackendKind::ALL.iter().map(|b| b.label().to_owned()).collect(),
        rows,
        totals: reports.iter().map(BenchReport::total).collect(),
    }
}

/// Figure 5: accuracy under Low/Medium/High retrieval quality per backend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure5 {
    /// `(backend label, [low, medium, high] accuracy %)`.
    pub rows: Vec<(String, [f64; 3])>,
}

/// Builds Figure 5 (controlled context degradation).
pub fn figure5(db: &TraceDatabase, catalog: &Catalog) -> Figure5 {
    let sieve = SieveRetriever::new();
    let config = HarnessConfig { degrade_buckets: true, ..Default::default() };
    let rows = sweep_cells(BackendKind::ALL.to_vec(), |b| {
        let report = harness::run(db, &sieve, b, catalog, &config);
        (
            b.label().to_owned(),
            [
                report.quality_accuracy(ContextQuality::Low).unwrap_or(0.0),
                report.quality_accuracy(ContextQuality::Medium).unwrap_or(0.0),
                report.quality_accuracy(ContextQuality::High).unwrap_or(0.0),
            ],
        )
    });
    Figure5 { rows }
}

/// Figure 6: zero/one/few-shot prompting comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure6 {
    /// `(shots, total accuracy %, trick accuracy %)` per configuration.
    pub rows: Vec<(usize, f64, f64)>,
}

/// Builds Figure 6's ablation for one backend.
pub fn figure6(db: &TraceDatabase, catalog: &Catalog, backend: BackendKind) -> Figure6 {
    let sieve = SieveRetriever::new();
    let rows = sweep_cells(vec![0usize, 1, 3], |shots| {
        let report = harness::run(
            db,
            &sieve,
            backend,
            catalog,
            &HarnessConfig { shots, ..Default::default() },
        );
        (shots, report.total(), report.category_accuracy(QueryCategory::Trick))
    });
    Figure6 { rows }
}

/// Figure 7: rubric-score distributions per backend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure7 {
    /// `(backend label, histogram of scores 0..=5)`.
    pub rows: Vec<(String, [usize; 6])>,
}

/// Builds Figure 7.
pub fn figure7(db: &TraceDatabase, catalog: &Catalog) -> Figure7 {
    let sieve = SieveRetriever::new();
    let config = HarnessConfig::default();
    let rows = sweep_cells(BackendKind::ALL.to_vec(), |b| {
        let report = harness::run(db, &sieve, b, catalog, &config);
        (b.label().to_owned(), report.score_histogram())
    });
    Figure7 { rows }
}

/// Figure 8: Sieve vs Ranger per trace-grounded category plus tier totals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure8 {
    /// `(category label, sieve accuracy %, ranger accuracy %)`.
    pub rows: Vec<(String, f64, f64)>,
    /// Trace-grounded tier totals `(sieve, ranger)`.
    pub tg_total: (f64, f64),
    /// Reasoning tier totals `(sieve, ranger)`.
    pub ara_total: (f64, f64),
}

/// Builds Figure 8 with the paper's GPT-4o generator held fixed.
pub fn figure8(db: &TraceDatabase, catalog: &Catalog) -> Figure8 {
    let config = HarnessConfig::default();
    let backend = BackendKind::Gpt4o;
    let mut reports = sweep_cells(vec![false, true], |use_ranger| {
        if use_ranger {
            harness::run(db, &RangerRetriever::new(), backend, catalog, &config)
        } else {
            harness::run(db, &SieveRetriever::new(), backend, catalog, &config)
        }
    });
    let ranger = reports.pop().expect("ranger report");
    let sieve = reports.pop().expect("sieve report");
    let tg_categories = [
        QueryCategory::HitMiss,
        QueryCategory::MissRate,
        QueryCategory::PolicyComparison,
        QueryCategory::Count,
        QueryCategory::Arithmetic,
        QueryCategory::Trick,
    ];
    let rows = tg_categories
        .iter()
        .map(|&cat| {
            (cat.label().to_owned(), sieve.category_accuracy(cat), ranger.category_accuracy(cat))
        })
        .collect();
    Figure8 {
        rows,
        tg_total: (
            sieve.tier_accuracy(Tier::TraceGrounded),
            ranger.tier_accuracy(Tier::TraceGrounded),
        ),
        ara_total: (sieve.tier_accuracy(Tier::Reasoning), ranger.tier_accuracy(Tier::Reasoning)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_tracedb::TraceDatabaseBuilder;

    fn setup() -> (TraceDatabase, Catalog) {
        let db = TraceDatabaseBuilder::quick_demo().build();
        let catalog = Catalog::generate(&db);
        (db, catalog)
    }

    #[test]
    fn figure4_shape() {
        let (db, catalog) = setup();
        let fig = figure4(&db, &catalog);
        assert_eq!(fig.backends.len(), 5);
        assert_eq!(fig.rows.len(), 11);
        // Count collapses under Sieve for every backend.
        let count_row = fig.rows.iter().find(|(l, _)| l == "Count").unwrap();
        assert!(count_row.1.iter().all(|&v| v <= 20.0), "count row {:?}", count_row.1);
        // GPT-4o has the best weighted total.
        let best = fig
            .totals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(fig.backends[best], "GPT-4o");
    }

    #[test]
    fn figure5_monotone_in_quality() {
        let (db, catalog) = setup();
        let fig = figure5(&db, &catalog);
        for (backend, [low, _mid, high]) in &fig.rows {
            assert!(high > low, "{backend}: low {low} vs high {high}");
        }
    }

    #[test]
    fn figure6_fewshot_helps_tricks() {
        let (db, catalog) = setup();
        let fig = figure6(&db, &catalog, BackendKind::O3);
        assert_eq!(fig.rows.len(), 3);
        let zero_trick = fig.rows[0].2;
        let few_trick = fig.rows[2].2;
        assert!(few_trick >= zero_trick, "few-shot trick {few_trick} vs zero {zero_trick}");
        // Totals barely move (within 15 points).
        let totals: Vec<f64> = fig.rows.iter().map(|r| r.1).collect();
        let spread = totals.iter().cloned().fold(f64::MIN, f64::max)
            - totals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 15.0, "totals spread {spread}: {totals:?}");
    }

    #[test]
    fn figure7_histograms_sum_to_reasoning_tier() {
        let (db, catalog) = setup();
        let fig = figure7(&db, &catalog);
        assert_eq!(fig.rows.len(), 5);
        for (backend, hist) in &fig.rows {
            assert_eq!(hist.iter().sum::<usize>(), 25, "{backend}");
        }
    }

    #[test]
    fn figure8_shape() {
        let (db, catalog) = setup();
        let fig = figure8(&db, &catalog);
        assert!(fig.tg_total.1 > fig.tg_total.0, "ranger must win TG: {:?}", fig.tg_total);
        assert!(fig.ara_total.0 > fig.ara_total.1, "sieve must win ARA: {:?}", fig.ara_total);
        let count = fig.rows.iter().find(|(l, ..)| l == "Count").unwrap();
        assert!(count.2 > count.1, "ranger repairs Count: {count:?}");
    }
}
