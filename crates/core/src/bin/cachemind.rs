//! `cachemind` — the command-line front door to the reproduction.
//!
//! ```text
//! cachemind ask "<question>" [--retriever sieve|ranger|dense] [--backend NAME]
//! cachemind chat                      # interactive session on stdin
//! cachemind bench [--retriever NAME]  # run CacheMindBench, print breakdown
//! cachemind probes                    # the Figure 9 retrieval comparison
//! cachemind insight <bypass|mockingjay|prefetch|sets|inversions>
//! cachemind export <trace_id> <file.csv>
//! ```
//!
//! The database is built at `Scale::Tiny` by default; set
//! `CACHEMIND_SCALE=small` for the paper-scale run.

use std::io::{BufRead, Write as _};

use cachemind_benchsuite::catalog::Catalog;
use cachemind_benchsuite::harness::{self, HarnessConfig};
use cachemind_core::insights;
use cachemind_core::system::{CacheMind, RetrieverKind};
use cachemind_core::ChatSession;
use cachemind_lang::intent::{QueryCategory, Tier};
use cachemind_lang::profiles::BackendKind;
use cachemind_retrieval::dense::DenseIndexRetriever;
use cachemind_retrieval::probes::{probe_queries, run_probes};
use cachemind_retrieval::ranger::RangerRetriever;
use cachemind_retrieval::retriever::Retriever;
use cachemind_retrieval::sieve::SieveRetriever;
use cachemind_tracedb::database::{TraceDatabase, TraceDatabaseBuilder};
use cachemind_workloads::workload::Scale;

fn scale() -> Scale {
    match std::env::var("CACHEMIND_SCALE").as_deref() {
        Ok("small") => Scale::Small,
        Ok("full") => Scale::Full,
        _ => Scale::Tiny,
    }
}

fn build_db() -> TraceDatabase {
    eprintln!("building trace database ({:?}) ...", scale());
    if scale() == Scale::Tiny {
        TraceDatabaseBuilder::quick_demo().build()
    } else {
        TraceDatabaseBuilder::new().scale(scale()).build()
    }
}

fn retriever_kind(args: &[String]) -> RetrieverKind {
    match flag(args, "--retriever").as_deref() {
        Some("sieve") => RetrieverKind::Sieve,
        Some("dense") => RetrieverKind::Dense,
        _ => RetrieverKind::Ranger,
    }
}

fn backend_kind(args: &[String]) -> BackendKind {
    match flag(args, "--backend").as_deref() {
        Some("gpt-3.5") | Some("gpt35") => BackendKind::Gpt35Turbo,
        Some("o3") => BackendKind::O3,
        Some("gpt-4o-mini") | Some("mini") => BackendKind::Gpt4oMini,
        Some("finetuned") | Some("ft") => BackendKind::FinetunedGpt4oMini,
        _ => BackendKind::Gpt4o,
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> ! {
    eprintln!(
        "usage: cachemind <ask|chat|bench|probes|insight|export> [...]\n\
         see crates/core/src/bin/cachemind.rs for details"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("ask") => {
            let question = args.get(1).cloned().unwrap_or_else(|| usage());
            let mind = CacheMind::new(build_db())
                .with_retriever(retriever_kind(&args))
                .with_backend(backend_kind(&args));
            let answer = mind.ask(&question);
            println!("{}", answer.text);
            println!(
                "\n-- evidence ({:?}, {}) --",
                answer.context.quality, answer.context.retriever
            );
            for fact in answer.context.facts.iter().take(6) {
                println!("{}", fact.render());
            }
        }
        Some("chat") => {
            let mind = CacheMind::new(build_db())
                .with_retriever(retriever_kind(&args))
                .with_backend(backend_kind(&args));
            let mut chat = ChatSession::new(mind);
            let stdin = std::io::stdin();
            print!("cachemind> ");
            std::io::stdout().flush().ok();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                let line = line.trim();
                if line.is_empty() || line == "exit" || line == "quit" {
                    break;
                }
                let answer = chat.ask(line);
                println!("{}\n", answer.text);
                print!("cachemind> ");
                std::io::stdout().flush().ok();
            }
        }
        Some("bench") => {
            let db = build_db();
            let catalog = Catalog::generate(&db);
            let sieve = SieveRetriever::new();
            let ranger = RangerRetriever::new();
            let retriever: &dyn Retriever = match retriever_kind(&args) {
                RetrieverKind::Sieve => &sieve,
                _ => &ranger,
            };
            let report = harness::run(
                &db,
                retriever,
                backend_kind(&args),
                &catalog,
                &HarnessConfig::default(),
            );
            println!("CacheMindBench — {} + {}", report.retriever, report.backend);
            for category in QueryCategory::ALL {
                println!("{:<30} {:>7.2}%", category.label(), report.category_accuracy(category));
            }
            println!(
                "TG {:.2}%  ARA {:.2}%  total {:.2}%",
                report.tier_accuracy(Tier::TraceGrounded),
                report.tier_accuracy(Tier::Reasoning),
                report.total()
            );
        }
        Some("probes") => {
            let db = build_db();
            let probes = probe_queries(&db);
            let dense = DenseIndexRetriever::build(&db, 4);
            for report in [
                run_probes(&db, &dense, &probes),
                run_probes(&db, &SieveRetriever::new(), &probes),
                run_probes(&db, &RangerRetriever::new(), &probes),
            ] {
                println!(
                    "{:<8} {}/{} correct, {:.1} us mean latency",
                    report.retriever, report.correct, report.total, report.mean_latency_us
                );
            }
        }
        Some("insight") => match args.get(1).map(String::as_str) {
            Some("bypass") => {
                let r = insights::bypass::run(scale(), 10);
                println!("{}", r.transcript);
                println!(
                    "hit rate {:.2}% -> {:.2}%, IPC {:+.2}%",
                    r.base_hit_rate * 100.0,
                    r.bypass_hit_rate * 100.0,
                    r.speedup_percent
                );
            }
            Some("mockingjay") => {
                let r = insights::mockingjay::run(scale());
                println!("{}", r.transcript);
                println!(
                    "IPC {:.5} -> {:.5} ({:+.2}%)",
                    r.base_ipc, r.stable_ipc, r.speedup_percent
                );
            }
            Some("prefetch") => {
                let r = insights::prefetch::run(scale(), 8);
                println!("{}", r.transcript);
                println!(
                    "IPC {:.5} -> {:.5} ({:+.2}%)",
                    r.base_ipc, r.prefetch_ipc, r.speedup_percent
                );
            }
            Some("sets") => {
                let r = insights::set_hotness::run(scale());
                println!("{}", r.transcript);
            }
            Some("inversions") => {
                for row in insights::inversions::run(scale()) {
                    println!(
                        "{}: {} inversions (belady {:.2}% vs parrot {:.2}%)",
                        row.workload,
                        row.inverted_pcs.len(),
                        row.belady_hit_rate * 100.0,
                        row.parrot_hit_rate * 100.0
                    );
                }
            }
            _ => usage(),
        },
        Some("export") => {
            let trace_id = args.get(1).cloned().unwrap_or_else(|| usage());
            let path = args.get(2).cloned().unwrap_or_else(|| usage());
            let db = build_db();
            let entry = db.get(&trace_id).unwrap_or_else(|| {
                eprintln!(
                    "unknown trace {trace_id:?}; available: {}",
                    db.trace_ids().collect::<Vec<_>>().join(", ")
                );
                std::process::exit(1);
            });
            std::fs::write(&path, entry.frame.to_csv()).expect("write CSV");
            println!("wrote {} rows to {path}", entry.frame.len());
        }
        _ => usage(),
    }
}
