//! The CacheMind system: query-first, retrieval-augmented answering.
//!
//! [`CacheMind`] holds its trace store behind an `Arc<dyn TraceStore>`, so
//! one database — monolithic or sharded — can be shared by any number of
//! concurrent sessions (the serve layer's whole premise). Answering is a
//! pure function of the question and the store, which is what makes the
//! batched path ([`CacheMind::ask_batch`]) byte-identical to one-at-a-time
//! [`CacheMind::ask`] calls regardless of worker count.

use std::collections::BTreeMap;
use std::sync::Arc;

use rayon::prelude::*;

use cachemind_lang::context::RetrievedContext;
use cachemind_lang::generator::{Generator, GeneratorAnswer, GeneratorRequest, Verdict};
use cachemind_lang::intent::QueryIntent;
use cachemind_lang::profiles::BackendKind;
use cachemind_lang::prompt::{Example, PromptBuilder};
use cachemind_lang::SimulatedBackend;
use cachemind_retrieval::dense::DenseIndexRetriever;
use cachemind_retrieval::ranger::RangerRetriever;
use cachemind_retrieval::retriever::Retriever;
use cachemind_retrieval::sieve::SieveRetriever;
use cachemind_sim::scenario::ScenarioSelector;
use cachemind_tracedb::database::{TraceDatabase, TraceId};
use cachemind_tracedb::store::TraceStore;

/// Which retriever the system routes queries through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrieverKind {
    /// CacheMind-Sieve: symbolic–semantic filtering.
    Sieve,
    /// CacheMind-Ranger: plan generation + execution runtime.
    Ranger,
    /// The dense-embedding baseline (for comparisons).
    Dense,
}

/// Options modulating how a query is answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOptions {
    /// Route the Figure 10–13 exploration vocabulary ("list all unique
    /// PCs", ...) straight to the Ranger plan runtime before the RAG
    /// pipeline. On by default; disable to force retrieval-augmented
    /// answering even for exploration commands.
    pub explore: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions { explore: true }
    }
}

/// A typed query: the question text plus its scenario scope and options —
/// the primary input of [`CacheMind::ask_query`]. A bare string converts
/// into an unscoped query, which answers byte-identically to the legacy
/// [`CacheMind::ask`] path.
///
/// The selector uses the canonical scenario grammar
/// `workload@machine+prefetcher/policy` (every component optional — see
/// [`ScenarioSelector`]): its workload/policy halves act as slot
/// *defaults* for intent parsing, while its machine/prefetcher halves are
/// a hard retrieval scope, resolved against qualified trace keys
/// (`<workload>_evictions_<policy>[@machine][+prefetcher]`). Inline
/// selector tokens in the question text (`mcf@table2`, `+stride4`) win
/// per-field over this selector.
///
/// ```rust
/// use cachemind_core::system::Query;
/// use cachemind_sim::scenario::ScenarioSelector;
///
/// let query = Query::scoped(
///     "What is the estimated IPC?",
///     ScenarioSelector::parse("astar@table2+stride4/lru").unwrap(),
/// );
/// assert_eq!(query.selector.prefetcher.as_deref(), Some("stride4"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    /// The natural-language question.
    pub text: String,
    /// The scenario scope: slot defaults for workload/policy, a hard
    /// machine/prefetcher scope for retrieval. Inline `@machine` syntax in
    /// `text` wins per-field over this selector.
    pub selector: ScenarioSelector,
    /// Answering options.
    pub options: QueryOptions,
}

impl Query {
    /// An unscoped query.
    pub fn new(text: impl Into<String>) -> Self {
        Query { text: text.into(), ..Query::default() }
    }

    /// A query scoped by a selector.
    pub fn scoped(text: impl Into<String>, selector: ScenarioSelector) -> Self {
        Query { text: text.into(), selector, options: QueryOptions::default() }
    }

    /// Replaces the selector.
    pub fn with_selector(mut self, selector: ScenarioSelector) -> Self {
        self.selector = selector;
        self
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }
}

impl From<&str> for Query {
    fn from(text: &str) -> Self {
        Query::new(text)
    }
}

impl From<String> for Query {
    fn from(text: String) -> Self {
        Query::new(text)
    }
}

/// A grounded answer: text, verdict and the evidence behind it.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Natural-language answer.
    pub text: String,
    /// Machine-checkable verdict.
    pub verdict: Verdict,
    /// The retrieved context the answer is grounded in.
    pub context: RetrievedContext,
    /// The full prompt that was rendered for the generator.
    pub prompt: String,
}

/// A per-batch retrieval memo: serialized intent → retrieved context.
///
/// Retrieval is a pure function of `(store, intent)`, so replaying a cached
/// context is indistinguishable from retrieving again — the cache changes
/// the work done, never the answer. One cache lives per batch group (or per
/// serve worker), so concurrent batches never contend on a lock.
#[derive(Debug, Default)]
pub struct ContextCache {
    contexts: BTreeMap<String, RetrievedContext>,
}

impl ContextCache {
    /// An empty cache.
    pub fn new() -> Self {
        ContextCache::default()
    }

    /// Number of memoized contexts.
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// Whether the cache holds no contexts.
    pub fn is_empty(&self) -> bool {
        self.contexts.is_empty()
    }
}

/// A batch of concurrent questions answered together.
///
/// The batch path groups questions by the shard their resolved trace key
/// lives on, runs the groups in parallel (rayon), memoizes retrieval per
/// group, and fans the answers back out in input order. Answers are
/// byte-identical to asking each question alone, in order.
#[derive(Debug, Clone, Default)]
pub struct QueryBatch {
    questions: Vec<String>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// Adds a question.
    pub fn question(mut self, q: impl Into<String>) -> Self {
        self.questions.push(q.into());
        self
    }

    /// The questions, in submission order.
    pub fn questions(&self) -> &[String] {
        &self.questions
    }

    /// Number of questions in the batch.
    pub fn len(&self) -> usize {
        self.questions.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.questions.is_empty()
    }

    /// Answers the whole batch against `mind`.
    pub fn run(&self, mind: &CacheMind) -> Vec<Answer> {
        mind.ask_batch(&self.questions)
    }
}

impl<S: Into<String>> FromIterator<S> for QueryBatch {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        QueryBatch { questions: iter.into_iter().map(Into::into).collect() }
    }
}

/// The CacheMind system.
///
/// Owns a shared handle to the trace store, a retriever and a generator
/// backend; turning a natural-language question into a trace-grounded
/// answer is one [`CacheMind::ask`] call.
#[derive(Debug)]
pub struct CacheMind {
    db: Arc<dyn TraceStore>,
    retriever: RetrieverKind,
    backend: SimulatedBackend,
    shots: Vec<Example>,
    sieve: SieveRetriever,
    ranger: RangerRetriever,
    dense: Option<DenseIndexRetriever>,
    metrics: cachemind_obs::MetricsRegistry,
    answers: Option<crate::cache::AnswerCache>,
}

impl CacheMind {
    /// Creates the system over a database with the paper's default
    /// configuration: Sieve retrieval, GPT-4o backend, zero-shot.
    pub fn new(db: TraceDatabase) -> Self {
        CacheMind::shared(Arc::new(db))
    }

    /// Creates the system over an already-shared trace store (the serve
    /// layer hands every session the same `Arc` of one sharded database).
    pub fn shared(db: Arc<dyn TraceStore>) -> Self {
        CacheMind {
            db,
            retriever: RetrieverKind::Sieve,
            backend: SimulatedBackend::new(BackendKind::Gpt4o),
            shots: Vec::new(),
            sieve: SieveRetriever::new(),
            ranger: RangerRetriever::new(),
            dense: None,
            metrics: cachemind_obs::global().clone(),
            answers: None,
        }
    }

    /// Selects the retriever.
    pub fn with_retriever(mut self, kind: RetrieverKind) -> Self {
        if kind == RetrieverKind::Dense && self.dense.is_none() {
            self.dense = Some(DenseIndexRetriever::build(&*self.db, 4));
        }
        self.retriever = kind;
        self
    }

    /// Selects the generator backend.
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = SimulatedBackend::new(kind);
        self
    }

    /// Enables k-shot prompting with the given examples.
    pub fn with_examples(mut self, examples: Vec<Example>) -> Self {
        self.shots = examples;
        self
    }

    /// Redirects retrieval-stage telemetry (plan compile/run spans, and
    /// the answer-cache counters of any *subsequently* enabled cache) to
    /// `metrics` instead of the process-global registry — the serve layer
    /// passes each engine's own registry down here.
    pub fn with_metrics(mut self, metrics: &cachemind_obs::MetricsRegistry) -> Self {
        self.ranger = self.ranger.with_metrics(metrics);
        self.metrics = metrics.clone();
        self
    }

    /// Enables (or disables) the whole-answer cache: answers keyed by
    /// `(db fingerprint, canonical selector, options, question text)` are
    /// replayed instead of recomputed. Answering is deterministic, so the
    /// cache is semantics-free — every ask path returns byte-identical
    /// answers with it on or off. Call after [`CacheMind::with_metrics`]
    /// so the `retrieval.cache.*` counters land in the owner's registry.
    pub fn with_answer_cache(mut self, enabled: bool) -> Self {
        self.answers = enabled.then(|| crate::cache::AnswerCache::new(&self.metrics));
        self
    }

    /// The whole-answer cache, when enabled.
    pub fn answer_cache(&self) -> Option<&crate::cache::AnswerCache> {
        self.answers.as_ref()
    }

    /// The underlying trace store.
    pub fn database(&self) -> &dyn TraceStore {
        &*self.db
    }

    /// A second handle to the underlying trace store.
    pub fn store(&self) -> Arc<dyn TraceStore> {
        Arc::clone(&self.db)
    }

    /// Parses a question against the database vocabulary (unscoped).
    pub fn parse(&self, question: &str) -> QueryIntent {
        self.parse_scoped(question, &ScenarioSelector::all())
    }

    /// Parses a question against the database vocabulary within a
    /// scenario scope (a session-pinned or wire-level selector).
    pub fn parse_scoped(&self, question: &str, scope: &ScenarioSelector) -> QueryIntent {
        let workloads = self.db.workloads();
        let policies = self.db.policies();
        QueryIntent::parse_scoped(
            question,
            &workloads.iter().map(String::as_str).collect::<Vec<_>>(),
            &policies.iter().map(String::as_str).collect::<Vec<_>>(),
            scope,
        )
    }

    fn active_retriever(&self) -> &dyn Retriever {
        match self.retriever {
            RetrieverKind::Sieve => &self.sieve,
            RetrieverKind::Ranger => &self.ranger,
            RetrieverKind::Dense => {
                self.dense.as_ref().expect("dense index built in with_retriever")
            }
        }
    }

    /// Retrieves the context bundle for a question without generating.
    pub fn retrieve(&self, question: &str) -> RetrievedContext {
        let intent = self.parse(question);
        self.active_retriever().retrieve(&*self.db, &intent)
    }

    /// Routes *exploration commands* — the Figure 10–13 chat vocabulary
    /// that goes beyond the eleven benchmark categories — straight to the
    /// Ranger plan runtime: "list all unique PCs", "list unique cache
    /// sets", "group PCs by reuse/ETR variance", "identify hot and cold
    /// sets". Returns `None` when the question is not an exploration
    /// command.
    pub fn try_exploration(&self, question: &str) -> Option<Answer> {
        let intent = self.parse(question);
        self.try_exploration_intent(question, &intent)
    }

    /// [`CacheMind::try_exploration`] over a pre-parsed intent — the form
    /// the shared answer pipeline uses, so a query's scenario scope rides
    /// into the exploration plans too.
    fn try_exploration_intent(&self, question: &str, intent: &QueryIntent) -> Option<Answer> {
        use cachemind_retrieval::plan::Plan;
        let lower = question.to_lowercase();
        let workload = intent.workload.clone().or_else(|| self.db.workloads().first().cloned())?;
        let policy = intent.policy.clone().unwrap_or_else(|| "lru".to_owned());

        let plan = if lower.contains("unique pc") || lower.contains("all pcs") {
            Plan::UniquePcs { workload, policy }
        } else if lower.contains("unique cache sets") || lower.contains("unique sets") {
            Plan::UniqueSets { workload, policy }
        } else if (lower.contains("group") || lower.contains("cluster"))
            && lower.contains("variance")
        {
            Plan::GroupPcsByReuseVariance { workload, policy }
        } else if lower.contains("hot") && lower.contains("cold") && lower.contains("set") {
            Plan::HotColdSets { workload, policy }
        } else if lower.contains("per-pc") || lower.contains("per pc table") {
            Plan::PerPcTable { workload, policy, limit: 20 }
        } else {
            return None;
        };

        let facts = plan.run_scoped(&*self.db, &intent.selector.machine_scope()).ok()?;
        let context = RetrievedContext {
            facts,
            quality: cachemind_lang::context::ContextQuality::High,
            retriever: "ranger".to_owned(),
        };
        let text = context.render();
        Some(Answer {
            text,
            verdict: Verdict::FreeForm { quality: 5 },
            context,
            prompt: plan.render_code(),
        })
    }

    /// The memo key for an intent: its full serialization (including the
    /// raw question, which some retrieval templates consult), so a cache
    /// hit can only replay a byte-identical retrieval.
    fn context_key(intent: &QueryIntent) -> String {
        serde_json::to_string(intent).unwrap_or_else(|_| intent.raw.clone())
    }

    /// The shard whose trace the intent's resolved `(workload, policy)`
    /// pair lives on — the deterministic scheduling key the batch path
    /// groups questions by. Questions that pin down neither slot fall back
    /// to the store's first workload, mirroring retrieval's own defaults.
    /// `workloads` is the store's sorted vocabulary, computed once per
    /// batch.
    fn home_shard(&self, intent: &QueryIntent, workloads: &[String]) -> usize {
        let workload =
            match intent.workload.as_deref().or_else(|| workloads.first().map(String::as_str)) {
                Some(w) => w,
                None => return 0,
            };
        let policy = intent.policy.as_deref().unwrap_or("lru");
        self.db.shard_of(&TraceId::new(workload, policy).key())
    }

    /// The shared retrieve → generate pipeline behind every ask variant
    /// ([`ask_query`], [`ask`], [`ask_batch`], the serve rounds): one code
    /// path, so neither batching nor the entry point can change answers.
    ///
    /// [`ask_query`]: CacheMind::ask_query
    /// [`ask`]: CacheMind::ask
    /// [`ask_batch`]: CacheMind::ask_batch
    fn answer_cached(
        &self,
        question: &str,
        intent: &QueryIntent,
        options: &QueryOptions,
        cache: Option<&mut ContextCache>,
    ) -> Answer {
        if options.explore {
            if let Some(answer) = self.try_exploration_intent(question, intent) {
                return answer;
            }
        }
        // Memo-key construction and the extra context clone only happen
        // when a caller actually supplied a cache; the solo `ask` path
        // retrieves directly.
        let context = match cache {
            None => self.active_retriever().retrieve(&*self.db, intent),
            Some(cache) => {
                let key = Self::context_key(intent);
                match cache.contexts.get(&key) {
                    Some(ctx) => ctx.clone(),
                    None => {
                        let ctx = self.active_retriever().retrieve(&*self.db, intent);
                        cache.contexts.insert(key, ctx.clone());
                        ctx
                    }
                }
            }
        };
        let mut builder = PromptBuilder::new();
        for ex in &self.shots {
            builder = builder.example(ex.clone());
        }
        let prompt = builder.render(question, &context);
        let request = GeneratorRequest {
            question: question.to_owned(),
            intent: intent.clone(),
            context: context.clone(),
            examples: self.shots.clone(),
        };
        let GeneratorAnswer { text, verdict } = self.backend.answer(&request);
        Answer { text, verdict, context, prompt }
    }

    /// The whole-answer cache key for a query: db fingerprint, canonical
    /// selector, options, and the verbatim question text — every input of
    /// the pure answering function (see `crate::cache` for the anatomy).
    /// Checked *before* intent parsing, so a hit skips the whole pipeline.
    fn answer_key(&self, query: &Query, cache: &crate::cache::AnswerCache) -> String {
        format!(
            "{:016x}|{}|{}|{}",
            cache.fingerprint(&*self.db),
            query.selector,
            u8::from(query.options.explore),
            query.text,
        )
    }

    /// Wraps an answer production with the whole-answer cache when it is
    /// enabled: replay on hit, produce-then-store on miss.
    fn answer_through_cache(&self, query: &Query, produce: impl FnOnce() -> Answer) -> Answer {
        match &self.answers {
            None => produce(),
            Some(cache) => {
                let key = self.answer_key(query, cache);
                if let Some(hit) = cache.get(&key) {
                    return hit;
                }
                let answer = produce();
                cache.insert(key, answer.clone());
                answer
            }
        }
    }

    /// Answers a typed query — the primary entry point: the query's
    /// selector scopes parsing (slot defaults) and retrieval (machine /
    /// prefetcher scope), inline `@machine` syntax in the text wins
    /// per-field, and the options gate exploration-command routing.
    /// Selector-free queries answer byte-identically to [`CacheMind::ask`].
    pub fn ask_query(&self, query: &Query) -> Answer {
        self.answer_through_cache(query, || {
            let intent = self.parse_scoped(&query.text, &query.selector);
            self.answer_cached(&query.text, &intent, &query.options, None)
        })
    }

    /// [`CacheMind::ask_query`] with an externally owned retrieval memo
    /// (the serve workers keep one per worker, amortizing repeated
    /// retrievals across the sessions a worker serves). The memo key
    /// includes the resolved selector, so scoped and unscoped retrievals
    /// never alias.
    pub fn ask_query_with_cache(&self, query: &Query, cache: &mut ContextCache) -> Answer {
        self.answer_through_cache(query, || {
            let intent = self.parse_scoped(&query.text, &query.selector);
            self.answer_cached(&query.text, &intent, &query.options, Some(cache))
        })
    }

    /// Answers a question with an externally owned retrieval memo — the
    /// unscoped wrapper over [`CacheMind::ask_query_with_cache`].
    pub fn ask_with_cache(&self, question: &str, cache: &mut ContextCache) -> Answer {
        self.ask_query_with_cache(&Query::new(question), cache)
    }

    /// Answers a question: exploration-command routing, then
    /// parse → retrieve → generate — the unscoped wrapper over
    /// [`CacheMind::ask_query`].
    pub fn ask(&self, question: &str) -> Answer {
        self.ask_query(&Query::new(question))
    }

    /// Answers a batch of concurrent typed queries.
    ///
    /// Queries are grouped by home shard, the groups run in parallel on
    /// rayon workers (honoring `RAYON_NUM_THREADS`), retrieval is memoized
    /// within each group, and answers fan back out in input order. The
    /// result is byte-identical to calling [`CacheMind::ask_query`] on
    /// each query serially, for any thread count.
    ///
    /// With the whole-answer cache enabled, hits are replayed up front and
    /// only the misses enter the parallel pipeline — still byte-identical,
    /// because answering is deterministic.
    pub fn ask_query_batch(&self, queries: &[Query]) -> Vec<Answer> {
        let Some(cache) = &self.answers else {
            return self.ask_query_batch_pipeline(queries);
        };
        let keys: Vec<String> = queries.iter().map(|q| self.answer_key(q, cache)).collect();
        let mut out: Vec<Option<Answer>> = keys.iter().map(|key| cache.get(key)).collect();
        let miss_indices: Vec<usize> = (0..out.len()).filter(|&i| out[i].is_none()).collect();
        if !miss_indices.is_empty() {
            let miss_queries: Vec<Query> =
                miss_indices.iter().map(|&i| queries[i].clone()).collect();
            let answers = self.ask_query_batch_pipeline(&miss_queries);
            for (&i, answer) in miss_indices.iter().zip(answers) {
                cache.insert(keys[i].clone(), answer.clone());
                out[i] = Some(answer);
            }
        }
        out.into_iter().map(|a| a.expect("every query answered exactly once")).collect()
    }

    /// The shard-grouped parallel answering pipeline behind
    /// [`CacheMind::ask_query_batch`] (the cache-independent half).
    fn ask_query_batch_pipeline(&self, queries: &[Query]) -> Vec<Answer> {
        // One vocabulary snapshot for the whole batch: parsing against it is
        // identical to per-query `parse_scoped` calls (the store is
        // immutable), without re-scanning every shard per query.
        let workloads = self.db.workloads();
        let policies = self.db.policies();
        let workload_refs: Vec<&str> = workloads.iter().map(String::as_str).collect();
        let policy_refs: Vec<&str> = policies.iter().map(String::as_str).collect();
        let intents: Vec<QueryIntent> = queries
            .iter()
            .map(|q| QueryIntent::parse_scoped(&q.text, &workload_refs, &policy_refs, &q.selector))
            .collect();
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, intent) in intents.iter().enumerate() {
            groups.entry(self.home_shard(intent, &workloads)).or_default().push(i);
        }
        let group_list: Vec<Vec<usize>> = groups.into_values().collect();
        let answered: Vec<Vec<(usize, Answer)>> = group_list
            .into_par_iter()
            .map(|indices| {
                let mut cache = ContextCache::new();
                indices
                    .into_iter()
                    .map(|i| {
                        let q = &queries[i];
                        (i, self.answer_cached(&q.text, &intents[i], &q.options, Some(&mut cache)))
                    })
                    .collect()
            })
            .collect();
        let mut out: Vec<Option<Answer>> = queries.iter().map(|_| None).collect();
        for (i, answer) in answered.into_iter().flatten() {
            out[i] = Some(answer);
        }
        out.into_iter().map(|a| a.expect("every query answered exactly once")).collect()
    }

    /// Answers a batch of plain questions — the unscoped wrapper over
    /// [`CacheMind::ask_query_batch`], byte-identical to serial
    /// [`CacheMind::ask`] calls.
    pub fn ask_batch(&self, questions: &[String]) -> Vec<Answer> {
        let queries: Vec<Query> = questions.iter().map(|q| Query::new(q.clone())).collect();
        self.ask_query_batch(&queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_tracedb::TraceDatabaseBuilder;

    fn mind() -> CacheMind {
        CacheMind::new(TraceDatabaseBuilder::quick_demo().build())
    }

    #[test]
    fn ask_produces_grounded_answer() {
        let m = mind().with_retriever(RetrieverKind::Ranger);
        let a = m.ask("What is the overall miss rate of the lbm workload under LRU?");
        assert!(matches!(a.verdict, Verdict::Number(_)), "verdict {:?}", a.verdict);
        assert!(!a.context.facts.is_empty());
        assert!(a.prompt.contains("SYSTEM:"));
    }

    #[test]
    fn retriever_switch_changes_evidence() {
        let m = mind();
        let db = m.database();
        let pc = db.get("astar_evictions_lru").unwrap().frame.rows()[0].pc;
        let q = format!("How many times did PC {pc} appear in astar under LRU?");
        let sieve_ctx = m.retrieve(&q);
        let ranger_ctx = CacheMind::new(TraceDatabaseBuilder::quick_demo().build())
            .with_retriever(RetrieverKind::Ranger)
            .retrieve(&q);
        // Sieve's count is truncated, Ranger's is complete.
        use cachemind_lang::context::Fact;
        let complete = |ctx: &RetrievedContext| {
            ctx.facts.iter().any(|f| matches!(f, Fact::CountValue { complete: true, .. }))
        };
        assert!(!complete(&sieve_ctx) || complete(&ranger_ctx));
        assert!(complete(&ranger_ctx));
    }

    #[test]
    fn exploration_commands_route_to_plans() {
        let m = mind();
        let a = m.ask("List all unique PCs in the mcf trace under LRU.");
        assert!(a.text.contains("0x"), "expected PC list, got {}", a.text);
        assert!(a.prompt.contains("program_counter.unique"), "prompt shows generated code");

        let a = m.ask("Group PCs by reuse-distance variance for the lbm workload under LRU.");
        assert!(a.text.contains("LowVar"), "got {}", a.text);

        let a = m.ask("Identify 5 hot and 5 cold sets by hit rate in astar under Belady.");
        assert!(a.text.contains("Hot Sets"), "got {}", a.text);

        // Non-exploration questions still take the RAG path.
        assert!(m.try_exploration("What is the miss rate of mcf under LRU?").is_none());
    }

    #[test]
    fn k_shot_examples_enter_the_prompt() {
        use cachemind_lang::prompt::Example;
        let m = mind().with_examples(vec![Example::figure6()]);
        let a = m.ask("Does PC 0x999999 hit on lbm under LRU?");
        assert!(a.prompt.contains("EXAMPLE 1:"), "prompt must carry the example");
    }

    #[test]
    fn dense_baseline_is_available() {
        let m = mind().with_retriever(RetrieverKind::Dense);
        let a = m.ask("Does PC 0x401380 hit on mcf under LRU?");
        // The baseline may answer anything, but it must not panic and must
        // label its retriever.
        assert_eq!(a.context.retriever, "dense");
    }

    #[test]
    fn sharded_store_answers_like_the_monolith() {
        let sharded =
            TraceDatabaseBuilder::quick_demo().shards(3).try_build_sharded().expect("valid names");
        let shared = CacheMind::shared(Arc::new(sharded));
        let flat = mind();
        for q in [
            "What is the overall miss rate of the lbm workload under LRU?",
            "Which policy has the lowest miss rate in astar?",
            "Why does Belady outperform LRU in mcf?",
        ] {
            let a = shared.ask(q);
            let b = flat.ask(q);
            assert_eq!(a.text, b.text, "{q}");
            assert_eq!(a.prompt, b.prompt, "{q}");
        }
    }

    #[test]
    fn ask_is_a_thin_wrapper_over_ask_query() {
        // The redesign's compatibility pin: for selector-free queries the
        // typed path answers byte-identically to the legacy string path —
        // text, prompt, verdict and evidence.
        let m = mind().with_retriever(RetrieverKind::Ranger);
        for q in [
            "What is the overall miss rate of the lbm workload under LRU?",
            "Which policy has the lowest miss rate in astar?",
            "List all unique PCs in the mcf trace under LRU.",
            "What is the estimated IPC for mcf under LRU?",
            "Why does Belady outperform LRU in mcf?",
        ] {
            let legacy = m.ask(q);
            let typed = m.ask_query(&Query::new(q));
            assert_eq!(legacy.text, typed.text, "{q}");
            assert_eq!(legacy.prompt, typed.prompt, "{q}");
            assert_eq!(legacy.verdict, typed.verdict, "{q}");
        }
    }

    #[test]
    fn scoped_queries_answer_from_the_selected_machine() {
        use cachemind_sim::config::MachineConfig;

        let db = TraceDatabaseBuilder::quick_demo()
            .workloads(["mcf", "lbm"])
            .policies(["lru", "belady"])
            .machine(MachineConfig::preset("table2").expect("preset"))
            .machine(MachineConfig::preset("small").expect("preset"))
            .build();
        let m = CacheMind::new(db).with_retriever(RetrieverKind::Ranger);
        let q = "What is the estimated IPC for mcf under LRU?";

        let mut cited = Vec::new();
        for machine in ["table2", "small"] {
            let query = Query::scoped(q, ScenarioSelector::all().with_machine(machine));
            let answer = m.ask_query(&query);
            let fact = answer.context.facts.first().expect("IPC fact").render();
            assert!(
                fact.contains(&format!("{machine}@")),
                "{machine}: answer must cite its machine, got {fact}"
            );
            cited.push(fact);
        }
        assert_ne!(cited[0], cited[1], "different machines, different cited facts");

        // The unscoped query still answers from the primary machine.
        let primary = m.ask_query(&Query::new(q));
        let fact = primary.context.facts.first().expect("IPC fact").render();
        let label = m.database().get("mcf_evictions_lru").unwrap().machine.clone();
        assert!(fact.contains(&label), "unscoped answers stay primary: {fact}");
    }

    #[test]
    fn query_options_gate_exploration_routing() {
        let m = mind();
        let q = "List all unique PCs in the mcf trace under LRU.";
        let explored = m.ask_query(&Query::new(q));
        assert!(explored.prompt.contains("program_counter.unique"), "plan runtime");
        let rag = m.ask_query(&Query::new(q).with_options(QueryOptions { explore: false }));
        assert!(!rag.prompt.contains("program_counter.unique"), "forced RAG path");
        assert!(rag.prompt.contains("SYSTEM:"), "RAG prompt rendered");
    }

    #[test]
    fn batched_ask_is_byte_identical_to_serial() {
        let m = mind().with_retriever(RetrieverKind::Ranger);
        let db = m.database();
        let pc = db.get("astar_evictions_lru").unwrap().frame.rows()[0].pc;
        let questions: Vec<String> = vec![
            "What is the overall miss rate of the lbm workload under LRU?".into(),
            format!("How many times did PC {pc} appear in astar under LRU?"),
            "List all unique PCs in the mcf trace under LRU.".into(),
            "Which workload has the highest cache miss rate under Belady?".into(),
            // An exact duplicate: exercises the retrieval memo.
            "What is the overall miss rate of the lbm workload under LRU?".into(),
        ];
        let serial: Vec<Answer> = questions.iter().map(|q| m.ask(q)).collect();
        let batched = m.ask_batch(&questions);
        assert_eq!(serial.len(), batched.len());
        for (s, b) in serial.iter().zip(&batched) {
            assert_eq!(s.text, b.text);
            assert_eq!(s.prompt, b.prompt);
            assert_eq!(s.verdict, b.verdict);
        }
        // The QueryBatch wrapper takes the same path.
        let via_batch: QueryBatch = questions.iter().cloned().collect();
        let again = via_batch.run(&m);
        for (s, b) in serial.iter().zip(&again) {
            assert_eq!(s.text, b.text);
        }
    }
}
