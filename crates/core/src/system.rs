//! The CacheMind system: query-first, retrieval-augmented answering.

use cachemind_lang::context::RetrievedContext;
use cachemind_lang::generator::{Generator, GeneratorAnswer, GeneratorRequest, Verdict};
use cachemind_lang::intent::QueryIntent;
use cachemind_lang::profiles::BackendKind;
use cachemind_lang::prompt::{Example, PromptBuilder};
use cachemind_lang::SimulatedBackend;
use cachemind_retrieval::dense::DenseIndexRetriever;
use cachemind_retrieval::ranger::RangerRetriever;
use cachemind_retrieval::retriever::Retriever;
use cachemind_retrieval::sieve::SieveRetriever;
use cachemind_tracedb::database::TraceDatabase;

/// Which retriever the system routes queries through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrieverKind {
    /// CacheMind-Sieve: symbolic–semantic filtering.
    Sieve,
    /// CacheMind-Ranger: plan generation + execution runtime.
    Ranger,
    /// The dense-embedding baseline (for comparisons).
    Dense,
}

/// A grounded answer: text, verdict and the evidence behind it.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Natural-language answer.
    pub text: String,
    /// Machine-checkable verdict.
    pub verdict: Verdict,
    /// The retrieved context the answer is grounded in.
    pub context: RetrievedContext,
    /// The full prompt that was rendered for the generator.
    pub prompt: String,
}

/// The CacheMind system.
///
/// Owns the trace database, a retriever and a generator backend; turning a
/// natural-language question into a trace-grounded answer is one
/// [`CacheMind::ask`] call.
#[derive(Debug)]
pub struct CacheMind {
    db: TraceDatabase,
    retriever: RetrieverKind,
    backend: SimulatedBackend,
    shots: Vec<Example>,
    sieve: SieveRetriever,
    ranger: RangerRetriever,
    dense: Option<DenseIndexRetriever>,
}

impl CacheMind {
    /// Creates the system over a database with the paper's default
    /// configuration: Sieve retrieval, GPT-4o backend, zero-shot.
    pub fn new(db: TraceDatabase) -> Self {
        CacheMind {
            db,
            retriever: RetrieverKind::Sieve,
            backend: SimulatedBackend::new(BackendKind::Gpt4o),
            shots: Vec::new(),
            sieve: SieveRetriever::new(),
            ranger: RangerRetriever::new(),
            dense: None,
        }
    }

    /// Selects the retriever.
    pub fn with_retriever(mut self, kind: RetrieverKind) -> Self {
        if kind == RetrieverKind::Dense && self.dense.is_none() {
            self.dense = Some(DenseIndexRetriever::build(&self.db, 4));
        }
        self.retriever = kind;
        self
    }

    /// Selects the generator backend.
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend = SimulatedBackend::new(kind);
        self
    }

    /// Enables k-shot prompting with the given examples.
    pub fn with_examples(mut self, examples: Vec<Example>) -> Self {
        self.shots = examples;
        self
    }

    /// The underlying trace database.
    pub fn database(&self) -> &TraceDatabase {
        &self.db
    }

    /// Parses a question against the database vocabulary.
    pub fn parse(&self, question: &str) -> QueryIntent {
        let workloads = self.db.workloads();
        let policies = self.db.policies();
        QueryIntent::parse(
            question,
            &workloads.iter().map(String::as_str).collect::<Vec<_>>(),
            &policies.iter().map(String::as_str).collect::<Vec<_>>(),
        )
    }

    fn active_retriever(&self) -> &dyn Retriever {
        match self.retriever {
            RetrieverKind::Sieve => &self.sieve,
            RetrieverKind::Ranger => &self.ranger,
            RetrieverKind::Dense => {
                self.dense.as_ref().expect("dense index built in with_retriever")
            }
        }
    }

    /// Retrieves the context bundle for a question without generating.
    pub fn retrieve(&self, question: &str) -> RetrievedContext {
        let intent = self.parse(question);
        self.active_retriever().retrieve(&self.db, &intent)
    }

    /// Routes *exploration commands* — the Figure 10–13 chat vocabulary
    /// that goes beyond the eleven benchmark categories — straight to the
    /// Ranger plan runtime: "list all unique PCs", "list unique cache
    /// sets", "group PCs by reuse/ETR variance", "identify hot and cold
    /// sets". Returns `None` when the question is not an exploration
    /// command.
    pub fn try_exploration(&self, question: &str) -> Option<Answer> {
        use cachemind_retrieval::plan::Plan;
        let lower = question.to_lowercase();
        let intent = self.parse(question);
        let workload = intent.workload.clone().or_else(|| self.db.workloads().first().cloned())?;
        let policy = intent.policy.clone().unwrap_or_else(|| "lru".to_owned());

        let plan = if lower.contains("unique pc") || lower.contains("all pcs") {
            Plan::UniquePcs { workload, policy }
        } else if lower.contains("unique cache sets") || lower.contains("unique sets") {
            Plan::UniqueSets { workload, policy }
        } else if (lower.contains("group") || lower.contains("cluster"))
            && lower.contains("variance")
        {
            Plan::GroupPcsByReuseVariance { workload, policy }
        } else if lower.contains("hot") && lower.contains("cold") && lower.contains("set") {
            Plan::HotColdSets { workload, policy }
        } else if lower.contains("per-pc") || lower.contains("per pc table") {
            Plan::PerPcTable { workload, policy, limit: 20 }
        } else {
            return None;
        };

        let facts = plan.run(&self.db).ok()?;
        let context = RetrievedContext {
            facts,
            quality: cachemind_lang::context::ContextQuality::High,
            retriever: "ranger".to_owned(),
        };
        let text = context.render();
        Some(Answer {
            text,
            verdict: Verdict::FreeForm { quality: 5 },
            context,
            prompt: plan.render_code(),
        })
    }

    /// Answers a question: exploration-command routing, then
    /// parse → retrieve → generate.
    pub fn ask(&mut self, question: &str) -> Answer {
        if let Some(answer) = self.try_exploration(question) {
            return answer;
        }
        let intent = self.parse(question);
        let context = self.active_retriever().retrieve(&self.db, &intent);
        let mut builder = PromptBuilder::new();
        for ex in &self.shots {
            builder = builder.example(ex.clone());
        }
        let prompt = builder.render(question, &context);
        let request = GeneratorRequest {
            question: question.to_owned(),
            intent,
            context: context.clone(),
            examples: self.shots.clone(),
        };
        let GeneratorAnswer { text, verdict } = self.backend.answer(&request);
        Answer { text, verdict, context, prompt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_tracedb::TraceDatabaseBuilder;

    fn mind() -> CacheMind {
        CacheMind::new(TraceDatabaseBuilder::quick_demo().build())
    }

    #[test]
    fn ask_produces_grounded_answer() {
        let mut m = mind().with_retriever(RetrieverKind::Ranger);
        let a = m.ask("What is the overall miss rate of the lbm workload under LRU?");
        assert!(matches!(a.verdict, Verdict::Number(_)), "verdict {:?}", a.verdict);
        assert!(!a.context.facts.is_empty());
        assert!(a.prompt.contains("SYSTEM:"));
    }

    #[test]
    fn retriever_switch_changes_evidence() {
        let m = mind();
        let db = m.database();
        let pc = db.get("astar_evictions_lru").unwrap().frame.rows()[0].pc;
        let q = format!("How many times did PC {pc} appear in astar under LRU?");
        let sieve_ctx = m.retrieve(&q);
        let ranger_ctx = CacheMind::new(TraceDatabaseBuilder::quick_demo().build())
            .with_retriever(RetrieverKind::Ranger)
            .retrieve(&q);
        // Sieve's count is truncated, Ranger's is complete.
        use cachemind_lang::context::Fact;
        let complete = |ctx: &RetrievedContext| {
            ctx.facts.iter().any(|f| matches!(f, Fact::CountValue { complete: true, .. }))
        };
        assert!(!complete(&sieve_ctx) || complete(&ranger_ctx));
        assert!(complete(&ranger_ctx));
    }

    #[test]
    fn exploration_commands_route_to_plans() {
        let mut m = mind();
        let a = m.ask("List all unique PCs in the mcf trace under LRU.");
        assert!(a.text.contains("0x"), "expected PC list, got {}", a.text);
        assert!(a.prompt.contains("program_counter.unique"), "prompt shows generated code");

        let a = m.ask("Group PCs by reuse-distance variance for the lbm workload under LRU.");
        assert!(a.text.contains("LowVar"), "got {}", a.text);

        let a = m.ask("Identify 5 hot and 5 cold sets by hit rate in astar under Belady.");
        assert!(a.text.contains("Hot Sets"), "got {}", a.text);

        // Non-exploration questions still take the RAG path.
        assert!(m.try_exploration("What is the miss rate of mcf under LRU?").is_none());
    }

    #[test]
    fn k_shot_examples_enter_the_prompt() {
        use cachemind_lang::prompt::Example;
        let mut m = mind().with_examples(vec![Example::figure6()]);
        let a = m.ask("Does PC 0x999999 hit on lbm under LRU?");
        assert!(a.prompt.contains("EXAMPLE 1:"), "prompt must carry the example");
    }

    #[test]
    fn dense_baseline_is_available() {
        let mut m = mind().with_retriever(RetrieverKind::Dense);
        let a = m.ask("Does PC 0x401380 hit on mcf under LRU?");
        // The baseline may answer anything, but it must not panic and must
        // label its retriever.
        assert_eq!(a.context.retriever, "dense");
    }
}
