//! The whole-answer cache: `(canonical query text, canonical selector,
//! db fingerprint)` → [`Answer`].
//!
//! Answering is a pure function of `(store, question, selector, options)`
//! — the property the serve layer's `answers_fnv64` checksums already
//! prove — so replaying a stored answer is indistinguishable from
//! recomputing it. The cache key captures every input of that function:
//!
//! * **db fingerprint** — a wide-FNV digest over the store's trace keys,
//!   metadata, and row counts (the same [`fnv64_wide`] machinery the
//!   snapshot module uses for segment checksums). Stores are immutable
//!   once built, so the fingerprint identifies the database; a rebuilt or
//!   different database changes the fingerprint and thereby invalidates
//!   every stale entry *by key*, with no explicit flush.
//! * **canonical selector** — the query's
//!   [`ScenarioSelector`](cachemind_sim::scenario::ScenarioSelector) in its
//!   canonical text form (the serve layer canonicalizes preset machine
//!   names before asking, so aliases of one scope share entries).
//! * **options** — the exploration-routing flag.
//! * **question text** — verbatim.
//!
//! Lookups and inserts count into the owning [`MetricsRegistry`] under
//! the `retrieval.cache.*` names, which is how serve's `{"stats":true}`
//! response reports hit rates. The map is sharded eight ways by key hash
//! so concurrent serve workers do not contend on one lock.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use cachemind_obs::{names, Counter, MetricsRegistry};
use cachemind_tracedb::snapshot::fnv64_wide;
use cachemind_tracedb::store::{fnv64, TraceStore};

use crate::system::Answer;

/// Number of independently locked map shards.
const SHARDS: usize = 8;

/// A sharded, metrics-instrumented whole-answer cache (see the module
/// docs for the key anatomy).
#[derive(Debug)]
pub struct AnswerCache {
    shards: [Mutex<HashMap<String, Answer>>; SHARDS],
    fingerprint: OnceLock<u64>,
    hits: Counter,
    misses: Counter,
    inserts: Counter,
}

impl AnswerCache {
    /// An empty cache whose counters register into `metrics` under the
    /// `retrieval.cache.*` names.
    pub fn new(metrics: &MetricsRegistry) -> Self {
        AnswerCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            fingerprint: OnceLock::new(),
            hits: metrics.counter(names::RETRIEVAL_CACHE_HITS),
            misses: metrics.counter(names::RETRIEVAL_CACHE_MISSES),
            inserts: metrics.counter(names::RETRIEVAL_CACHE_INSERTS),
        }
    }

    /// The store fingerprint, computed on first use and memoized: a
    /// [`fnv64_wide`] digest over every trace key, its metadata, and its
    /// row count, in ascending key order. One metadata-level pass — frames
    /// are not rehashed — so the first cached ask stays cheap even on
    /// large stores.
    pub fn fingerprint(&self, db: &dyn TraceStore) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut bytes = Vec::new();
            for entry in db.entries() {
                bytes.extend_from_slice(entry.id.key().as_bytes());
                bytes.push(0);
                bytes.extend_from_slice(entry.metadata.as_bytes());
                bytes.push(0);
                bytes.extend_from_slice(&(entry.frame.rows().len() as u64).to_le_bytes());
            }
            fnv64_wide(&bytes)
        })
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Answer>> {
        &self.shards[(fnv64(key.as_bytes()) % SHARDS as u64) as usize]
    }

    /// Looks up a stored answer, counting a hit or a miss.
    pub fn get(&self, key: &str) -> Option<Answer> {
        let found = self.shard(key).lock().expect("answer cache shard lock").get(key).cloned();
        match &found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        }
        found
    }

    /// Stores an answer, counting the insert. Concurrent inserts under
    /// one key are benign: answering is deterministic, so both writers
    /// store byte-identical values.
    pub fn insert(&self, key: String, answer: Answer) {
        self.shard(&key).lock().expect("answer cache shard lock").insert(key, answer);
        self.inserts.inc();
    }

    /// Number of stored answers across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("answer cache shard lock").len()).sum()
    }

    /// Whether the cache holds no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookups that replayed a stored answer.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Total lookups that fell through to the answering pipeline.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Total answers stored after misses.
    pub fn inserts(&self) -> u64 {
        self.inserts.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{CacheMind, Query, RetrieverKind};
    use cachemind_sim::scenario::ScenarioSelector;
    use cachemind_tracedb::TraceDatabaseBuilder;

    fn mind_with_cache() -> CacheMind {
        // A private registry per test: counter handles are shared by name
        // within a registry, so minds sharing the global registry would
        // see each other's hit/miss counts.
        let registry = cachemind_obs::MetricsRegistry::new();
        CacheMind::new(TraceDatabaseBuilder::quick_demo().build())
            .with_retriever(RetrieverKind::Ranger)
            .with_metrics(&registry)
            .with_answer_cache(true)
    }

    #[test]
    fn repeated_questions_hit_and_replay_identical_answers() {
        let m = mind_with_cache();
        let q = "What is the overall miss rate of the lbm workload under LRU?";
        let first = m.ask(q);
        let cache = m.answer_cache().expect("cache enabled");
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.inserts(), 1);
        assert_eq!(cache.len(), 1);
        let second = m.ask(q);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(first.text, second.text);
        assert_eq!(first.prompt, second.prompt);
        assert_eq!(first.verdict, second.verdict);
    }

    #[test]
    fn distinct_selectors_never_alias() {
        let m = mind_with_cache();
        let q = "What is the estimated IPC for mcf under LRU?";
        m.ask_query(&Query::new(q));
        m.ask_query(&Query::scoped(q, ScenarioSelector::all().with_machine("quick_demo")));
        let cache = m.answer_cache().expect("cache enabled");
        assert_eq!(cache.len(), 2, "scoped and unscoped queries use distinct keys");
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn cached_answers_match_uncached_byte_for_byte() {
        let cached = mind_with_cache();
        let plain = CacheMind::new(TraceDatabaseBuilder::quick_demo().build())
            .with_retriever(RetrieverKind::Ranger);
        let questions = [
            "What is the overall miss rate of the lbm workload under LRU?",
            "Which policy gives the highest IPC on mcf?",
            "List all unique PCs in the mcf trace under LRU.",
            "What is the overall miss rate of the lbm workload under LRU?",
        ];
        for q in questions {
            let a = cached.ask(q);
            let b = plain.ask(q);
            assert_eq!(a.text, b.text, "{q}");
            assert_eq!(a.prompt, b.prompt, "{q}");
            assert_eq!(a.verdict, b.verdict, "{q}");
        }
        assert_eq!(cached.answer_cache().unwrap().hits(), 1, "the duplicate hit");
    }

    #[test]
    fn fingerprint_distinguishes_databases() {
        let registry = cachemind_obs::MetricsRegistry::new();
        let cache = AnswerCache::new(&registry);
        let a = TraceDatabaseBuilder::quick_demo().build();
        let fp_a = cache.fingerprint(&a);
        assert_eq!(cache.fingerprint(&a), fp_a, "memoized and stable");

        let other = AnswerCache::new(&registry);
        let b = TraceDatabaseBuilder::quick_demo().workloads(["mcf"]).build();
        assert_ne!(other.fingerprint(&b), fp_a, "different stores, different fingerprints");
    }

    #[test]
    fn batch_path_shares_the_cache() {
        let m = mind_with_cache();
        let questions: Vec<String> = vec![
            "What is the overall miss rate of the lbm workload under LRU?".into(),
            "Which policy has the lowest miss rate in astar?".into(),
        ];
        let first = m.ask_batch(&questions);
        let cache = m.answer_cache().expect("cache enabled");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.inserts(), 2);
        let second = m.ask_batch(&questions);
        assert_eq!(cache.hits(), 2, "second round replays both answers");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.text, b.text);
            assert_eq!(a.prompt, b.prompt);
        }
    }
}
