//! The assistive chat layer: CacheMind plus conversation memory.
//!
//! "We augmented the Generator LLM with conversation memory buffer, turning
//! it into an assistive chat tool" (§1). Sessions retain intermediate
//! results so multi-turn analyses — the Figure 10–13 insight transcripts —
//! can build on earlier answers.

use cachemind_lang::memory::{ConversationMemory, Role};

use crate::system::{Answer, CacheMind, Query};

/// A multi-turn chat session over one CacheMind instance.
#[derive(Debug)]
pub struct ChatSession {
    mind: CacheMind,
    memory: ConversationMemory,
    transcript: Vec<(String, String)>,
}

impl ChatSession {
    /// Starts a session keeping the last 8 turns verbatim.
    pub fn new(mind: CacheMind) -> Self {
        ChatSession { mind, memory: ConversationMemory::new(8), transcript: Vec::new() }
    }

    /// The underlying system.
    pub fn mind(&self) -> &CacheMind {
        &self.mind
    }

    /// Asks a question within the session; the turn is recorded in memory
    /// and the transcript.
    pub fn ask(&mut self, question: &str) -> Answer {
        self.ask_query(&Query::new(question))
    }

    /// Asks a typed, scenario-scoped query within the session — the
    /// scoped form of [`ChatSession::ask`]; the turn is recorded in memory
    /// and the transcript.
    pub fn ask_query(&mut self, query: &Query) -> Answer {
        self.memory.push(Role::User, &query.text);
        let answer = self.mind.ask_query(query);
        self.memory.push(Role::Assistant, &answer.text);
        self.transcript.push((query.text.clone(), answer.text.clone()));
        answer
    }

    /// Records an out-of-band analysis step (the insight modules execute
    /// plans directly but still log chat-style turns, as in the paper's
    /// condensed transcripts).
    pub fn log(&mut self, question: &str, response: &str) {
        self.memory.push(Role::User, question);
        self.memory.push(Role::Assistant, response);
        self.transcript.push((question.to_owned(), response.to_owned()));
    }

    /// Recalls past turns relevant to `query` from vector memory.
    pub fn recall(&self, query: &str, k: usize) -> Vec<String> {
        self.memory.recall(query, k)
    }

    /// The full `(question, answer)` transcript.
    pub fn transcript(&self) -> &[(String, String)] {
        &self.transcript
    }

    /// Renders the transcript in the paper's condensed format
    /// (Figures 10–13).
    pub fn render_transcript(&self) -> String {
        let mut out = String::new();
        for (q, a) in &self.transcript {
            out.push_str(&format!("User: {q}\nAssistant: {a}\n\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::RetrieverKind;
    use cachemind_tracedb::TraceDatabaseBuilder;

    #[test]
    fn session_accumulates_transcript_and_memory() {
        let mind = CacheMind::new(TraceDatabaseBuilder::quick_demo().build())
            .with_retriever(RetrieverKind::Ranger);
        let mut chat = ChatSession::new(mind);
        chat.ask("What is the overall miss rate of the mcf workload under LRU?");
        chat.log("List all unique PCs in the trace.", "0x401380, 0x401384, ...");
        assert_eq!(chat.transcript().len(), 2);
        let recalled = chat.recall("unique PCs", 1);
        assert!(recalled[0].contains("unique PCs"));
        let rendered = chat.render_transcript();
        assert!(rendered.contains("User: List all unique PCs"));
    }
}
