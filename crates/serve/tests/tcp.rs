//! The TCP transport, pinned end to end — the in-process form of CI's
//! TCP smoke:
//!
//! * a snapshot-started server answers the socket-mode load driver
//!   byte-identically to the in-process stdin driver, for any worker
//!   count (`answers_fnv64` and the whole deterministic report agree);
//! * the full v1/v2 protocol (open / ask / stats / close) works over a
//!   raw socket, malformed lines answer in-band without tearing the
//!   connection down, and stats responses carry their transport and
//!   connection context;
//! * admission control answers `overloaded` in-band — a full connection
//!   table refuses new sockets with a protocol line, a full work queue
//!   refuses lines without dropping any, and both recover cleanly;
//! * graceful shutdown drains every in-flight line before the server
//!   exits — nothing is silently dropped;
//! * per-connection sessions are reaped on disconnect under
//!   `--session-scope conn` and survive it under `global`;
//! * after identical drives, the server's in-band stats equal the
//!   stdin engine's — one registry, whatever the transport.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cachemind_serve::engine::{ServeConfig, ServeEngine};
use cachemind_serve::load::{run_load_driver, run_load_driver_tcp, LoadSpec};
use cachemind_serve::net::{self, NetConfig, SessionScope, TcpServer};
use cachemind_tracedb::TraceDatabaseBuilder;
use serde_json::Value;

const QUESTION: &str = "What is the overall miss rate of the mcf workload under LRU?";

fn engine(threads: usize) -> ServeEngine {
    let config = ServeConfig { threads: Some(threads), shards: 3, ..Default::default() };
    let db = TraceDatabaseBuilder::quick_demo()
        .shards(config.shards)
        .try_build_sharded()
        .expect("demo build");
    ServeEngine::over(db, config)
}

fn start_server(threads: usize, config: NetConfig) -> TcpServer {
    TcpServer::start(Arc::new(engine(threads)), "127.0.0.1:0", config).expect("bind ephemeral")
}

/// A raw newline-JSON protocol client over one socket.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone read half"));
        Client { writer, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write line");
        self.writer.flush().expect("flush line");
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed while a response was expected");
        serde_json::from_str(line.trim()).expect("responses are valid JSON")
    }

    fn round_trip(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }

    fn ask(&mut self, session: u64) -> Value {
        self.round_trip(&format!("{{\"question\": \"{QUESTION}\", \"session\": {session}}}"))
    }
}

fn field<'a>(value: &'a Value, path: &[&str]) -> &'a Value {
    let mut current = value;
    for key in path {
        current = current.get(key).unwrap_or_else(|| panic!("missing {path:?} at {key}"));
    }
    current
}

fn count(value: &Value, path: &[&str]) -> u64 {
    field(value, path).as_u64().unwrap_or_else(|| panic!("{path:?} is not a u64"))
}

fn text<'a>(value: &'a Value, path: &[&str]) -> &'a str {
    field(value, path).as_str().unwrap_or_else(|| panic!("{path:?} is not a string"))
}

/// On the wire, success is the absence of the uniform error shape.
fn is_ok(value: &Value) -> bool {
    value.get("error_kind").is_none() && value.get("error").is_none()
}

fn temp_snapshot(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cachemind_{}_{}.snap", name, std::process::id()))
}

/// The aggregate answer digest a deterministic report pins.
fn answers_fnv64(report: &str) -> &str {
    let marker = "\"answers_fnv64\": \"";
    let start = report.find(marker).expect("report carries answers_fnv64") + marker.len();
    let end = report[start..].find('"').expect("digest is quoted");
    &report[start..start + end]
}

/// Polls a condition that a background teardown thread satisfies shortly
/// after a disconnect.
fn eventually(what: &str, mut check: impl FnMut() -> bool) {
    for _ in 0..200 {
        if check() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn tcp_driver_matches_stdin_byte_for_byte_across_worker_counts() {
    // Snapshot-started servers, exactly like CI's `--db-path` smoke.
    let path = temp_snapshot("tcp_identity");
    let db = TraceDatabaseBuilder::quick_demo().shards(3).try_build_sharded().expect("demo build");
    db.save(&path).expect("save snapshot");

    let spec = LoadSpec { sessions: 4, questions: 3, scenarios: vec![], repeat_period: 0 };
    let config = ServeConfig { threads: Some(1), shards: 3, ..Default::default() };
    let local = ServeEngine::from_snapshot(&path, config.clone()).expect("snapshot loads");
    let reference_outcome = run_load_driver(&local, spec.clone());
    assert_eq!(reference_outcome.errors(), 0);
    let reference = reference_outcome.render(&local, false);

    for threads in [1usize, 2, 8] {
        let served = ServeEngine::from_snapshot(
            &path,
            ServeConfig { threads: Some(threads), ..config.clone() },
        )
        .expect("snapshot loads");
        let server = TcpServer::start(Arc::new(served), "127.0.0.1:0", NetConfig::default())
            .expect("bind ephemeral");
        let outcome =
            run_load_driver_tcp(&local, spec.clone(), server.local_addr()).expect("tcp drive");
        assert_eq!(outcome.errors(), 0, "{threads} workers");
        let report = outcome.render(&local, false);
        assert_eq!(
            answers_fnv64(&report),
            answers_fnv64(&reference),
            "answer digest diverged from the stdin drive at {threads} workers"
        );
        assert_eq!(
            report, reference,
            "tcp deterministic report diverged from stdin at {threads} workers"
        );
        // The transport shows up in the timing block only — the full
        // render says tcp, the deterministic half says nothing.
        let full = outcome.render(&local, true);
        assert!(full.contains("\"transport\": \"tcp\""), "{full}");
        assert!(!report.contains("transport"), "{report}");
        server.shutdown();
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn full_protocol_works_over_a_raw_socket() {
    let server = start_server(2, NetConfig::default());
    let mut client = Client::connect(server.local_addr());

    // v2 lifecycle: explicit open, ask in session, close.
    let opened = client.round_trip("{\"open\": true}");
    assert!(is_ok(&opened), "{opened:?}");
    let session = count(&opened, &["session"]);
    let answer = client.ask(session);
    assert!(is_ok(&answer), "{answer:?}");
    assert!(!text(&answer, &["answer"]).is_empty(), "{answer:?}");

    // A malformed line answers in-band and leaves the connection alive.
    let garbage = client.round_trip("this is not json");
    assert_eq!(text(&garbage, &["error_kind"]), "invalid_json", "{garbage:?}");
    let after = client.ask(session);
    assert!(is_ok(&after), "the connection survived the bad line: {after:?}");

    // Stats answer in-band, tagged with the transport and the asking
    // connection's identity.
    let stats = client.round_trip("{\"stats\": true}");
    assert_eq!(text(&stats, &["transport"]), "tcp", "{stats:?}");
    assert!(field(&stats, &["connection", "id"]).as_u64().is_some(), "{stats:?}");
    assert!(field(&stats, &["connection", "peer"]).as_str().is_some(), "{stats:?}");
    assert_eq!(count(&stats, &["errors", "by_kind", "invalid_json"]), 1, "{stats:?}");

    let closed = client.round_trip(&format!("{{\"close\": true, \"session\": {session}}}"));
    assert!(is_ok(&closed), "{closed:?}");
    server.shutdown();
}

#[test]
fn full_connection_table_refuses_in_band_and_recovers() {
    let server = start_server(1, NetConfig { max_connections: 1, ..NetConfig::default() });
    let addr = server.local_addr();

    let mut admitted = Client::connect(addr);
    let opened = admitted.round_trip("{\"open\": true}");
    assert!(is_ok(&opened), "{opened:?}");

    // The second socket is answered — not silently dropped — with the
    // uniform overloaded error, then closed.
    let mut refused = TcpStream::connect(addr).expect("connect over the limit");
    let mut rejection = String::new();
    refused.read_to_string(&mut rejection).expect("read rejection");
    let rejection: Value =
        serde_json::from_str(rejection.trim()).expect("rejections are protocol lines");
    assert!(!is_ok(&rejection), "{rejection:?}");
    assert_eq!(text(&rejection, &["error_kind"]), "overloaded", "{rejection:?}");

    // The admitted connection never noticed.
    let still = admitted.round_trip("{\"stats\": true}");
    assert_eq!(text(&still, &["transport"]), "tcp", "{still:?}");
    assert_eq!(count(&still, &["metrics", "counters", "serve.net.connections_rejected"]), 1);

    // Freeing the slot restores admission.
    drop(admitted);
    eventually("the connection slot to free", || server.connection_count() == 0);
    let mut next = Client::connect(addr);
    let welcome = next.round_trip("{\"open\": true}");
    assert!(is_ok(&welcome), "admission recovered: {welcome:?}");
    server.shutdown();
}

#[test]
fn overloaded_queue_answers_every_line_in_band() {
    // One worker and a two-slot queue under a 200-line burst: some lines
    // answer ok, some answer overloaded, every single one answers.
    let server = start_server(1, NetConfig { queue_capacity: 2, ..NetConfig::default() });
    let mut client = Client::connect(server.local_addr());

    const BURST: usize = 200;
    let mut burst = String::new();
    for _ in 0..BURST {
        burst.push_str("{\"stats\": true}\n");
    }
    client.writer.write_all(burst.as_bytes()).expect("write burst");
    client.writer.flush().expect("flush burst");

    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for _ in 0..BURST {
        let response = client.recv();
        match response.get("error_kind").and_then(Value::as_str) {
            Some("overloaded") => overloaded += 1,
            Some(kind) => panic!("unexpected error kind {kind} in {response:?}"),
            None => {
                assert!(response.get("stats_version").is_some(), "{response:?}");
                ok += 1;
            }
        }
    }
    assert_eq!(ok + overloaded, BURST, "every line answered exactly once");

    // The connection recovers: the next line answers normally.
    let after = client.round_trip("{\"stats\": true}");
    assert!(after.get("stats_version").is_some(), "clean recovery after overload: {after:?}");
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_in_flight_line() {
    let server = start_server(2, NetConfig::default());
    let mut client = Client::connect(server.local_addr());

    // A burst of asks with the shutdown request riding last: the server
    // must answer all of them, ack the shutdown, then close and exit.
    const ASKS: usize = 20;
    let mut burst = String::new();
    for _ in 0..ASKS {
        burst.push_str(&format!("{{\"question\": \"{QUESTION}\"}}\n"));
    }
    burst.push_str("{\"shutdown\": true}\n");
    client.writer.write_all(burst.as_bytes()).expect("write burst");
    client.writer.flush().expect("flush burst");

    let mut answers = 0usize;
    let mut acked = false;
    for _ in 0..ASKS + 1 {
        let response = client.recv();
        if response.get("shutdown").and_then(Value::as_bool) == Some(true) {
            acked = true;
        } else {
            assert!(is_ok(&response), "{response:?}");
            answers += 1;
        }
    }
    assert_eq!(answers, ASKS, "every in-flight ask drained before exit");
    assert!(acked, "the shutdown request was acknowledged in-band");

    // The socket now reads EOF and the server side has fully stopped.
    let mut rest = String::new();
    client.reader.read_to_string(&mut rest).expect("drain to EOF");
    assert!(rest.trim().is_empty(), "nothing after the drain: {rest:?}");
    server.wait();
}

#[test]
fn send_shutdown_stops_a_server_remotely() {
    let server = start_server(1, NetConfig::default());
    let ack = net::send_shutdown(server.local_addr()).expect("shutdown round-trip");
    assert_eq!(ack, "{\"shutdown\":true}");
    server.wait();
}

#[test]
fn conn_scope_reaps_sessions_and_global_scope_keeps_them() {
    // conn scope: the sessions a connection opened die with it.
    let server =
        start_server(2, NetConfig { session_scope: SessionScope::Conn, ..NetConfig::default() });
    let mut client = Client::connect(server.local_addr());
    for _ in 0..3 {
        let opened = client.round_trip("{\"open\": true}");
        assert!(is_ok(&opened), "{opened:?}");
    }
    assert_eq!(server.engine().session_count(), 3);
    drop(client);
    eventually("conn-scoped sessions to be reaped", || server.engine().session_count() == 0);
    server.shutdown();

    // global scope: sessions outlive the connection and stay usable
    // from another one.
    let server =
        start_server(2, NetConfig { session_scope: SessionScope::Global, ..NetConfig::default() });
    let mut first = Client::connect(server.local_addr());
    let opened = first.round_trip("{\"open\": true}");
    let session = count(&opened, &["session"]);
    drop(first);
    eventually("the first connection to tear down", || server.connection_count() == 0);
    assert_eq!(server.engine().session_count(), 1, "global sessions survive disconnect");

    let mut second = Client::connect(server.local_addr());
    let answer = second.ask(session);
    assert!(is_ok(&answer), "the session answers from a new socket: {answer:?}");
    server.shutdown();
}

#[test]
fn tcp_and_stdin_drives_land_in_the_same_stats_registry() {
    // Identical drives, one per transport; global scope so no reaper
    // skews the session gauges. The request/error/session stats must
    // agree exactly — it is one engine registry either way.
    let spec = LoadSpec { sessions: 4, questions: 3, scenarios: vec![], repeat_period: 0 };

    let stdin_engine = engine(2);
    let stdin_outcome = run_load_driver(&stdin_engine, spec.clone());
    assert_eq!(stdin_outcome.errors(), 0);
    let stdin_stats = stdin_engine.stats_value();

    let server =
        start_server(2, NetConfig { session_scope: SessionScope::Global, ..NetConfig::default() });
    let driver = engine(2);
    let tcp_outcome = run_load_driver_tcp(&driver, spec, server.local_addr()).expect("tcp drive");
    assert_eq!(tcp_outcome.errors(), 0);

    // Read the server's stats the way any client would: in-band over the
    // socket. The response reflects the drive and never counts itself.
    let mut client = Client::connect(server.local_addr());
    let tcp_stats = client.round_trip("{\"stats\": true}");
    for section in ["errors", "sessions"] {
        assert_eq!(
            field(&tcp_stats, &[section]),
            field(&stdin_stats, &[section]),
            "the {section} stats diverged between transports"
        );
    }
    // The one legitimate request-mix difference: the socket driver opens
    // its sessions with explicit protocol requests, the in-process one
    // through the engine API. Asks agree exactly; opens match the
    // sessions opened.
    assert_eq!(
        count(&tcp_stats, &["requests", "ask"]),
        count(&stdin_stats, &["requests", "ask"]),
        "ask counts diverged between transports"
    );
    assert_eq!(
        count(&tcp_stats, &["requests", "open"]),
        count(&tcp_stats, &["sessions", "opened"]),
        "one open request per opened session"
    );
    assert_eq!(text(&tcp_stats, &["transport"]), "tcp");
    server.shutdown();
}
