//! The whole-answer cache must be invisible in answer bytes.
//!
//! The cache's contract is *pure memoization*: with the same database and
//! the same question stream, a cache-on engine and a cache-off engine
//! produce byte-identical deterministic reports — at every thread count,
//! and under a repeated-question mix that actually drives cache hits. If
//! a cached answer ever leaks a stale or scope-confused byte, these
//! tests catch it before the throughput numbers can be trusted.

use cachemind_obs::names::{RETRIEVAL_CACHE_HITS, RETRIEVAL_CACHE_INSERTS};
use cachemind_serve::engine::{ServeConfig, ServeEngine};
use cachemind_serve::load::{run_load_driver, LoadSpec};
use cachemind_tracedb::TraceDatabaseBuilder;

fn engine(threads: usize, answer_cache: bool) -> ServeEngine {
    let config =
        ServeConfig { threads: Some(threads), shards: 3, answer_cache, ..Default::default() };
    let db = TraceDatabaseBuilder::quick_demo()
        .shards(config.shards)
        .try_build_sharded()
        .expect("demo build");
    ServeEngine::over(db, config)
}

/// Drives the spec against a cache-on and a cache-off engine and returns
/// the two deterministic reports.
fn drive_pair(threads: usize, spec: &LoadSpec) -> (String, String) {
    let on = engine(threads, true);
    let on_outcome = run_load_driver(&on, spec.clone());
    let off = engine(threads, false);
    let off_outcome = run_load_driver(&off, spec.clone());

    // The cache-on run actually cached: the repeated-question mix must
    // produce hits, otherwise this test proves nothing.
    let snap = on.metrics().snapshot();
    assert!(
        snap.counter(RETRIEVAL_CACHE_INSERTS) > 0,
        "cache-on run never inserted (threads={threads})"
    );
    if spec.repeat_period > 0 {
        assert!(
            snap.counter(RETRIEVAL_CACHE_HITS) > 0,
            "repeated-question mix never hit the cache (threads={threads})"
        );
    }
    let off_snap = off.metrics().snapshot();
    assert_eq!(
        off_snap.counter(RETRIEVAL_CACHE_INSERTS),
        0,
        "cache-off engine must not touch the cache"
    );

    (on_outcome.render(&on, false), off_outcome.render(&off, false))
}

#[test]
fn cache_on_and_cache_off_reports_are_byte_identical_across_thread_counts() {
    let spec = LoadSpec { sessions: 3, questions: 6, scenarios: vec![], repeat_period: 3 };
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        let (on, off) = drive_pair(threads, &spec);
        assert_eq!(on, off, "cache changed a deterministic byte at threads={threads}");
        reports.push(on);
    }
    // And the report is thread-count invariant, so all six runs (3 thread
    // counts x cache on/off) produced the same bytes.
    assert_eq!(reports[0], reports[1], "threads=1 vs threads=2");
    assert_eq!(reports[1], reports[2], "threads=2 vs threads=8");
}

#[test]
fn unrepeated_mix_is_also_cache_invariant() {
    // Even without repeats (every question unique -> all misses), the
    // cache's insert path must not perturb answers.
    let spec = LoadSpec { sessions: 2, questions: 4, scenarios: vec![], repeat_period: 0 };
    let (on, off) = drive_pair(2, &spec);
    assert_eq!(on, off, "insert-only cache traffic changed a deterministic byte");
}
