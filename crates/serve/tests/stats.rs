//! The in-band telemetry contract, pinned end to end:
//!
//! * after a load-driver run, the engine's stats counters equal the
//!   driver's own question/error totals exactly — including the
//!   `serve.ask` latency histogram's sample count;
//! * a `{"stats": true}` line answers in-band with the versioned stats
//!   object, and never counts itself (the response after driving N
//!   requests reports exactly N);
//! * protocol failures land in per-`error_kind` counters that sum to
//!   `errors.total`;
//! * metrics stay out of the deterministic report: driving load with
//!   metrics on changes no deterministic byte.

use cachemind_serve::engine::{ServeConfig, ServeEngine};
use cachemind_serve::load::{run_load_driver, LoadSpec};
use cachemind_serve::protocol::{AskRequest, Request};
use cachemind_tracedb::TraceDatabaseBuilder;
use serde_json::Value;

fn engine(threads: usize) -> ServeEngine {
    let config = ServeConfig { threads: Some(threads), shards: 3, ..Default::default() };
    let db = TraceDatabaseBuilder::quick_demo()
        .shards(config.shards)
        .try_build_sharded()
        .expect("demo build");
    ServeEngine::over(db, config)
}

fn field<'a>(value: &'a Value, path: &[&str]) -> &'a Value {
    let mut current = value;
    for key in path {
        current = current.get(key).unwrap_or_else(|| panic!("missing {path:?} at {key}"));
    }
    current
}

fn count(value: &Value, path: &[&str]) -> u64 {
    field(value, path).as_u64().unwrap_or_else(|| panic!("{path:?} is not a u64"))
}

#[test]
fn stats_counters_match_the_load_driver_totals() {
    let engine = engine(4);
    let spec = LoadSpec { sessions: 4, questions: 3, scenarios: vec![], repeat_period: 0 };
    let outcome = run_load_driver(&engine, spec);
    let driven = (outcome.answered() + outcome.errors()) as u64;
    assert_eq!(driven, 12, "4 sessions x 3 questions");

    let stats = engine.stats_value();
    assert_eq!(count(&stats, &["stats_version"]), 2);
    assert_eq!(count(&stats, &["requests", "ask"]), driven, "ask counter == driven questions");
    assert_eq!(count(&stats, &["requests", "total"]), driven, "nothing else was requested");
    assert_eq!(count(&stats, &["errors", "total"]), outcome.errors() as u64);
    assert_eq!(count(&stats, &["sessions", "opened"]), 4);
    assert_eq!(count(&stats, &["sessions", "open"]), 4, "driver leaves its sessions open");
    assert_eq!(count(&stats, &["sessions", "closed"]), 0);

    // The per-request latency histogram saw exactly one sample per driven
    // question, and its per-stage siblings were populated by the drive.
    let ask = field(&stats, &["metrics", "histograms", "serve.ask"]);
    assert_eq!(count(ask, &["count"]), driven, "one ask-latency sample per question");
    let rounds = field(&stats, &["metrics", "histograms", "serve.round"]);
    assert_eq!(count(rounds, &["count"]), 3, "one round span per turn");
    let drive = field(&stats, &["metrics", "histograms", "serve.load_drive"]);
    assert_eq!(count(drive, &["count"]), 1, "one span for the whole drive");
    assert_eq!(count(&stats, &["metrics", "version"]), 1, "snapshot schema is versioned");
}

#[test]
fn stats_requests_answer_in_band_and_never_count_themselves() {
    let engine = engine(2);
    let response = engine.handle(&AskRequest::new(
        "What is the overall miss rate of the mcf \
                                                   workload under LRU?",
    ));
    assert!(response.is_ok());

    // First stats response: 1 ask, 0 stats — the read does not count
    // itself.
    let first = engine.handle_request(&Request::Stats);
    let first = match first {
        cachemind_serve::protocol::Response::Stats(value) => value,
        other => panic!("stats must answer with a stats object, got {other:?}"),
    };
    assert_eq!(count(&first, &["requests", "ask"]), 1);
    assert_eq!(count(&first, &["requests", "stats"]), 0, "the response never counts itself");
    assert_eq!(count(&first, &["requests", "total"]), 1);

    // Second stats response sees the first one.
    let line = engine.handle_line("{\"stats\": true}", true);
    let second = serde_json::from_str(&line).expect("stats lines are valid JSON");
    assert_eq!(count(&second, &["requests", "stats"]), 1);
    assert_eq!(count(&second, &["requests", "total"]), 2);
}

#[test]
fn protocol_failures_land_in_per_kind_error_counters() {
    let engine = engine(2);
    // One malformed line, one structurally-bad request, two unknown
    // sessions through different paths.
    let garbage = engine.handle_line("this is not json", true);
    assert!(garbage.contains("\"error\""), "{garbage}");
    let bad = engine.handle_line("{\"stats\": false}", true);
    assert!(bad.contains("\"error\""), "{bad}");
    let _ = engine.handle_line("{\"question\": \"hi\", \"session\": 999}", true);
    let _ = engine.handle_line("{\"close\": true, \"session\": 998}", true);

    let stats = engine.stats_value();
    assert_eq!(count(&stats, &["errors", "by_kind", "invalid_json"]), 1);
    assert_eq!(count(&stats, &["errors", "by_kind", "bad_request"]), 1);
    assert_eq!(count(&stats, &["errors", "by_kind", "unknown_session"]), 2);
    assert_eq!(count(&stats, &["errors", "total"]), 4, "by_kind sums to the total");
    // The failed close still counted as a close request; the failed ask as
    // an ask. Parse failures never reach dispatch, so they count nowhere.
    assert_eq!(count(&stats, &["requests", "ask"]), 1);
    assert_eq!(count(&stats, &["requests", "close"]), 1);
    assert_eq!(count(&stats, &["requests", "total"]), 2);
}

#[test]
fn metrics_never_perturb_the_deterministic_report() {
    // Drive two identical loads — one on an engine whose metrics were
    // pre-warmed with extra traffic — and require byte-identical
    // deterministic reports: telemetry is a wall-clock side channel only.
    let spec = LoadSpec { sessions: 3, questions: 2, scenarios: vec![], repeat_period: 0 };
    let quiet = engine(2);
    let quiet_outcome = run_load_driver(&quiet, spec.clone());

    let noisy = engine(2);
    let _ = noisy.handle_line("not json at all", true);
    let _ = noisy.handle_line("{\"stats\": true}", true);
    let noisy_outcome = run_load_driver(&noisy, spec);
    // The warm-up asked nothing, so both drives see identical session ids
    // and identical questions.
    assert_eq!(
        quiet_outcome.render(&quiet, false),
        noisy_outcome.render(&noisy, false),
        "metrics traffic must not change a deterministic byte"
    );
    // But the full report carries the divergent metrics snapshot.
    let noisy_full = noisy_outcome.render(&noisy, true);
    assert!(noisy_full.contains("\"serve.errors.invalid_json\": 1"), "{noisy_full}");
}
