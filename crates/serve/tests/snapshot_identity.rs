//! Snapshot-serving byte-identity, pinned end to end — the in-process
//! form of CI's serve smoke:
//!
//! * an engine started from an on-disk snapshot (`--db-path`) answers the
//!   v1 load driver byte-identically to an engine over the freshly-built
//!   database, for any worker count (`answers_fnv64` and the whole
//!   deterministic report agree);
//! * the same holds for the v2 scenario-pinned driver over a
//!   machine-qualified build — per-machine citations included.

use std::path::PathBuf;

use cachemind_core::system::RetrieverKind;
use cachemind_serve::engine::{build_database, ServeConfig, ServeEngine};
use cachemind_serve::load::{run_load_driver, LoadSpec};
use cachemind_tracedb::{ScenarioSelector, TraceDatabaseBuilder};

fn temp_snapshot(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cachemind_{}_{}.snap", name, std::process::id()))
}

/// The aggregate answer digest a deterministic report pins.
fn answers_fnv64(report: &str) -> &str {
    let marker = "\"answers_fnv64\": \"";
    let start = report.find(marker).expect("report carries answers_fnv64") + marker.len();
    let end = report[start..].find('"').expect("digest is quoted");
    &report[start..start + end]
}

#[test]
fn snapshot_served_v1_driver_matches_fresh_build_across_worker_counts() {
    let path = temp_snapshot("identity_v1");
    let db = TraceDatabaseBuilder::quick_demo().shards(3).try_build_sharded().expect("demo build");
    db.save(&path).expect("save snapshot");

    let spec = LoadSpec { sessions: 5, questions: 3, scenarios: vec![], repeat_period: 0 };
    let config = ServeConfig { threads: Some(1), shards: 3, ..Default::default() };
    let fresh = ServeEngine::over(db, config.clone());
    let reference_outcome = run_load_driver(&fresh, spec.clone());
    let reference = reference_outcome.render(&fresh, false);

    for threads in [1usize, 2, 8] {
        let engine = ServeEngine::from_snapshot(
            &path,
            ServeConfig { threads: Some(threads), ..config.clone() },
        )
        .expect("snapshot loads");
        let outcome = run_load_driver(&engine, spec.clone());
        assert_eq!(outcome.errors(), 0, "{threads} workers");
        let report = outcome.render(&engine, false);
        assert_eq!(
            answers_fnv64(&report),
            answers_fnv64(&reference),
            "answer digest diverged from the fresh build at {threads} workers"
        );
        assert_eq!(
            report, reference,
            "snapshot-served deterministic report diverged at {threads} workers"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_served_v2_driver_matches_fresh_build_across_worker_counts() {
    let config = ServeConfig {
        threads: Some(1),
        shards: 3,
        retriever: RetrieverKind::Ranger,
        machines: vec!["table2".into(), "small".into()],
        ..Default::default()
    };
    let path = temp_snapshot("identity_v2");
    let db = build_database(&config).expect("qualified build");
    db.save(&path).expect("save snapshot");

    let spec = LoadSpec {
        sessions: 2,
        questions: 4,
        scenarios: vec![
            ScenarioSelector::all().with_machine("table2"),
            ScenarioSelector::all().with_machine("small"),
        ],
        repeat_period: 0,
    };
    let fresh = ServeEngine::over(db, config.clone());
    let reference_outcome = run_load_driver(&fresh, spec.clone());
    assert_eq!(reference_outcome.errors(), 0);
    let reference = reference_outcome.render(&fresh, false);
    // The scenario path actually exercised per-machine grounding.
    assert!(reference.contains("\"machine\": \"table2@"), "{reference}");
    assert!(reference.contains("\"machine\": \"small@"), "{reference}");

    for threads in [1usize, 2, 8] {
        let engine = ServeEngine::from_snapshot(
            &path,
            ServeConfig { threads: Some(threads), ..config.clone() },
        )
        .expect("snapshot loads");
        let outcome = run_load_driver(&engine, spec.clone());
        assert_eq!(outcome.errors(), 0, "{threads} workers");
        let report = outcome.render(&engine, false);
        assert_eq!(
            answers_fnv64(&report),
            answers_fnv64(&reference),
            "v2 answer digest diverged from the fresh build at {threads} workers"
        );
        assert_eq!(
            report, reference,
            "snapshot-served v2 deterministic report diverged at {threads} workers"
        );
    }
    std::fs::remove_file(&path).ok();
}
