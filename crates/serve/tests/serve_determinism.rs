//! Serving determinism and isolation, pinned end to end:
//!
//! * the batched multi-session path produces byte-identical answers to a
//!   serial one-at-a-time replay, for any worker count;
//! * the load driver's deterministic report is byte-identical across
//!   `SERVE_NUM_THREADS` equivalents (explicit thread counts, so the tests
//!   stay parallel-safe without mutating the environment);
//! * one session's conversation memory never leaks into another session's
//!   prompt or recall.

use cachemind_core::system::{CacheMind, RetrieverKind};
use cachemind_serve::engine::{ServeConfig, ServeEngine};
use cachemind_serve::load::{run_load_driver, synthetic_question, LoadSpec};
use cachemind_serve::protocol::AskRequest;
use cachemind_tracedb::store::TraceStore;
use cachemind_tracedb::{ScenarioSelector, TraceDatabaseBuilder};

fn engine_with(threads: usize, retriever: RetrieverKind) -> ServeEngine {
    let config = ServeConfig { threads: Some(threads), shards: 3, retriever, ..Default::default() };
    let db = TraceDatabaseBuilder::quick_demo()
        .shards(config.shards)
        .try_build_sharded()
        .expect("demo build");
    ServeEngine::over(db, config)
}

#[test]
fn load_driver_is_byte_identical_across_worker_counts() {
    let spec = LoadSpec { sessions: 5, questions: 3, scenarios: vec![], repeat_period: 0 };
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        let engine = engine_with(threads, RetrieverKind::Sieve);
        let outcome = run_load_driver(&engine, spec.clone());
        reports.push((threads, outcome.render(&engine, false)));
    }
    let (_, reference) = &reports[0];
    for (threads, report) in &reports[1..] {
        assert_eq!(
            report, reference,
            "deterministic load report diverged between 1 and {threads} workers"
        );
    }
}

#[test]
fn batched_rounds_match_serial_replay() {
    let spec = LoadSpec { sessions: 4, questions: 3, scenarios: vec![], repeat_period: 0 };
    let batched_engine = engine_with(8, RetrieverKind::Ranger);
    let outcome = run_load_driver(&batched_engine, spec.clone());

    // Serial replay: a fresh single-threaded engine answers the same
    // questions one at a time, in the same (turn-major) order the rounds
    // processed them.
    let serial_engine = engine_with(1, RetrieverKind::Ranger);
    let ids: Vec<u64> = (0..spec.sessions).map(|_| serial_engine.open_session()).collect();
    for turn in 0..spec.questions {
        for (s, id) in ids.iter().enumerate() {
            let question = synthetic_question(serial_engine.store(), s, turn);
            assert_eq!(question, outcome.questions[s][turn], "question synthesis must agree");
            let serial = serial_engine.handle(&AskRequest::in_session(*id, question));
            let batched = &outcome.responses[s][turn];
            assert_eq!(serial.answer, batched.answer, "session {s} turn {turn}");
            assert_eq!(serial.verdict, batched.verdict, "session {s} turn {turn}");
            assert_eq!(serial.turn, batched.turn, "session {s} turn {turn}");
        }
    }

    // Transcripts agree too (memory state is part of the contract).
    for (s, id) in ids.iter().enumerate() {
        let serial = serial_engine.transcript(*id).expect("session exists");
        let batched = batched_engine.transcript((s + 1) as u64).expect("session exists");
        assert_eq!(serial, batched, "transcript diverged for session {s}");
    }
}

#[test]
fn scenario_pinned_load_driver_is_byte_identical_across_worker_counts() {
    // The PR's acceptance criterion: two sessions pinned to different
    // MachineConfig presets over one shared sharded database return
    // per-machine IPC answers citing the correct machine label, and the
    // deterministic report is byte-identical for any worker count.
    let spec = LoadSpec {
        sessions: 2,
        questions: 4,
        scenarios: vec![
            ScenarioSelector::all().with_machine("table2"),
            ScenarioSelector::all().with_machine("small"),
        ],
        repeat_period: 0,
    };
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        let config = ServeConfig {
            threads: Some(threads),
            shards: 3,
            retriever: RetrieverKind::Ranger,
            machines: vec!["table2".into(), "small".into()],
            ..Default::default()
        };
        let engine = ServeEngine::build(config).expect("presets valid");
        let outcome = run_load_driver(&engine, spec.clone());
        assert_eq!(outcome.errors(), 0, "{threads} workers");
        reports.push((threads, outcome.render(&engine, false)));
    }
    let (_, reference) = &reports[0];
    for (threads, report) in &reports[1..] {
        assert_eq!(report, reference, "scenario report diverged between 1 and {threads} workers");
    }
    // Both machines' canonical labels appear as cited machines in the
    // deterministic report, on different sessions.
    assert!(reference.contains("\"machine\": \"table2@"), "{reference}");
    assert!(reference.contains("\"machine\": \"small@"), "{reference}");

    // And selector-free v1 traffic over the very same multi-machine build
    // reproduces the single-machine engine's answers bit-for-bit: the
    // extra machine-qualified traces are invisible to unscoped queries.
    let multi = ServeEngine::build(ServeConfig {
        threads: Some(2),
        shards: 3,
        machines: vec!["table2".into(), "small".into()],
        ..Default::default()
    })
    .expect("presets valid");
    let plain =
        ServeEngine::build(ServeConfig { threads: Some(2), shards: 3, ..Default::default() })
            .expect("build");
    let v1 = LoadSpec { sessions: 3, questions: 3, scenarios: vec![], repeat_period: 0 };
    let a = run_load_driver(&multi, v1.clone());
    let b = run_load_driver(&plain, v1);
    for (ra, rb) in a.responses.iter().flatten().zip(b.responses.iter().flatten()) {
        assert_eq!(ra.answer, rb.answer, "v1 answers must not see the extra machines");
        assert_eq!(ra.verdict, rb.verdict);
        assert_eq!(ra.machine, None, "v1 responses carry no machine field");
    }
}

#[test]
fn prefetcher_pinned_session_is_byte_identical_across_worker_counts() {
    // The PR's acceptance criterion: a serve v2 session pinned to
    // `astar@table2+stride4/lru` answers an IPC question grounded in a
    // prefetcher-qualified trace — the response cites the grounded machine
    // AND prefetcher labels — byte-identically for any worker count.
    let pin = ScenarioSelector::parse("astar@table2+stride4/lru").expect("selector");
    let mut outcomes = Vec::new();
    for threads in [1usize, 2, 8] {
        let config = ServeConfig {
            threads: Some(threads),
            shards: 3,
            retriever: RetrieverKind::Ranger,
            machines: vec!["table2".into()],
            prefetchers: vec!["stride4".into()],
            ..Default::default()
        };
        let engine = ServeEngine::build(config).expect("build");
        let open = AskRequest::new("What is the estimated IPC?").with_scenario(pin.clone());
        let response = engine.ask_round(&[open]).pop().unwrap();
        assert!(response.is_ok(), "{threads} workers: {:?}", response.error);
        outcomes.push((threads, response.to_json(false)));
    }
    let (_, reference) = &outcomes[0];
    for (threads, line) in &outcomes[1..] {
        assert_eq!(line, reference, "scoped answer diverged between 1 and {threads} workers");
    }
    assert!(reference.contains("\"machine\":\"table2@"), "{reference}");
    assert!(reference.contains("\"prefetcher\":\"stride4\""), "{reference}");
}

#[test]
fn prefetcher_axis_leaves_primary_entries_byte_identical() {
    // Primary (unqualified) entries of a prefetcher-and-machine-qualified
    // build are byte-identical to the plain build — the pin that keeps v1
    // traffic and every pre-existing key stable across this PR.
    let plain = TraceDatabaseBuilder::new()
        .scale(cachemind_workloads::Scale::Tiny)
        .shards(3)
        .try_build_sharded()
        .expect("plain build");
    let multi = ServeEngine::build(ServeConfig {
        threads: Some(2),
        shards: 3,
        machines: vec!["table2".into()],
        prefetchers: vec!["stride4".into()],
        ..Default::default()
    })
    .expect("qualified build");
    let store = multi.store();
    for key in plain.trace_keys() {
        let a = plain.get(&key).expect("plain entry");
        let b = store.get(&key).expect("primary entry survives");
        assert_eq!(a.metadata, b.metadata, "{key}");
        assert_eq!(a.description, b.description, "{key}");
        assert_eq!(a.frame.rows(), b.frame.rows(), "{key} rows diverge");
        assert_eq!(b.prefetcher, "none", "{key}");
    }
}

#[test]
fn sessions_are_isolated() {
    let engine = engine_with(4, RetrieverKind::Sieve);
    let a = engine.open_session();
    let b = engine.open_session();
    let secret = "List all unique PCs in the mcf trace under LRU.";
    let other = "What is the overall miss rate of the lbm workload under LRU?";
    engine.ask_round(&[AskRequest::in_session(a, secret), AskRequest::in_session(b, other)]);

    // Session b's memory knows nothing about session a's question.
    let recalled = engine.recall(b, "unique PCs mcf", 3).expect("session exists");
    assert!(
        recalled.iter().all(|turn| !turn.contains("unique PCs")),
        "session b recalled session a's turn: {recalled:?}"
    );
    let recalled_a = engine.recall(a, "unique PCs mcf", 3).expect("session exists");
    assert!(
        recalled_a.iter().any(|turn| turn.contains("unique PCs")),
        "session a must recall its own turn: {recalled_a:?}"
    );
    // Transcripts never cross.
    let tb = engine.transcript(b).unwrap();
    assert!(tb.iter().all(|(q, _)| !q.contains("unique PCs")));
    assert_eq!(tb.len(), 1);
}

#[test]
fn served_answers_cite_ipc_from_trace_metadata() {
    // The scenario refactor records machine label + estimated IPC in every
    // trace's metadata; an IPC question served through the engine must
    // come back as a numeric answer grounded in that sentence.
    let engine = engine_with(2, RetrieverKind::Ranger);
    let expected = engine.store().get("mcf_evictions_lru").expect("trace exists").ipc;
    let responses =
        engine.ask_round(&[AskRequest::new("What is the estimated IPC for mcf under LRU?")]);
    let response = &responses[0];
    assert_eq!(response.error, None, "request must succeed");
    let verdict = response.verdict.as_deref().expect("verdict present");
    assert!(verdict.starts_with("Number("), "IPC question must ground to a number: {verdict:?}");
    assert!(!response.answer.as_deref().unwrap_or("").is_empty());
    // The metadata the answer is grounded in cites a positive IPC.
    assert!(expected > 0.0);
}

#[test]
fn session_memory_never_enters_prompts() {
    // Prompts are a pure function of (question, retrieval, shots): a mind
    // that has answered many other questions renders the same prompt as a
    // fresh one, so no conversation state can leak between sessions.
    let store =
        TraceDatabaseBuilder::quick_demo().shards(3).try_build_sharded().expect("demo build");
    let shared = CacheMind::shared(std::sync::Arc::new(store));
    let poison = "List all unique PCs in the mcf trace under LRU.";
    let _ = shared.ask(poison);
    let q = "What is the overall miss rate of the lbm workload under LRU?";
    let after_other_traffic = shared.ask(q);
    let fresh = CacheMind::new(TraceDatabaseBuilder::quick_demo().build()).ask(q);
    assert_eq!(after_other_traffic.prompt, fresh.prompt);
    assert!(!after_other_traffic.prompt.contains("unique PCs"));
}

#[test]
fn sharded_build_is_identical_to_serial_build_end_to_end() {
    // The acceptance criterion at the database layer, re-checked from the
    // serve crate's vantage point: the store the engine serves from is the
    // database the serial builder produces.
    let serial = TraceDatabaseBuilder::quick_demo().build_serial().expect("serial reference build");
    let engine = engine_with(2, RetrieverKind::Sieve);
    let store = engine.store();
    assert_eq!(store.len(), serial.len());
    assert_eq!(store.trace_keys(), serial.trace_ids().map(str::to_owned).collect::<Vec<_>>());
    for key in store.trace_keys() {
        let sharded_entry = store.get(&key).expect("sharded entry");
        let serial_entry = serial.get(&key).expect("serial entry");
        assert_eq!(sharded_entry.metadata, serial_entry.metadata, "{key}");
        assert_eq!(sharded_entry.description, serial_entry.description, "{key}");
        assert_eq!(sharded_entry.frame.rows(), serial_entry.frame.rows(), "{key} rows diverge");
    }
}
