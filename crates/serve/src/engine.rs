//! [`ServeEngine`] — the multi-session, batched query-serving front-end.
//!
//! One engine owns many concurrent [`ChatSession`]s over a single shared
//! (`Arc`) sharded trace database. Requests are answered in *rounds*: the
//! event loop gathers the pending question of every session, a worker pool
//! (sized by `SERVE_NUM_THREADS`) answers the round in parallel through the
//! stateless CacheMind pipeline, and the answers fan back out into each
//! session's conversation memory in input order.
//!
//! Determinism contract: answering is a pure function of `(store,
//! question)`, workers receive contiguous chunks whose results are
//! reassembled in input order, and session bookkeeping happens serially
//! after the parallel phase — so every response, transcript and memory
//! state is byte-identical for any `SERVE_NUM_THREADS`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cachemind_core::chat::ChatSession;
use cachemind_core::system::{CacheMind, ContextCache, RetrieverKind};
use cachemind_lang::profiles::BackendKind;
use cachemind_tracedb::database::BuildError;
use cachemind_tracedb::shard::ShardedTraceDatabase;
use cachemind_tracedb::store::TraceStore;
use cachemind_tracedb::TraceDatabaseBuilder;
use cachemind_workloads::workload::Scale;

use crate::protocol::{AskRequest, AskResponse, ProtocolError};

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Retriever every session routes through ([`RetrieverKind::Dense`] is
    /// not servable: its per-session index build is a benchmark artefact,
    /// not a serving path).
    pub retriever: RetrieverKind,
    /// Generator backend.
    pub backend: BackendKind,
    /// Trace-database scale.
    pub scale: Scale,
    /// Shard count for the sharded build.
    pub shards: usize,
    /// Worker threads; `None` reads `SERVE_NUM_THREADS`, falling back to
    /// the machine's available parallelism.
    pub threads: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            retriever: RetrieverKind::Sieve,
            backend: BackendKind::Gpt4o,
            scale: Scale::Tiny,
            shards: TraceDatabaseBuilder::DEFAULT_SHARDS,
            threads: None,
        }
    }
}

impl ServeConfig {
    /// Resolves the worker count: explicit setting, then the
    /// `SERVE_NUM_THREADS` environment variable, then available
    /// parallelism.
    pub fn num_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.max(1);
        }
        match std::env::var("SERVE_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
        }
    }
}

/// The serving front-end: session manager + batched ask rounds.
#[derive(Debug)]
pub struct ServeEngine {
    store: Arc<dyn TraceStore>,
    mind: CacheMind,
    sessions: Mutex<BTreeMap<u64, ChatSession>>,
    next_session: AtomicU64,
    config: ServeConfig,
}

impl ServeEngine {
    /// Builds the sharded trace database described by `config` and starts
    /// an engine over it.
    ///
    /// Unknown workload/policy names surface as a clean [`BuildError`] —
    /// the builder validates before any shard worker runs.
    pub fn build(config: ServeConfig) -> Result<Self, BuildError> {
        let db = TraceDatabaseBuilder::new()
            .scale(config.scale)
            .shards(config.shards)
            .try_build_sharded()?;
        Ok(Self::over(db, config))
    }

    /// Starts an engine over an already-built sharded database.
    ///
    /// # Panics
    ///
    /// Panics if `config.retriever` is [`RetrieverKind::Dense`] (not a
    /// serving retriever; see [`ServeConfig::retriever`]).
    pub fn over(db: ShardedTraceDatabase, mut config: ServeConfig) -> Self {
        assert!(
            config.retriever != RetrieverKind::Dense,
            "the dense baseline is not servable; use Sieve or Ranger"
        );
        // The builder clamps to one shard minimum; keep the recorded config
        // in agreement with the physical layout it describes.
        config.shards = config.shards.max(1);
        let store: Arc<dyn TraceStore> = Arc::new(db);
        let mind = CacheMind::shared(Arc::clone(&store))
            .with_retriever(config.retriever)
            .with_backend(config.backend);
        ServeEngine {
            store,
            mind,
            sessions: Mutex::new(BTreeMap::new()),
            next_session: AtomicU64::new(1),
            config,
        }
    }

    /// The shared trace store.
    pub fn store(&self) -> &dyn TraceStore {
        &*self.store
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Resolved worker-pool width.
    pub fn num_threads(&self) -> usize {
        self.config.num_threads()
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().expect("session map lock").len()
    }

    /// Allocates an id and constructs a session around its own
    /// [`CacheMind`] sharing the engine's store.
    ///
    /// Serving answers always flow through the engine's shared pipeline
    /// (`self.mind`); the per-session mind is configured identically by
    /// construction, so a session used directly (outside a round) answers
    /// exactly as the engine would.
    fn fresh_session(&self) -> (u64, ChatSession) {
        let id = self.next_session.fetch_add(1, Ordering::SeqCst);
        let session = ChatSession::new(
            CacheMind::shared(Arc::clone(&self.store))
                .with_retriever(self.config.retriever)
                .with_backend(self.config.backend),
        );
        (id, session)
    }

    /// Opens a fresh chat session sharing the engine's database, returning
    /// its id. Ids are assigned 1, 2, 3, ... in open order.
    pub fn open_session(&self) -> u64 {
        let (id, session) = self.fresh_session();
        self.sessions.lock().expect("session map lock").insert(id, session);
        id
    }

    /// The `(question, answer)` transcript of a session.
    pub fn transcript(&self, session: u64) -> Option<Vec<(String, String)>> {
        self.sessions
            .lock()
            .expect("session map lock")
            .get(&session)
            .map(|s| s.transcript().to_vec())
    }

    /// Vector-memory recall within one session (for isolation checks and
    /// the chat tooling).
    pub fn recall(&self, session: u64, query: &str, k: usize) -> Option<Vec<String>> {
        self.sessions.lock().expect("session map lock").get(&session).map(|s| s.recall(query, k))
    }

    /// Answers a single request (a one-element round).
    pub fn handle(&self, request: &AskRequest) -> AskResponse {
        self.ask_round(std::slice::from_ref(request)).pop().expect("one response per request")
    }

    /// Answers one round of requests — the batched, multi-session path.
    ///
    /// Produces exactly one response per request, in request order.
    /// Unknown sessions yield in-band error responses; requests without a
    /// session id open a new session (in request order, so id assignment
    /// is deterministic too).
    pub fn ask_round(&self, requests: &[AskRequest]) -> Vec<AskResponse> {
        // Phase 0 (serial, one lock for the round): resolve or open
        // sessions in request order.
        let mut items: Vec<(usize, u64, &str)> = Vec::with_capacity(requests.len());
        let mut failures: Vec<(usize, AskResponse)> = Vec::new();
        {
            let mut sessions = self.sessions.lock().expect("session map lock");
            for (index, request) in requests.iter().enumerate() {
                match request.session {
                    Some(id) if sessions.contains_key(&id) => {
                        items.push((index, id, request.question.as_str()));
                    }
                    Some(id) => failures.push((
                        index,
                        AskResponse::failure(id, &ProtocolError::UnknownSession(id)),
                    )),
                    None => {
                        let (id, session) = self.fresh_session();
                        sessions.insert(id, session);
                        items.push((index, id, request.question.as_str()));
                    }
                }
            }
        }

        // Phase 1 (parallel): answer every question through the shared
        // stateless pipeline; each worker keeps a retrieval memo for the
        // chunk it serves.
        let answered = run_chunked(items, self.num_threads(), |chunk| {
            let mut cache = ContextCache::new();
            chunk
                .into_iter()
                .map(|(index, session, question)| {
                    let started = Instant::now();
                    let answer = self.mind.ask_with_cache(question, &mut cache);
                    let micros = started.elapsed().as_micros() as u64;
                    (index, session, question.to_owned(), answer, micros)
                })
                .collect::<Vec<_>>()
        });

        // Phase 2 (serial, input order): record turns into sessions and
        // assemble responses.
        let mut responses: Vec<Option<AskResponse>> = requests.iter().map(|_| None).collect();
        {
            let mut sessions = self.sessions.lock().expect("session map lock");
            for (index, session_id, question, answer, micros) in answered {
                let session = sessions.get_mut(&session_id).expect("session resolved in phase 0");
                session.log(&question, &answer.text);
                responses[index] = Some(AskResponse {
                    session: session_id,
                    turn: session.transcript().len(),
                    answer: Some(answer.text),
                    verdict: Some(format!("{:?}", answer.verdict)),
                    error: None,
                    micros,
                });
            }
        }
        for (index, failure) in failures {
            responses[index] = Some(failure);
        }
        responses.into_iter().map(|r| r.expect("response per request")).collect()
    }
}

/// The worker pool: `rayon::parallel_chunks` with the pool width answering
/// to `SERVE_NUM_THREADS` (via the caller) rather than rayon's own env —
/// same contiguous-chunk, input-order-preserving discipline as every other
/// parallel stage in the workspace.
fn run_chunked<T, O, F>(items: Vec<T>, workers: usize, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(Vec<T>) -> Vec<O> + Sync,
{
    rayon::parallel_chunks(items, workers, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(threads: usize) -> ServeEngine {
        let config = ServeConfig { threads: Some(threads), shards: 3, ..Default::default() };
        let db = TraceDatabaseBuilder::quick_demo()
            .shards(config.shards)
            .try_build_sharded()
            .expect("demo build");
        ServeEngine::over(db, config)
    }

    #[test]
    fn fresh_requests_open_sessions_in_order() {
        let engine = engine(2);
        let reqs = vec![
            AskRequest::new("What is the overall miss rate of the mcf workload under LRU?"),
            AskRequest::new("What is the overall miss rate of the lbm workload under LRU?"),
        ];
        let responses = engine.ask_round(&reqs);
        assert_eq!(responses[0].session, 1);
        assert_eq!(responses[1].session, 2);
        assert_eq!(engine.session_count(), 2);
        assert!(responses.iter().all(AskResponse::is_ok));
        assert_eq!(responses[0].turn, 1);
    }

    #[test]
    fn unknown_sessions_fail_in_band() {
        let engine = engine(1);
        let responses = engine.ask_round(&[AskRequest::in_session(42, "hello?")]);
        assert_eq!(responses.len(), 1);
        assert!(!responses[0].is_ok());
        assert!(responses[0].error.as_deref().unwrap().contains("unknown session 42"));
    }

    #[test]
    fn rounds_record_turns_into_the_right_sessions() {
        let engine = engine(4);
        let a = engine.open_session();
        let b = engine.open_session();
        let round = vec![
            AskRequest::in_session(
                a,
                "What is the overall miss rate of the mcf workload under LRU?",
            ),
            AskRequest::in_session(b, "Which policy has the lowest miss rate in astar?"),
            AskRequest::in_session(a, "List all unique PCs in the mcf trace under LRU."),
        ];
        let responses = engine.ask_round(&round);
        assert_eq!(responses[0].turn, 1);
        assert_eq!(responses[1].turn, 1);
        assert_eq!(responses[2].turn, 2, "second question to session a is its turn 2");
        let ta = engine.transcript(a).unwrap();
        assert_eq!(ta.len(), 2);
        assert!(ta[1].0.contains("unique PCs"));
        assert_eq!(engine.transcript(b).unwrap().len(), 1);
    }

    #[test]
    fn handle_matches_round_of_one() {
        let first = engine(2);
        let other = engine(2);
        let q = "Why does Belady outperform LRU in mcf?";
        let via_handle = first.handle(&AskRequest::new(q));
        let via_round = other.ask_round(&[AskRequest::new(q)]).pop().unwrap();
        assert_eq!(via_handle.answer, via_round.answer);
        assert_eq!(via_handle.verdict, via_round.verdict);
    }
}
