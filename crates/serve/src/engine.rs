//! [`ServeEngine`] — the multi-session, batched query-serving front-end.
//!
//! One engine owns many concurrent [`ChatSession`]s over a single shared
//! (`Arc`) sharded trace database. Requests are answered in *rounds*: the
//! event loop gathers the pending question of every session, a worker pool
//! (sized by `SERVE_NUM_THREADS`) answers the round in parallel through the
//! stateless CacheMind pipeline, and the answers fan back out into each
//! session's conversation memory in input order.
//!
//! Determinism contract: answering is a pure function of `(store,
//! question)`, workers receive contiguous chunks whose results are
//! reassembled in input order, and session bookkeeping happens serially
//! after the parallel phase — so every response, transcript and memory
//! state is byte-identical for any `SERVE_NUM_THREADS`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cachemind_core::chat::ChatSession;
use cachemind_core::system::{CacheMind, ContextCache, Query, RetrieverKind};
use cachemind_lang::profiles::BackendKind;
use cachemind_obs::{names, Counter, HistogramHandle, MetricsRegistry};
use cachemind_sim::config::MachineConfig;
use cachemind_sim::prefetch::PrefetcherKind;
use cachemind_tracedb::database::BuildError;
use cachemind_tracedb::shard::ShardedTraceDatabase;
use cachemind_tracedb::snapshot::{LazyTraceDatabase, SnapshotError, VerifiedSnapshot};
use cachemind_tracedb::store::TraceStore;
use cachemind_tracedb::{ScenarioSelector, TraceDatabaseBuilder};
use cachemind_workloads::workload::Scale;

use crate::protocol::{AskRequest, AskResponse, ProtocolError, Response, STATS_VERSION};
use serde_json::Value;

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Retriever every session routes through ([`RetrieverKind::Dense`] is
    /// not servable: its per-session index build is a benchmark artefact,
    /// not a serving path).
    pub retriever: RetrieverKind,
    /// Generator backend.
    pub backend: BackendKind,
    /// Trace-database scale.
    pub scale: Scale,
    /// Shard count for the sharded build.
    pub shards: usize,
    /// Worker threads; `None` reads `SERVE_NUM_THREADS`, falling back to
    /// the machine's available parallelism.
    pub threads: Option<usize>,
    /// Extra [`MachineConfig`] preset names (`"table2"`, `"small"`) to
    /// build machine-qualified traces for, on top of the primary machine —
    /// the database behind scenario-pinned (protocol v2) sessions.
    pub machines: Vec<String>,
    /// Extra prefetcher names (`"nextline"`, `"stride4"`; see
    /// [`PrefetcherKind::parse`]) to build prefetcher-qualified traces
    /// for, on top of the no-prefetch baseline — so sessions pinned to
    /// `+stride4` selectors answer from real transformed-stream traces.
    pub prefetchers: Vec<String>,
    /// Reap sessions left untouched for this many consecutive ask rounds
    /// (a reaped id is thereafter an unknown session, exactly as if the
    /// client had closed it). `None` disables reaping — sessions then
    /// live until closed, the pre-reaping behaviour. A value of 0 is
    /// clamped to 1.
    pub max_idle_rounds: Option<u64>,
    /// Whether the engine's [`CacheMind`] keeps a whole-answer cache
    /// (answers keyed by db fingerprint + canonical selector + question).
    /// Answering is deterministic, so the cache never changes a byte of
    /// any response — on by default; `--no-answer-cache` turns it off for
    /// A/B measurement.
    pub answer_cache: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            retriever: RetrieverKind::Sieve,
            backend: BackendKind::Gpt4o,
            scale: Scale::Tiny,
            shards: TraceDatabaseBuilder::DEFAULT_SHARDS,
            threads: None,
            machines: Vec::new(),
            prefetchers: Vec::new(),
            max_idle_rounds: None,
            answer_cache: true,
        }
    }
}

impl ServeConfig {
    /// Resolves the worker count: explicit setting, then the
    /// `SERVE_NUM_THREADS` environment variable, then available
    /// parallelism.
    pub fn num_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.max(1);
        }
        match std::env::var("SERVE_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
        }
    }
}

/// One served session: the chat state plus its pinned scenario scope.
#[derive(Debug)]
struct SessionState {
    chat: ChatSession,
    /// The session's default scenario scope, pinned at open (unscoped for
    /// v1 sessions). A request-level `scenario` overrides it per turn.
    pinned: ScenarioSelector,
    /// The last ask round that touched this session (opened it, probed
    /// it, or asked through it) — the idle clock
    /// [`ServeConfig::max_idle_rounds`] reaps against.
    last_active_round: u64,
}

/// The session map plus the engine's round clock, guarded by one mutex so
/// activity stamps and reaping are atomic with session bookkeeping.
#[derive(Debug, Default)]
struct SessionTable {
    sessions: BTreeMap<u64, SessionState>,
    /// Completed-round counter: incremented once at the start of every
    /// [`ServeEngine::ask_round`] and once per
    /// [`ServeEngine::open_request`], serially under the lock — the
    /// deterministic clock idle reaping measures against (wall time would
    /// break byte-stability across thread counts).
    round: u64,
}

/// The engine's pre-registered metric handles: looked up once at
/// construction so the per-request hot path is atomic increments only
/// (the error path looks its per-kind counter up dynamically — errors
/// are off the hot path by definition).
#[derive(Debug, Clone)]
struct EngineMetrics {
    registry: MetricsRegistry,
    requests_ask: Counter,
    requests_open: Counter,
    requests_close: Counter,
    requests_stats: Counter,
    sessions_opened: Counter,
    sessions_closed: Counter,
    sessions_reaped: Counter,
    ask_latency: HistogramHandle,
    parse: HistogramHandle,
    respond: HistogramHandle,
}

impl EngineMetrics {
    fn new(registry: MetricsRegistry) -> Self {
        EngineMetrics {
            requests_ask: registry.counter(names::SERVE_REQUESTS_ASK),
            requests_open: registry.counter(names::SERVE_REQUESTS_OPEN),
            requests_close: registry.counter(names::SERVE_REQUESTS_CLOSE),
            requests_stats: registry.counter(names::SERVE_REQUESTS_STATS),
            sessions_opened: registry.counter(names::SERVE_SESSIONS_OPENED),
            sessions_closed: registry.counter(names::SERVE_SESSIONS_CLOSED),
            sessions_reaped: registry.counter(names::SERVE_SESSIONS_REAPED),
            ask_latency: registry.histogram(names::SERVE_ASK),
            parse: registry.histogram(names::SERVE_PARSE),
            respond: registry.histogram(names::SERVE_RESPOND),
            registry,
        }
    }

    /// Counts one in-band error under its stable `error_kind`.
    fn error(&self, kind: &str) {
        self.registry.counter(&format!("{}{kind}", names::SERVE_ERRORS_PREFIX)).inc();
    }
}

/// What serving one protocol line did, beyond the rendered response —
/// the session-lifecycle side effects a connection-scoped transport
/// tracks (see [`ServeEngine::serve_line`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineOutcome {
    /// The response, rendered as one compact JSON line.
    pub rendered: String,
    /// The session this line opened (a session-less ask or a fresh
    /// `open`), when it succeeded.
    pub opened_session: Option<u64>,
    /// The session this line closed (a successful `close`).
    pub closed_session: Option<u64>,
    /// Whether the line was a `{"shutdown": true}` control message the
    /// transport must act on after writing the response.
    pub shutdown: bool,
}

/// The serving front-end: session manager + batched ask rounds.
#[derive(Debug)]
pub struct ServeEngine {
    store: Arc<dyn TraceStore>,
    mind: CacheMind,
    sessions: Mutex<SessionTable>,
    next_session: AtomicU64,
    config: ServeConfig,
    /// This engine's own metric handles — per-engine (not process-global),
    /// so a server's `stats` snapshot counts exactly its own traffic.
    metrics: EngineMetrics,
    /// The store's canonical machine labels, snapshotted on first use (the
    /// store is immutable for the engine's lifetime): used to canonicalize
    /// preset-name scopes into keyed lookups and to resolve the machine a
    /// scoped answer cites. Lazy so a snapshot-backed engine
    /// ([`ServeEngine::from_snapshot`]) does not force a decode at
    /// startup.
    machine_labels: std::sync::OnceLock<Vec<String>>,
    /// The store's canonical prefetcher labels, snapshotted like
    /// `machine_labels`: used to resolve the prefetcher a scoped answer's
    /// grounded evidence cites.
    prefetcher_labels: std::sync::OnceLock<Vec<String>>,
}

impl ServeEngine {
    /// Builds the sharded trace database described by `config` and starts
    /// an engine over it. `config.machines` preset names add
    /// machine-qualified traces to the build and `config.prefetchers`
    /// prefetcher names add prefetcher-qualified (transformed-stream)
    /// traces, so scenario-pinned sessions have per-machine,
    /// per-prefetcher entries to answer from.
    ///
    /// Unknown workload/policy/machine-preset/prefetcher names surface as
    /// a clean [`BuildError`] — validation happens before any shard worker
    /// runs.
    pub fn build(config: ServeConfig) -> Result<Self, BuildError> {
        let db = build_database(&config)?;
        Ok(Self::over(db, config))
    }

    /// Starts an engine over a database loaded from a snapshot file
    /// written by [`ShardedTraceDatabase::save`] (see
    /// `cachemind_tracedb::snapshot`) — the instant-startup path: no
    /// simulation runs. The snapshot's own shard count wins over
    /// `config.shards` (the file records the physical layout).
    ///
    /// `config.scale`, `machines` and `prefetchers` describe *builds*, so
    /// they are ignored here beyond being echoed in [`ServeEngine::config`];
    /// the snapshot determines which traces exist.
    /// The snapshot is checksum-verified in full before this returns (any
    /// corruption is a startup error, never a mid-round surprise), but the
    /// entries themselves decode lazily on the first query — the ready
    /// banner and the listen loop come up without paying the decode.
    pub fn from_snapshot(
        path: impl AsRef<std::path::Path>,
        mut config: ServeConfig,
    ) -> Result<Self, SnapshotError> {
        let registry = MetricsRegistry::new();
        // The open/verify span also lands in this engine's registry (the
        // library records it globally), so a server's own stats carry its
        // startup cost.
        let verify_span = registry.span(names::TRACEDB_SNAPSHOT_VERIFY);
        let snapshot = VerifiedSnapshot::open(path)?;
        verify_span.finish();
        config.shards = snapshot.num_shards().max(1);
        let store: Arc<dyn TraceStore> =
            Arc::new(LazyTraceDatabase::new(snapshot).with_metrics(&registry));
        Ok(Self::over_registry(store, config, registry))
    }

    /// Starts an engine over an already-built sharded database.
    ///
    /// # Panics
    ///
    /// Panics if `config.retriever` is [`RetrieverKind::Dense`] (not a
    /// serving retriever; see [`ServeConfig::retriever`]).
    pub fn over(db: ShardedTraceDatabase, mut config: ServeConfig) -> Self {
        // The builder clamps to one shard minimum; keep the recorded config
        // in agreement with the physical layout it describes.
        config.shards = config.shards.max(1);
        Self::over_store(Arc::new(db), config)
    }

    /// Starts an engine over any [`TraceStore`] — the common tail of
    /// [`ServeEngine::over`] (eager, in-memory) and
    /// [`ServeEngine::from_snapshot`] (lazy, snapshot-backed). `config` is
    /// recorded as given; callers reconcile `config.shards` with the
    /// store's physical layout first.
    ///
    /// # Panics
    ///
    /// Panics if `config.retriever` is [`RetrieverKind::Dense`] (not a
    /// serving retriever; see [`ServeConfig::retriever`]).
    fn over_store(store: Arc<dyn TraceStore>, config: ServeConfig) -> Self {
        Self::over_registry(store, config, MetricsRegistry::new())
    }

    /// The common tail with an explicit metrics registry —
    /// [`ServeEngine::from_snapshot`] passes the registry its lazy store
    /// already records into, so decode telemetry and request telemetry
    /// land in one snapshot.
    fn over_registry(
        store: Arc<dyn TraceStore>,
        config: ServeConfig,
        registry: MetricsRegistry,
    ) -> Self {
        assert!(
            config.retriever != RetrieverKind::Dense,
            "the dense baseline is not servable; use Sieve or Ranger"
        );
        let mind = CacheMind::shared(Arc::clone(&store))
            .with_retriever(config.retriever)
            .with_backend(config.backend)
            .with_metrics(&registry)
            .with_answer_cache(config.answer_cache);
        ServeEngine {
            store,
            mind,
            sessions: Mutex::new(SessionTable::default()),
            next_session: AtomicU64::new(1),
            config,
            metrics: EngineMetrics::new(registry),
            machine_labels: std::sync::OnceLock::new(),
            prefetcher_labels: std::sync::OnceLock::new(),
        }
    }

    /// This engine's metrics registry — every counter, gauge and span the
    /// engine (and the pipeline layers it owns) records. Snapshot it for
    /// reports, or read the serialized form via [`ServeEngine::stats_value`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics.registry
    }

    /// The store's canonical machine labels, computed on first use (this
    /// forces a lazy snapshot store to decode).
    fn machine_labels(&self) -> &[String] {
        self.machine_labels.get_or_init(|| self.store.machines())
    }

    /// The store's canonical prefetcher labels, computed on first use.
    fn prefetcher_labels(&self) -> &[String] {
        self.prefetcher_labels.get_or_init(|| self.store.prefetchers())
    }

    /// Rewrites a scope's machine from a preset *name* (`table2`) to the
    /// store's canonical *label* (`table2@llc2048x16+dram160`), resolved
    /// once per request against the engine's label snapshot — so every
    /// scoped trace lookup downstream takes the keyed fast path instead
    /// of a linear store scan. Labels already canonical (or unknown
    /// machines, which must keep matching nothing) pass through
    /// unchanged; a name matching several labels resolves to the first in
    /// sorted order, the same entry the unresolved scan would have found.
    fn canonicalize(&self, selector: ScenarioSelector) -> ScenarioSelector {
        match &selector.machine {
            Some(machine) if !self.machine_labels().iter().any(|l| l == machine) => {
                match self.machine_labels().iter().find(|l| selector.matches_machine(l)) {
                    Some(label) => {
                        let label = label.clone();
                        selector.with_machine(label)
                    }
                    None => selector,
                }
            }
            _ => selector,
        }
    }

    /// The shared trace store.
    pub fn store(&self) -> &dyn TraceStore {
        &*self.store
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Resolved worker-pool width.
    pub fn num_threads(&self) -> usize {
        self.config.num_threads()
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().expect("session map lock").sessions.len()
    }

    /// Allocates an id and constructs a session around its own
    /// [`CacheMind`] sharing the engine's store, with a pinned scenario
    /// scope.
    ///
    /// Serving answers always flow through the engine's shared pipeline
    /// (`self.mind`); the per-session mind is configured identically by
    /// construction, so a session used directly (outside a round) answers
    /// exactly as the engine would.
    fn fresh_session(&self, pinned: ScenarioSelector) -> (u64, SessionState) {
        self.metrics.sessions_opened.inc();
        let id = self.next_session.fetch_add(1, Ordering::SeqCst);
        let chat = ChatSession::new(
            CacheMind::shared(Arc::clone(&self.store))
                .with_retriever(self.config.retriever)
                .with_backend(self.config.backend),
        );
        (id, SessionState { chat, pinned, last_active_round: 0 })
    }

    /// Opens a fresh unscoped chat session sharing the engine's database,
    /// returning its id. Ids are assigned 1, 2, 3, ... in open order.
    pub fn open_session(&self) -> u64 {
        self.open_session_pinned(ScenarioSelector::all())
    }

    /// Opens a fresh chat session with a pinned default scenario scope:
    /// every turn that does not carry its own `scenario` is answered
    /// within this one — how a v2 client says *which machine* its session
    /// asks about.
    pub fn open_session_pinned(&self, pinned: ScenarioSelector) -> u64 {
        let (id, mut session) = self.fresh_session(pinned);
        let mut table = self.sessions.lock().expect("session map lock");
        session.last_active_round = table.round;
        table.sessions.insert(id, session);
        id
    }

    /// The scenario scope a session pinned at open (unscoped for v1
    /// sessions); `None` for unknown sessions.
    pub fn pinned_scenario(&self, session: u64) -> Option<ScenarioSelector> {
        self.sessions
            .lock()
            .expect("session map lock")
            .sessions
            .get(&session)
            .map(|s| s.pinned.clone())
    }

    /// The `(question, answer)` transcript of a session.
    pub fn transcript(&self, session: u64) -> Option<Vec<(String, String)>> {
        self.sessions
            .lock()
            .expect("session map lock")
            .sessions
            .get(&session)
            .map(|s| s.chat.transcript().to_vec())
    }

    /// Vector-memory recall within one session (for isolation checks and
    /// the chat tooling).
    pub fn recall(&self, session: u64, query: &str, k: usize) -> Option<Vec<String>> {
        self.sessions
            .lock()
            .expect("session map lock")
            .sessions
            .get(&session)
            .map(|s| s.chat.recall(query, k))
    }

    /// Closes a session, removing it (and its conversation memory) from
    /// the session map — the lifecycle half of the protocol, without which
    /// the map only grows. Returns the number of turns the session
    /// answered; closing an unknown (or already-closed) session is an
    /// [`ProtocolError::UnknownSession`].
    pub fn close_session(&self, session: u64) -> Result<usize, ProtocolError> {
        self.sessions
            .lock()
            .expect("session map lock")
            .sessions
            .remove(&session)
            .map(|state| {
                self.metrics.sessions_closed.inc();
                state.chat.transcript().len()
            })
            .ok_or(ProtocolError::UnknownSession(session))
    }

    /// Reaps sessions idle past the configured `--max-idle-rounds`
    /// horizon — the shared tail of every round-clock tick ([`ask_round`]
    /// and [`open_request`]). Measured against the table's *current*
    /// round (which concurrent rounds may have advanced), so a session is
    /// only reaped when no tick has touched it for the full window. A
    /// no-op when no horizon is configured.
    ///
    /// [`ask_round`]: ServeEngine::ask_round
    /// [`open_request`]: ServeEngine::open_request
    fn reap_idle(&self, table: &mut SessionTable) {
        if let Some(max_idle) = self.config.max_idle_rounds {
            let limit = max_idle.max(1);
            let current = table.round;
            let before = table.sessions.len();
            table.sessions.retain(|_, s| current.saturating_sub(s.last_active_round) < limit);
            let reaped = before - table.sessions.len();
            if reaped > 0 {
                self.metrics.sessions_reaped.add(reaped as u64);
            }
        }
    }

    /// Opens a session (or probes an existing one) without asking a
    /// question — the engine half of the protocol's `open` request.
    ///
    /// With `session: None`, opens a fresh session pinned to `scenario`
    /// (unscoped when absent) and acknowledges at turn 0. With a session
    /// id, echoes the existing pin and turn count, refreshing the
    /// session's idle clock; unknown ids fail in-band.
    ///
    /// Like [`ServeEngine::ask_round`], an `open` ticks the round clock
    /// and reaps sessions idle past the `--max-idle-rounds` horizon — so
    /// a globally scoped TCP server whose traffic is opens and probes
    /// still retires abandoned sessions. The session being opened or
    /// probed is stamped with the new round first, so it is never reaped
    /// by its own request.
    pub fn open_request(
        &self,
        session: Option<u64>,
        scenario: Option<ScenarioSelector>,
    ) -> AskResponse {
        match session {
            None => {
                let pinned = scenario.unwrap_or_default();
                let (id, mut state) = self.fresh_session(pinned.clone());
                let mut table = self.sessions.lock().expect("session map lock");
                table.round += 1;
                state.last_active_round = table.round;
                table.sessions.insert(id, state);
                self.reap_idle(&mut table);
                AskResponse::opened(id, 0, &pinned)
            }
            Some(id) => {
                let mut table = self.sessions.lock().expect("session map lock");
                table.round += 1;
                let round = table.round;
                let response = match table.sessions.get_mut(&id) {
                    Some(state) => {
                        state.last_active_round = round;
                        AskResponse::opened(id, state.chat.transcript().len(), &state.pinned)
                    }
                    None => {
                        self.metrics.error(ProtocolError::UnknownSession(id).kind());
                        AskResponse::failure(id, &ProtocolError::UnknownSession(id))
                    }
                };
                self.reap_idle(&mut table);
                response
            }
        }
    }

    /// Answers a single request (a one-element round).
    pub fn handle(&self, request: &AskRequest) -> AskResponse {
        self.ask_round(std::slice::from_ref(request)).pop().expect("one response per request")
    }

    /// Dispatches any protocol [`Request`](crate::protocol::Request):
    /// asks run a one-element round, opens run
    /// [`ServeEngine::open_request`], closes run
    /// [`ServeEngine::close_session`], stats return
    /// [`ServeEngine::stats_value`] — all answer in-band.
    pub fn handle_request(&self, request: &crate::protocol::Request) -> Response {
        use crate::protocol::Request;
        match request {
            Request::Ask(ask) => Response::Ask(self.handle(ask)),
            Request::Open { session, scenario } => {
                self.metrics.requests_open.inc();
                Response::Ask(self.open_request(*session, scenario.clone()))
            }
            Request::Close { session } => {
                self.metrics.requests_close.inc();
                Response::Ask(match self.close_session(*session) {
                    Ok(turns) => AskResponse::closed(*session, turns),
                    Err(error) => {
                        self.metrics.error(error.kind());
                        AskResponse::failure(*session, &error)
                    }
                })
            }
            Request::Stats => {
                // Snapshot first, count after: the response never counts
                // itself, so after driving N requests the first stats
                // response reports exactly N.
                let stats = self.stats_value();
                self.metrics.requests_stats.inc();
                Response::Stats(stats)
            }
            // A transport-level control message: acknowledged in-band but
            // never counted, so stats bytes are unaffected by how a run
            // was stopped. The *transport* (TCP server, stdin loop) acts
            // on the flag in the returned LineOutcome; the engine itself
            // has nothing to stop.
            Request::Shutdown => Response::Shutdown,
        }
    }

    /// Serves one raw protocol line: parse, dispatch, render — the full
    /// event-loop path behind the `cachemind-serve` stdin loop, with the
    /// `serve.parse` / `serve.respond` spans and per-`error_kind` counters
    /// recorded on the way through. Parse failures answer in-band exactly
    /// as the binary always has. Equivalent to
    /// [`ServeEngine::serve_line`] on the `"stdin"` transport, keeping
    /// only the rendered response.
    pub fn handle_line(&self, line: &str, with_timing: bool) -> String {
        self.serve_line(line, with_timing, "stdin", None).rendered
    }

    /// Serves one raw protocol line on behalf of a named transport — the
    /// shared event-loop path behind both the stdin loop (`"stdin"`,
    /// via [`ServeEngine::handle_line`]) and the TCP workers (`"tcp"`,
    /// via `crate::net`).
    ///
    /// The transport tag and the optional per-connection context surface
    /// in `stats` responses only (wall-clock side-channel content); every
    /// other response renders byte-identically across transports, which
    /// is what makes the TCP determinism tests able to `cmp` against
    /// stdin output. The returned [`LineOutcome`] additionally reports
    /// the session-lifecycle side effects of the line, so a connection-
    /// scoped transport can track which sessions it owns, and whether the
    /// line was a graceful-shutdown request the transport must act on.
    pub fn serve_line(
        &self,
        line: &str,
        with_timing: bool,
        transport: &str,
        connection: Option<Value>,
    ) -> LineOutcome {
        use crate::protocol::Request;

        let parse_span = self.metrics.parse.start_span();
        let parsed = Request::from_json(line);
        parse_span.finish();
        let mut outcome = LineOutcome {
            rendered: String::new(),
            opened_session: None,
            closed_session: None,
            shutdown: false,
        };
        let response = match parsed {
            Ok(request) => {
                let response = self.handle_request(&request);
                match (&request, &response) {
                    (Request::Ask(ask), Response::Ask(resp))
                        if ask.session.is_none() && resp.is_ok() =>
                    {
                        outcome.opened_session = Some(resp.session);
                    }
                    (Request::Open { session: None, .. }, Response::Ask(resp)) if resp.is_ok() => {
                        outcome.opened_session = Some(resp.session);
                    }
                    (Request::Close { session }, Response::Ask(resp)) if resp.is_ok() => {
                        outcome.closed_session = Some(*session);
                    }
                    (Request::Shutdown, _) => outcome.shutdown = true,
                    _ => {}
                }
                match response {
                    Response::Stats(mut value) => {
                        value.insert("transport", Value::from(transport));
                        if let Some(connection) = connection {
                            value.insert("connection", connection);
                        }
                        Response::Stats(value)
                    }
                    other => other,
                }
            }
            Err(error) => {
                self.metrics.error(error.kind());
                Response::Ask(AskResponse::failure(0, &error))
            }
        };
        let respond_span = self.metrics.respond.start_span();
        outcome.rendered = response.to_json(with_timing);
        respond_span.finish();
        outcome
    }

    /// The versioned stats object answering `{"stats": true}`: session
    /// lifecycle counts, requests by kind, per-`error_kind` counts, and
    /// the full metrics snapshot (histograms included). A pure read — it
    /// counts nothing, so callers control whether the read itself is
    /// recorded (the protocol path counts it *after* snapshotting).
    pub fn stats_value(&self) -> Value {
        let open_now = self.session_count();
        self.metrics.registry.gauge(names::SERVE_SESSIONS_OPEN).set(open_now as i64);
        let snap = self.metrics.registry.snapshot();

        let mut sessions = Value::object();
        sessions.insert("open", Value::from(open_now as u64));
        sessions.insert("opened", Value::from(snap.counter(names::SERVE_SESSIONS_OPENED)));
        sessions.insert("closed", Value::from(snap.counter(names::SERVE_SESSIONS_CLOSED)));
        sessions.insert("reaped", Value::from(snap.counter(names::SERVE_SESSIONS_REAPED)));

        let by_kind_counts = snap.counters_with_prefix(names::SERVE_ERRORS_PREFIX);
        let mut errors_total = 0u64;
        let mut by_kind = Value::object();
        for (name, count) in &by_kind_counts {
            errors_total += count;
            by_kind.insert(&name[names::SERVE_ERRORS_PREFIX.len()..], Value::from(*count));
        }
        let mut errors = Value::object();
        errors.insert("total", Value::from(errors_total));
        errors.insert("by_kind", by_kind);

        let ask = snap.counter(names::SERVE_REQUESTS_ASK);
        let open = snap.counter(names::SERVE_REQUESTS_OPEN);
        let close = snap.counter(names::SERVE_REQUESTS_CLOSE);
        let stats = snap.counter(names::SERVE_REQUESTS_STATS);
        let mut requests = Value::object();
        requests.insert("ask", Value::from(ask));
        requests.insert("open", Value::from(open));
        requests.insert("close", Value::from(close));
        requests.insert("stats", Value::from(stats));
        requests.insert("total", Value::from(ask + open + close + stats));

        // The whole-answer cache (stats v2): entry count plus the
        // `retrieval.cache.*` counters, read from the cache's own handles
        // so a `--no-answer-cache` server reports `enabled: false` and
        // nothing else.
        let mut cache = Value::object();
        match self.mind.answer_cache() {
            Some(answers) => {
                cache.insert("enabled", Value::from(true));
                cache.insert("entries", Value::from(answers.len() as u64));
                cache.insert("hits", Value::from(answers.hits()));
                cache.insert("misses", Value::from(answers.misses()));
                cache.insert("inserts", Value::from(answers.inserts()));
            }
            None => {
                cache.insert("enabled", Value::from(false));
            }
        }

        let mut root = Value::object();
        root.insert("stats_version", Value::from(STATS_VERSION));
        root.insert("sessions", sessions);
        root.insert("requests", requests);
        root.insert("errors", errors);
        root.insert("cache", cache);
        root.insert("metrics", snap.to_value());
        root
    }

    /// [`ServeEngine::stats_value`] plus the `transport` tag the protocol
    /// path stamps on stats responses — for out-of-band consumers (the
    /// binary's `--stats-json` writer) that want the same shape a
    /// `{"stats": true}` line would have answered with on that transport.
    pub fn stats_value_tagged(&self, transport: &str) -> Value {
        let mut value = self.stats_value();
        value.insert("transport", Value::from(transport));
        value
    }

    /// Answers one round of requests — the batched, multi-session path.
    ///
    /// Produces exactly one response per request, in request order.
    /// Unknown sessions yield in-band error responses; requests without a
    /// session id open a new session (in request order, so id assignment
    /// is deterministic too).
    pub fn ask_round(&self, requests: &[AskRequest]) -> Vec<AskResponse> {
        self.metrics.requests_ask.add(requests.len() as u64);
        // Phase 0 (serial, one lock for the round): resolve or open
        // sessions in request order, and resolve each request's scenario
        // scope — its own `scenario` field, else the session's pinned
        // default. A session-opening request's scenario becomes the new
        // session's pinned scope.
        let mut items: Vec<(usize, u64, Query)> = Vec::with_capacity(requests.len());
        let mut failures: Vec<(usize, AskResponse)> = Vec::new();
        let round;
        {
            let mut table = self.sessions.lock().expect("session map lock");
            table.round += 1;
            round = table.round;
            for (index, request) in requests.iter().enumerate() {
                let resolved = match request.session {
                    Some(id) => match table.sessions.get_mut(&id) {
                        Some(session) => {
                            session.last_active_round = round;
                            Some((
                                id,
                                request.scenario.clone().unwrap_or_else(|| session.pinned.clone()),
                            ))
                        }
                        None => {
                            self.metrics.error(ProtocolError::UnknownSession(id).kind());
                            failures.push((
                                index,
                                AskResponse::failure(id, &ProtocolError::UnknownSession(id)),
                            ));
                            None
                        }
                    },
                    None => {
                        let pinned = request.scenario.clone().unwrap_or_default();
                        let (id, mut session) = self.fresh_session(pinned.clone());
                        session.last_active_round = round;
                        table.sessions.insert(id, session);
                        Some((id, pinned))
                    }
                };
                if let Some((id, selector)) = resolved {
                    let selector = self.canonicalize(selector);
                    items.push((index, id, Query::scoped(request.question.clone(), selector)));
                }
            }
        }

        // Phase 1 (parallel): answer every query through the shared
        // stateless pipeline; each worker keeps a retrieval memo for the
        // chunk it serves (memo keys include the resolved scope, so
        // sessions pinned to different machines never alias).
        let answered = run_chunked(items, self.num_threads(), |chunk| {
            let mut cache = ContextCache::new();
            chunk
                .into_iter()
                .map(|(index, session, query)| {
                    let span = self.metrics.ask_latency.start_span();
                    let answer = self.mind.ask_query_with_cache(&query, &mut cache);
                    let micros = span.finish();
                    (index, session, query, answer, micros)
                })
                .collect::<Vec<_>>()
        });

        // Phase 2 (serial, input order): record turns into sessions and
        // assemble responses. Scoped (v2) requests additionally report the
        // machine label their grounded evidence cites; v1 responses keep
        // the legacy bytes exactly.
        let mut responses: Vec<Option<AskResponse>> = requests.iter().map(|_| None).collect();
        {
            let mut table = self.sessions.lock().expect("session map lock");
            for (index, session_id, query, answer, micros) in answered {
                // The session can vanish between phases: another thread may
                // close it while the round's answers are being computed
                // outside the lock. That is an in-band unknown-session
                // failure, not a panic — a poisoned map would brick the
                // whole engine.
                let Some(session) = table.sessions.get_mut(&session_id) else {
                    self.metrics.error(ProtocolError::UnknownSession(session_id).kind());
                    responses[index] = Some(AskResponse::failure(
                        session_id,
                        &ProtocolError::UnknownSession(session_id),
                    ));
                    continue;
                };
                // Stamp with max: a concurrent later round may already
                // have moved this session's clock past ours.
                session.last_active_round = session.last_active_round.max(round);
                session.chat.log(&query.text, &answer.text);
                let (machine, prefetcher) = if query.selector.machine_scope().is_unscoped() {
                    (None, None)
                } else {
                    (
                        cited_machine(self.machine_labels(), &answer),
                        cited_prefetcher(self.prefetcher_labels(), &answer),
                    )
                };
                responses[index] = Some(AskResponse {
                    session: session_id,
                    turn: session.chat.transcript().len(),
                    answer: Some(answer.text),
                    verdict: Some(format!("{:?}", answer.verdict)),
                    machine,
                    prefetcher,
                    scenario: None,
                    closed: false,
                    error: None,
                    error_kind: None,
                    micros,
                });
            }
            // End of the round: reap sessions idle past the configured
            // horizon.
            self.reap_idle(&mut table);
        }
        for (index, failure) in failures {
            responses[index] = Some(failure);
        }
        responses.into_iter().map(|r| r.expect("response per request")).collect()
    }
}

/// Builds the sharded trace database a [`ServeConfig`] describes — the
/// shared build path behind [`ServeEngine::build`], the
/// `cachemind-serve --build-db` offline mode, and the snapshot benches.
/// Unknown machine-preset/prefetcher names surface as a clean
/// [`BuildError`] before any shard worker runs.
pub fn build_database(config: &ServeConfig) -> Result<ShardedTraceDatabase, BuildError> {
    let mut machines = Vec::with_capacity(config.machines.len());
    for name in &config.machines {
        machines.push(
            MachineConfig::preset(name).ok_or_else(|| BuildError::UnknownMachine(name.clone()))?,
        );
    }
    let mut prefetchers = Vec::with_capacity(config.prefetchers.len());
    for name in &config.prefetchers {
        prefetchers.push(
            PrefetcherKind::parse(name)
                .ok_or_else(|| BuildError::UnknownPrefetcher(name.clone()))?,
        );
    }
    TraceDatabaseBuilder::new()
        .scale(config.scale)
        .shards(config.shards)
        .machines(machines)
        .prefetchers(prefetchers)
        .try_build_sharded()
}

/// The canonical machine label a scoped answer's grounded evidence cites:
/// the store label that appears in one of the retrieved facts. `None`
/// when the evidence cites no machine (e.g. a hit/miss lookup, whose
/// facts carry no scenario sentence). Of the labels that match, the
/// *longest* wins — one canonical label can be a prefix of another
/// (`...dram160` / `...dram1600`), and substring containment alone would
/// report the shorter one.
fn cited_machine(labels: &[String], answer: &cachemind_core::system::Answer) -> Option<String> {
    labels
        .iter()
        .filter(|label| answer.context.facts.iter().any(|f| f.render().contains(label.as_str())))
        .max_by_key(|label| (label.len(), (*label).clone()))
        .cloned()
}

/// The canonical prefetcher label a scoped answer's grounded evidence
/// cites: a store label that appears as `prefetcher <label>` in one of the
/// retrieved facts — the phrase owned by
/// `cachemind_tracedb::meta::ipc_citation` /
/// `meta::scenario_citation_suffix` and the metadata's prefetcher
/// sentence, so the match target has one definition. `None` when the
/// evidence names no prefetcher — baseline traces never do, so unscoped
/// and v1 traffic is unaffected. Longest label wins, mirroring
/// [`cited_machine`] (`stride4` vs a hypothetical `stride42`).
fn cited_prefetcher(labels: &[String], answer: &cachemind_core::system::Answer) -> Option<String> {
    labels
        .iter()
        .filter(|label| label.as_str() != "none")
        .filter(|label| {
            let needle = format!("prefetcher {label}");
            answer.context.facts.iter().any(|f| f.render().contains(&needle))
        })
        .max_by_key(|label| (label.len(), (*label).clone()))
        .cloned()
}

/// The worker pool: `rayon::parallel_chunks` with the pool width answering
/// to `SERVE_NUM_THREADS` (via the caller) rather than rayon's own env —
/// same contiguous-chunk, input-order-preserving discipline as every other
/// parallel stage in the workspace.
fn run_chunked<T, O, F>(items: Vec<T>, workers: usize, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(Vec<T>) -> Vec<O> + Sync,
{
    rayon::parallel_chunks(items, workers, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(threads: usize) -> ServeEngine {
        let config = ServeConfig { threads: Some(threads), shards: 3, ..Default::default() };
        let db = TraceDatabaseBuilder::quick_demo()
            .shards(config.shards)
            .try_build_sharded()
            .expect("demo build");
        ServeEngine::over(db, config)
    }

    #[test]
    fn fresh_requests_open_sessions_in_order() {
        let engine = engine(2);
        let reqs = vec![
            AskRequest::new("What is the overall miss rate of the mcf workload under LRU?"),
            AskRequest::new("What is the overall miss rate of the lbm workload under LRU?"),
        ];
        let responses = engine.ask_round(&reqs);
        assert_eq!(responses[0].session, 1);
        assert_eq!(responses[1].session, 2);
        assert_eq!(engine.session_count(), 2);
        assert!(responses.iter().all(AskResponse::is_ok));
        assert_eq!(responses[0].turn, 1);
    }

    #[test]
    fn unknown_sessions_fail_in_band() {
        let engine = engine(1);
        let responses = engine.ask_round(&[AskRequest::in_session(42, "hello?")]);
        assert_eq!(responses.len(), 1);
        assert!(!responses[0].is_ok());
        assert!(responses[0].error.as_deref().unwrap().contains("unknown session 42"));
        // The unified in-band error shape: same fields as a parse failure,
        // discriminated by the stable error_kind.
        assert_eq!(responses[0].error_kind.as_deref(), Some("unknown_session"));
        assert_eq!(responses[0].turn, 0);
        let parse_failure = AskResponse::failure(0, &ProtocolError::BadRequest("x".into()));
        assert_eq!(parse_failure.error_kind.as_deref(), Some("bad_request"));
        assert_eq!(parse_failure.turn, responses[0].turn, "both error shapes agree");
    }

    #[test]
    fn pinned_sessions_scope_every_turn_to_their_machine() {
        let config = ServeConfig {
            threads: Some(2),
            shards: 3,
            retriever: RetrieverKind::Ranger,
            machines: vec!["table2".into(), "small".into()],
            ..Default::default()
        };
        let engine = ServeEngine::build(config).expect("presets are valid");
        let a = engine.open_session_pinned(ScenarioSelector::all().with_machine("table2"));
        let b = engine.open_session_pinned(ScenarioSelector::all().with_machine("small"));
        assert_eq!(
            engine.pinned_scenario(a).unwrap().machine.as_deref(),
            Some("table2"),
            "pin recorded"
        );

        let q = "What is the estimated IPC for mcf under LRU?";
        let responses =
            engine.ask_round(&[AskRequest::in_session(a, q), AskRequest::in_session(b, q)]);
        assert!(responses.iter().all(AskResponse::is_ok));
        let on_a = responses[0].machine.as_deref().expect("scoped response cites its machine");
        let on_b = responses[1].machine.as_deref().expect("scoped response cites its machine");
        assert!(on_a.starts_with("table2@"), "session a answered from {on_a}");
        assert!(on_b.starts_with("small@"), "session b answered from {on_b}");

        // A request-level scenario overrides the session pin for one turn.
        let scoped = AskRequest::in_session(a, q)
            .with_scenario(ScenarioSelector::all().with_machine("small"));
        let overridden = engine.ask_round(&[scoped]).pop().unwrap();
        assert_eq!(
            overridden.machine.as_deref(),
            Some(on_b),
            "override answers from session b's machine"
        );
        assert_eq!(overridden.answer, responses[1].answer);
        // ... and the pin is untouched afterwards.
        assert_eq!(engine.pinned_scenario(a).unwrap().machine.as_deref(), Some("table2"));
    }

    #[test]
    fn v2_opening_requests_pin_their_scenario() {
        let config = ServeConfig {
            threads: Some(1),
            shards: 2,
            machines: vec!["small".into()],
            ..Default::default()
        };
        let engine = ServeEngine::build(config).expect("preset is valid");
        let open = AskRequest::new("What is the estimated IPC for mcf under LRU?")
            .with_scenario(ScenarioSelector::all().with_machine("small"));
        let response = engine.ask_round(&[open]).pop().unwrap();
        assert!(response.is_ok());
        let pinned = engine.pinned_scenario(response.session).expect("session opened");
        assert_eq!(pinned.machine.as_deref(), Some("small"), "opening scenario becomes the pin");
    }

    #[test]
    fn unknown_machine_presets_fail_the_build_cleanly() {
        let config = ServeConfig { machines: vec!["cray-1".into()], ..Default::default() };
        let err = ServeEngine::build(config).expect_err("unknown preset");
        assert_eq!(err, BuildError::UnknownMachine("cray-1".into()));
        assert!(err.to_string().contains("cray-1"));
    }

    #[test]
    fn rounds_record_turns_into_the_right_sessions() {
        let engine = engine(4);
        let a = engine.open_session();
        let b = engine.open_session();
        let round = vec![
            AskRequest::in_session(
                a,
                "What is the overall miss rate of the mcf workload under LRU?",
            ),
            AskRequest::in_session(b, "Which policy has the lowest miss rate in astar?"),
            AskRequest::in_session(a, "List all unique PCs in the mcf trace under LRU."),
        ];
        let responses = engine.ask_round(&round);
        assert_eq!(responses[0].turn, 1);
        assert_eq!(responses[1].turn, 1);
        assert_eq!(responses[2].turn, 2, "second question to session a is its turn 2");
        let ta = engine.transcript(a).unwrap();
        assert_eq!(ta.len(), 2);
        assert!(ta[1].0.contains("unique PCs"));
        assert_eq!(engine.transcript(b).unwrap().len(), 1);
    }

    #[test]
    fn close_removes_the_session_from_the_map() {
        use crate::protocol::Request;

        let engine = engine(2);
        let a = engine.open_session();
        let b = engine.open_session();
        engine.ask_round(&[AskRequest::in_session(
            a,
            "What is the overall miss rate of the mcf workload under LRU?",
        )]);
        assert_eq!(engine.session_count(), 2);

        let response = engine.handle_request(&Request::Close { session: a }).expect_ask();
        assert!(response.is_ok());
        assert!(response.closed);
        assert_eq!(response.turn, 1, "echoes the turns the session answered");
        assert_eq!(engine.session_count(), 1);
        assert_eq!(engine.transcript(a), None, "state is gone");
        assert_eq!(engine.pinned_scenario(a), None);

        // A closed id is thereafter unknown, to asks and closes alike.
        let again = engine.handle_request(&Request::Close { session: a }).expect_ask();
        assert_eq!(again.error_kind.as_deref(), Some("unknown_session"));
        assert!(!again.closed);
        let ask = engine.ask_round(&[AskRequest::in_session(a, "hello?")]).pop().unwrap();
        assert_eq!(ask.error_kind.as_deref(), Some("unknown_session"));

        // Ids are never reused: the next open continues the sequence.
        let c = engine.open_session();
        assert!(c > b, "ids must stay monotonic after a close");
    }

    #[test]
    fn prefetcher_pinned_sessions_answer_from_qualified_traces() {
        let config = ServeConfig {
            threads: Some(2),
            shards: 3,
            retriever: RetrieverKind::Ranger,
            machines: vec!["table2".into()],
            prefetchers: vec!["stride4".into()],
            ..Default::default()
        };
        let engine = ServeEngine::build(config).expect("presets and prefetchers valid");
        let pin = ScenarioSelector::parse("astar@table2+stride4/lru").expect("selector");
        let open = AskRequest::new("What is the estimated IPC?").with_scenario(pin.clone());
        let response = engine.ask_round(&[open]).pop().unwrap();
        assert!(response.is_ok(), "{:?}", response.error);
        assert_eq!(engine.pinned_scenario(response.session), Some(pin));
        let machine = response.machine.as_deref().expect("scoped response cites its machine");
        assert!(machine.starts_with("table2@"), "{machine}");
        assert_eq!(
            response.prefetcher.as_deref(),
            Some("stride4"),
            "scoped response cites the grounded prefetcher"
        );

        // The same session's baseline override drops the citation.
        let baseline = AskRequest::in_session(response.session, "What is the estimated IPC?")
            .with_scenario(ScenarioSelector::parse("astar@table2/lru").unwrap());
        let overridden = engine.ask_round(&[baseline]).pop().unwrap();
        assert_eq!(overridden.prefetcher, None, "baseline evidence cites no prefetcher");
        assert_ne!(overridden.answer, response.answer, "prefetch-aware IPC must differ");
    }

    #[test]
    fn unknown_prefetchers_fail_the_build_cleanly() {
        let config = ServeConfig { prefetchers: vec!["markov".into()], ..Default::default() };
        let err = ServeEngine::build(config).expect_err("unknown prefetcher");
        assert_eq!(err, BuildError::UnknownPrefetcher("markov".into()));
        assert!(err.to_string().contains("markov"));
    }

    #[test]
    fn from_snapshot_answers_like_a_fresh_build() {
        let config = ServeConfig { threads: Some(2), shards: 3, ..Default::default() };
        let db = TraceDatabaseBuilder::quick_demo()
            .shards(config.shards)
            .try_build_sharded()
            .expect("demo build");
        let path =
            std::env::temp_dir().join(format!("cachemind_engine_{}.snap", std::process::id()));
        db.save(&path).expect("save snapshot");
        let fresh = ServeEngine::over(db, config.clone());
        // Deliberately wrong shard count in the config: the snapshot's
        // physical layout must win.
        let loaded = ServeEngine::from_snapshot(&path, ServeConfig { shards: 999, ..config })
            .expect("snapshot loads");
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.config().shards, 3, "snapshot shard count wins");
        assert_eq!(loaded.store().len(), fresh.store().len());
        let q = "What is the overall miss rate of the mcf workload under LRU?";
        let a = fresh.handle(&AskRequest::new(q));
        let b = loaded.handle(&AskRequest::new(q));
        assert!(a.is_ok() && b.is_ok());
        assert_eq!(a.answer, b.answer, "snapshot-backed answers are byte-identical");
        assert_eq!(a.verdict, b.verdict);
    }

    #[test]
    fn missing_snapshots_fail_the_engine_cleanly() {
        let err = ServeEngine::from_snapshot("/nonexistent/engine.snap", ServeConfig::default())
            .expect_err("missing file");
        assert!(matches!(err, SnapshotError::Io { .. }), "{err}");
    }

    #[test]
    fn idle_sessions_are_reaped_after_the_configured_rounds() {
        let config = ServeConfig {
            threads: Some(1),
            shards: 3,
            max_idle_rounds: Some(2),
            ..Default::default()
        };
        let db = TraceDatabaseBuilder::quick_demo()
            .shards(config.shards)
            .try_build_sharded()
            .expect("demo build");
        let engine = ServeEngine::over(db, config);
        let active = engine.open_session();
        let idle = engine.open_session();
        assert_eq!(engine.session_count(), 2);

        let q = "What is the overall miss rate of the mcf workload under LRU?";
        // Round 1 touches only `active`; `idle` has sat out one round —
        // still within the two-round window.
        engine.ask_round(&[AskRequest::in_session(active, q)]);
        assert_eq!(engine.session_count(), 2, "one idle round survives a window of two");
        // Round 2: `idle` has now sat out two full rounds — reaped.
        engine.ask_round(&[AskRequest::in_session(active, q)]);
        assert_eq!(engine.session_count(), 1);
        assert_eq!(engine.transcript(idle), None, "reaped state is gone");
        let resp = engine.ask_round(&[AskRequest::in_session(idle, q)]).pop().unwrap();
        assert_eq!(
            resp.error_kind.as_deref(),
            Some("unknown_session"),
            "a reaped id fails exactly like a closed one"
        );

        // An `open` probe counts as activity: it resets the idle clock.
        let probed = engine.open_session();
        engine.ask_round(&[AskRequest::in_session(active, q)]);
        engine.open_request(Some(probed), None);
        engine.ask_round(&[AskRequest::in_session(active, q)]);
        assert!(engine.transcript(probed).is_some(), "probe refreshed the idle clock");
    }

    #[test]
    fn open_requests_tick_the_round_clock_and_reap_idle_sessions() {
        let config = ServeConfig {
            threads: Some(1),
            shards: 3,
            max_idle_rounds: Some(2),
            ..Default::default()
        };
        let db = TraceDatabaseBuilder::quick_demo()
            .shards(config.shards)
            .try_build_sharded()
            .expect("demo build");
        let engine = ServeEngine::over(db, config);

        // A session abandoned at round 0; all later traffic is opens and
        // probes only — the TCP-global-scope shape where no ask round
        // ever runs.
        let abandoned = engine.open_session();
        let first = engine.open_request(None, None); // round 1
        assert!(first.is_ok());
        assert_eq!(engine.session_count(), 2, "one idle round survives a window of two");
        let second = engine.open_request(None, None); // round 2: abandoned is 2 rounds idle
        assert!(second.is_ok());
        assert_eq!(engine.session_count(), 2, "opens-only traffic reaped the abandoned session");
        assert!(engine.transcript(abandoned).is_none(), "reaped state is gone");

        // A probe stamps its own session before reaping, so it is never
        // reaped by its own request.
        let probe = engine.open_request(Some(first.session), None); // round 3
        assert!(probe.is_ok());
        assert_eq!(probe.session, first.session);
        assert_eq!(engine.session_count(), 2);

        // Even a failed probe ticks the clock and reaps: `second` (last
        // active at round 2) falls to this round-4 tick.
        let missing = engine.open_request(Some(999), None); // round 4
        assert_eq!(missing.error_kind.as_deref(), Some("unknown_session"));
        assert_eq!(engine.session_count(), 1);
        assert!(engine.transcript(first.session).is_some(), "the probed session survived");
        assert!(engine.transcript(second.session).is_none());

        let stats = engine.stats_value();
        let reaped = stats.get("sessions").and_then(|s| s.get("reaped")).and_then(Value::as_u64);
        assert_eq!(reaped, Some(2), "both reaps counted");
    }

    #[test]
    fn stats_report_the_answer_cache() {
        let engine = engine(1);
        let q = "What is the overall miss rate of the mcf workload under LRU?";
        engine.handle(&AskRequest::new(q));
        engine.handle(&AskRequest::new(q));
        let stats = engine.stats_value();
        let cache = stats.get("cache").expect("stats v2 carries the cache object");
        let count = |key: &str| cache.get(key).and_then(Value::as_u64);
        assert_eq!(cache.get("enabled").and_then(Value::as_bool), Some(true));
        assert_eq!(count("entries"), Some(1), "one distinct question");
        assert_eq!(count("hits"), Some(1), "the repeat replayed the stored answer");
        assert_eq!(count("misses"), Some(1));
        assert_eq!(count("inserts"), Some(1));

        // A cache-off engine reports only the flag.
        let config =
            ServeConfig { threads: Some(1), shards: 3, answer_cache: false, ..Default::default() };
        let db = TraceDatabaseBuilder::quick_demo()
            .shards(config.shards)
            .try_build_sharded()
            .expect("demo build");
        let off = ServeEngine::over(db, config);
        off.handle(&AskRequest::new(q));
        let stats = off.stats_value();
        let cache = stats.get("cache").expect("cache object present even when disabled");
        assert_eq!(cache.get("enabled").and_then(Value::as_bool), Some(false));
        assert!(cache.get("hits").is_none(), "no counters for a disabled cache");
    }

    #[test]
    fn open_requests_acknowledge_without_burning_a_question() {
        use crate::protocol::Request;

        let config = ServeConfig {
            threads: Some(1),
            shards: 2,
            machines: vec!["small".into()],
            ..Default::default()
        };
        let engine = ServeEngine::build(config).expect("preset is valid");
        let pin = ScenarioSelector::all().with_machine("small");
        let resp = engine
            .handle_request(&Request::Open { session: None, scenario: Some(pin.clone()) })
            .expect_ask();
        assert!(resp.is_ok());
        assert_eq!(resp.turn, 0, "fresh opens acknowledge at turn 0");
        assert_eq!(resp.scenario.as_deref(), Some("@small"), "the pin comes back");
        assert_eq!(engine.pinned_scenario(resp.session), Some(pin));
        assert_eq!(engine.transcript(resp.session).unwrap().len(), 0, "no question burned");

        // After a turn, a probe echoes the pin and the turn count.
        let q = "What is the estimated IPC for mcf under LRU?";
        engine.ask_round(&[AskRequest::in_session(resp.session, q)]);
        let probe = engine
            .handle_request(&Request::Open { session: Some(resp.session), scenario: None })
            .expect_ask();
        assert!(probe.is_ok());
        assert_eq!(probe.session, resp.session);
        assert_eq!(probe.turn, 1);
        assert_eq!(probe.scenario.as_deref(), Some("@small"));
        assert_eq!(engine.transcript(resp.session).unwrap().len(), 1, "probe burned nothing");

        // Probing an unknown session fails in-band.
        let missing = engine
            .handle_request(&Request::Open { session: Some(999), scenario: None })
            .expect_ask();
        assert_eq!(missing.error_kind.as_deref(), Some("unknown_session"));
    }

    #[test]
    fn concurrent_closes_never_poison_the_engine() {
        let engine = engine(2);
        let ids: Vec<u64> = (0..6).map(|_| engine.open_session()).collect();
        let q = "What is the overall miss rate of the mcf workload under LRU?";
        let requests: Vec<AskRequest> =
            ids.iter().map(|id| AskRequest::in_session(*id, q)).collect();

        std::thread::scope(|scope| {
            let closer = scope.spawn(|| {
                for id in &ids {
                    let _ = engine.close_session(*id);
                }
            });
            // Rounds race the closer: every response must be either a real
            // answer or an in-band unknown-session failure — never a panic
            // or a poisoned lock.
            for _ in 0..3 {
                for response in engine.ask_round(&requests) {
                    assert!(
                        response.is_ok()
                            || response.error_kind.as_deref() == Some("unknown_session"),
                        "unexpected response shape: {response:?}"
                    );
                }
            }
            closer.join().expect("closer thread");
        });

        // The engine still serves fresh sessions after the churn.
        let after = engine.handle(&AskRequest::new(q));
        assert!(after.is_ok());
    }

    #[test]
    fn serve_line_reports_lifecycle_outcomes() {
        let engine = engine(1);
        let q = "What is the overall miss rate of the mcf workload under LRU?";

        // A session-less ask opens a session.
        let asked = engine.serve_line(&format!("{{\"question\": \"{q}\"}}"), false, "tcp", None);
        assert_eq!(asked.opened_session, Some(1));
        assert_eq!(asked.closed_session, None);
        assert!(!asked.shutdown);

        // A fresh open opens one; a probe of it does not.
        let opened = engine.serve_line("{\"open\": true}", false, "tcp", None);
        assert_eq!(opened.opened_session, Some(2));
        let probed = engine.serve_line("{\"open\": true, \"session\": 2}", false, "tcp", None);
        assert_eq!(probed.opened_session, None);

        // A successful close reports the closed session; a failed one
        // reports nothing.
        let closed = engine.serve_line("{\"close\": true, \"session\": 2}", false, "tcp", None);
        assert_eq!(closed.closed_session, Some(2));
        let refused = engine.serve_line("{\"close\": true, \"session\": 2}", false, "tcp", None);
        assert_eq!(refused.closed_session, None);
        assert!(refused.rendered.contains("unknown_session"), "{}", refused.rendered);

        // A shutdown line raises the flag and acknowledges in-band,
        // without counting as a request.
        let before = engine.stats_value();
        let shutdown = engine.serve_line("{\"shutdown\": true}", false, "tcp", None);
        assert!(shutdown.shutdown);
        assert_eq!(shutdown.rendered, "{\"shutdown\":true}");
        let after = engine.stats_value();
        assert_eq!(
            before.get("requests").unwrap().to_string(),
            after.get("requests").unwrap().to_string(),
            "shutdown is a transport control message, not a request"
        );
    }

    #[test]
    fn stats_lines_carry_their_transport_and_connection_context() {
        let engine = engine(1);
        let stdin = engine.handle_line("{\"stats\": true}", true);
        assert!(stdin.contains("\"transport\":\"stdin\""), "{stdin}");
        assert!(!stdin.contains("\"connection\""), "{stdin}");

        let mut conn = Value::object();
        conn.insert("id", Value::from(7u64));
        let tcp = engine.serve_line("{\"stats\": true}", true, "tcp", Some(conn));
        assert!(tcp.rendered.contains("\"transport\":\"tcp\""), "{}", tcp.rendered);
        assert!(tcp.rendered.contains("\"connection\":{\"id\":7}"), "{}", tcp.rendered);

        // Non-stats responses never carry the tag: ask bytes stay
        // transport-independent (the cross-transport determinism
        // contract).
        let q = "{\"question\": \"What is the overall miss rate of the mcf workload under LRU?\"}";
        let over_tcp = engine.serve_line(q, false, "tcp", None).rendered;
        assert!(!over_tcp.contains("transport"), "{over_tcp}");

        // The out-of-band writer shape matches the in-band one.
        let tagged = engine.stats_value_tagged("tcp");
        assert_eq!(tagged.get("transport").and_then(Value::as_str), Some("tcp"));
    }

    #[test]
    fn handle_matches_round_of_one() {
        let first = engine(2);
        let other = engine(2);
        let q = "Why does Belady outperform LRU in mcf?";
        let via_handle = first.handle(&AskRequest::new(q));
        let via_round = other.ask_round(&[AskRequest::new(q)]).pop().unwrap();
        assert_eq!(via_handle.answer, via_round.answer);
        assert_eq!(via_handle.verdict, via_round.verdict);
    }
}
