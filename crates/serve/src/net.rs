//! The TCP transport behind `cachemind-serve --tcp`: a real network
//! front-end over the same [`ServeEngine`] the stdin loop drives.
//!
//! # Thread topology
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!   TcpListener ──▶  │ acceptor thread (poll + admission control) │
//!                    └───────────────┬────────────────────────────┘
//!                                    │ register in the bounded
//!                                    ▼ connection table
//!        per connection: ┌────────┐     ┌────────┐
//!                        │ reader │     │ writer │
//!                        └───┬────┘     └───▲────┘
//!          frame newline-JSON│              │responses, reordered by
//!          lines, seq-number │              │per-connection sequence
//!          them              ▼              │number, then flushed
//!                    ┌──────────────────────┴─────┐
//!                    │ bounded work queue          │
//!                    │ → SERVE_NUM_THREADS workers │──▶ ServeEngine
//!                    └─────────────────────────────┘
//! ```
//!
//! * **Acceptor** — one thread polling a non-blocking [`TcpListener`].
//!   Each accepted socket passes admission control against the bounded
//!   connection table ([`NetConfig::max_connections`]): refused
//!   connections are answered with one in-band
//!   `error_kind:"overloaded"` line and closed, never silently dropped.
//! * **Reader** (per connection) — frames newline-delimited JSON request
//!   lines off the socket, assigns each a per-connection sequence
//!   number, and enqueues `(connection, seq, line)` work items into the
//!   bounded work queue. A full queue answers that line in-band with
//!   `error_kind:"overloaded"` on its own connection — the request is
//!   *not* processed, and the connection survives. Malformed lines are
//!   *not* a transport error either: they travel to the engine like any
//!   other line and come back as in-band `invalid_json`, exactly as on
//!   stdin. Only EOF or a socket error tears a connection down.
//! * **Workers** — `SERVE_NUM_THREADS` threads popping the shared queue
//!   and calling [`ServeEngine::serve_line`], so TCP traffic flows
//!   through the same parse/dispatch/render path (and the same metrics
//!   registry) as stdin traffic.
//! * **Writer** (per connection) — receives rendered responses, restores
//!   per-connection request order by sequence number (workers finish out
//!   of order), writes and flushes. One writer per socket means
//!   responses on a connection are never interleaved.
//!
//! # Session ownership
//!
//! Sessions opened over a connection belong to it under
//! [`SessionScope::Conn`] (the default): when the connection goes away,
//! its sessions are reaped (counted under `serve.net.sessions_reaped`).
//! [`SessionScope::Global`] matches stdin semantics — sessions outlive
//! the connection that opened them and ids are usable from any
//! connection.
//!
//! # Graceful shutdown
//!
//! [`TcpServer::shutdown`] (or an in-band `{"shutdown": true}` line)
//! stops accepting, lets every reader drain the complete lines it has
//! already buffered, waits for the workers to answer everything queued,
//! flushes every writer, then joins all threads — in-flight requests are
//! never dropped. The determinism contract carries over: answers are a
//! pure function of `(store, question, scope)`, so the load driver's
//! deterministic `--no-timing` report over TCP is byte-identical to the
//! stdin-mode report at any worker count.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use cachemind_obs::names;
use serde_json::Value;

use crate::engine::ServeEngine;
use crate::protocol::{AskResponse, ProtocolError};

/// How long a blocked reader waits before re-checking the shutdown flag.
/// Also bounds how stale an idle acceptor's view of the flag can be.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Who owns a session opened over a TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionScope {
    /// Sessions belong to the connection that opened them and are reaped
    /// when it disconnects (the default — a vanished client must not
    /// leak session state).
    Conn,
    /// Sessions outlive their connection, exactly as on stdin; any
    /// connection may address any session id.
    Global,
}

impl SessionScope {
    /// Parses the `--session-scope` flag value.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "conn" => Some(SessionScope::Conn),
            "global" => Some(SessionScope::Global),
            _ => None,
        }
    }
}

impl std::fmt::Display for SessionScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SessionScope::Conn => "conn",
            SessionScope::Global => "global",
        })
    }
}

/// TCP transport configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Admission bound on the connection table; connections past it are
    /// answered `error_kind:"overloaded"` and closed.
    pub max_connections: usize,
    /// Bound on the pending-request queue between the readers and the
    /// worker pool; lines past it are answered `error_kind:"overloaded"`
    /// in-band on their own connection.
    pub queue_capacity: usize,
    /// Who owns sessions opened over a connection.
    pub session_scope: SessionScope,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { max_connections: 64, queue_capacity: 256, session_scope: SessionScope::Conn }
    }
}

/// One framed request line waiting for a worker.
struct WorkItem {
    conn: Arc<ConnState>,
    seq: u64,
    line: String,
}

/// Messages into a connection's writer thread.
enum WriterMsg {
    /// One rendered response line, tagged with the request's
    /// per-connection sequence number.
    Response { seq: u64, line: String },
    /// The reader is done framing: exactly `total` responses will arrive
    /// in all (some possibly already have). The writer exits once it has
    /// written that many.
    Finish { total: u64 },
}

/// The bounded multi-producer/multi-consumer queue between the readers
/// and the worker pool. `try_push` never blocks — admission control
/// answers overload in-band instead of back-pressuring the socket into
/// an opaque stall.
struct WorkQueue {
    state: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    items: VecDeque<WorkItem>,
    capacity: usize,
    closed: bool,
}

impl WorkQueue {
    fn new(capacity: usize) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues unless the queue is full or closed; returns the item on
    /// refusal so the caller can answer it in-band.
    fn try_push(&self, item: WorkItem) -> Result<(), WorkItem> {
        let mut state = self.state.lock().expect("work queue lock");
        if state.closed || state.items.len() >= state.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed *and*
    /// drained — close never discards queued work.
    fn pop(&self) -> Option<WorkItem> {
        let mut state = self.state.lock().expect("work queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("work queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("work queue lock").closed = true;
        self.available.notify_all();
    }
}

/// Per-connection state shared between its reader, the workers, and the
/// connection table.
struct ConnState {
    id: u64,
    peer: String,
    writer_tx: mpsc::Sender<WriterMsg>,
    /// Sessions opened over this connection and not yet closed — the set
    /// [`SessionScope::Conn`] reaps at disconnect.
    owned: Mutex<BTreeSet<u64>>,
}

impl ConnState {
    /// The per-connection context stamped into stats responses served
    /// over this connection.
    fn context(&self) -> Value {
        let mut obj = Value::object();
        obj.insert("id", Value::from(self.id));
        obj.insert("peer", Value::from(self.peer.as_str()));
        obj
    }
}

/// Pre-registered `serve.net.*` metric handles, recording into the
/// engine's own registry so `{"stats": true}` over any transport sees
/// them.
#[derive(Clone)]
struct NetMetrics {
    accept: cachemind_obs::HistogramHandle,
    read: cachemind_obs::HistogramHandle,
    write: cachemind_obs::HistogramHandle,
    connections_open: cachemind_obs::Gauge,
    connections_accepted: cachemind_obs::Counter,
    connections_rejected: cachemind_obs::Counter,
    queue_rejected: cachemind_obs::Counter,
    bytes_in: cachemind_obs::Counter,
    bytes_out: cachemind_obs::Counter,
    sessions_reaped: cachemind_obs::Counter,
}

impl NetMetrics {
    fn new(registry: &cachemind_obs::MetricsRegistry) -> Self {
        NetMetrics {
            accept: registry.histogram(names::SERVE_NET_ACCEPT),
            read: registry.histogram(names::SERVE_NET_READ),
            write: registry.histogram(names::SERVE_NET_WRITE),
            connections_open: registry.gauge(names::SERVE_NET_CONNECTIONS_OPEN),
            connections_accepted: registry.counter(names::SERVE_NET_CONNECTIONS_ACCEPTED),
            connections_rejected: registry.counter(names::SERVE_NET_CONNECTIONS_REJECTED),
            queue_rejected: registry.counter(names::SERVE_NET_QUEUE_REJECTED),
            bytes_in: registry.counter(names::SERVE_NET_BYTES_IN),
            bytes_out: registry.counter(names::SERVE_NET_BYTES_OUT),
            sessions_reaped: registry.counter(names::SERVE_NET_SESSIONS_REAPED),
        }
    }
}

/// State shared by every thread of one server.
struct Shared {
    engine: Arc<ServeEngine>,
    config: NetConfig,
    /// The drain flag every loop polls: set once, never cleared.
    shutdown: AtomicBool,
    /// Wakes [`TcpServer::wait`] when shutdown is requested (from
    /// [`TcpServer::signal_shutdown`] or an in-band shutdown line).
    signal: (Mutex<bool>, Condvar),
    queue: WorkQueue,
    conns: Mutex<BTreeMap<u64, Arc<ConnState>>>,
    next_conn: AtomicU64,
    /// Reader + writer thread handles, joined at shutdown. Handles of
    /// already-finished threads are joined lazily here too — the vec is
    /// append-only until the final drain.
    conn_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    metrics: NetMetrics,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown: raises the drain flag and wakes `wait()`.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let (lock, condvar) = &self.signal;
        *lock.lock().expect("signal lock") = true;
        condvar.notify_all();
    }
}

/// One in-band overloaded failure, rendered for the wire.
fn overloaded_line(detail: String) -> String {
    AskResponse::failure(0, &ProtocolError::Overloaded(detail)).to_json(true)
}

/// A running TCP server over an engine. Dropping the server without
/// calling [`TcpServer::shutdown`] / [`TcpServer::wait`] shuts it down
/// gracefully too (drop joins every thread).
pub struct TcpServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stopped: bool,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the acceptor plus `engine.num_threads()` worker threads.
    pub fn start(
        engine: Arc<ServeEngine>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let metrics = NetMetrics::new(engine.metrics());
        let queue_capacity = config.queue_capacity;
        let shared = Arc::new(Shared {
            engine,
            config,
            shutdown: AtomicBool::new(false),
            signal: (Mutex::new(false), Condvar::new()),
            queue: WorkQueue::new(queue_capacity),
            conns: Mutex::new(BTreeMap::new()),
            next_conn: AtomicU64::new(1),
            conn_threads: Mutex::new(Vec::new()),
            metrics,
        });

        let workers = (0..shared.engine.num_threads())
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-net-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-net-acceptor".into())
                .spawn(move || acceptor_loop(&shared, listener))
                .expect("spawn acceptor thread")
        };

        Ok(TcpServer { shared, local_addr, acceptor: Some(acceptor), workers, stopped: false })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.shared.engine
    }

    /// Number of connections currently in the table.
    pub fn connection_count(&self) -> usize {
        self.shared.conns.lock().expect("connection table lock").len()
    }

    /// Requests a graceful shutdown without blocking — pair with
    /// [`TcpServer::wait`]. Also raised by an in-band
    /// `{"shutdown": true}` line.
    pub fn signal_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// A detached handle other threads (e.g. a stdin control loop) can
    /// use to request shutdown while the owning thread blocks in
    /// [`TcpServer::wait`].
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { shared: Arc::clone(&self.shared) }
    }

    /// Blocks until shutdown is requested (via
    /// [`TcpServer::signal_shutdown`] or an in-band shutdown line), then
    /// drains and joins everything.
    pub fn wait(mut self) {
        {
            let (lock, condvar) = &self.shared.signal;
            let mut signaled = lock.lock().expect("signal lock");
            while !*signaled {
                signaled = condvar.wait(signaled).expect("signal lock");
            }
        }
        self.stop();
    }

    /// Graceful shutdown: stop accepting, drain every in-flight request,
    /// flush every writer, join every thread.
    pub fn shutdown(mut self) {
        self.shared.request_shutdown();
        self.stop();
    }

    /// The drain sequence. Order matters:
    ///
    /// 1. acceptor exits (no new connections, no new reader threads);
    /// 2. readers exit (each drains the complete lines it already
    ///    buffered, then promises its writer a final response count);
    /// 3. the work queue closes *after* the last reader has pushed —
    ///    workers drain what is queued, answer it, then exit;
    /// 4. writers exit once they have written every promised response —
    ///    nothing in flight is dropped.
    fn stop(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.request_shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor thread");
        }
        // Readers and writers share one handle list; readers all exit on
        // the flag, writers exit on their drain counters (the workers
        // they depend on are still running here).
        let conn_threads =
            std::mem::take(&mut *self.shared.conn_threads.lock().expect("thread list lock"));
        for handle in conn_threads {
            handle.join().expect("connection thread");
        }
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            handle.join().expect("worker thread");
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A clonable shutdown trigger for a running [`TcpServer`] (see
/// [`TcpServer::shutdown_handle`]).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Requests a graceful shutdown, waking [`TcpServer::wait`].
    pub fn signal(&self) {
        self.shared.request_shutdown();
    }
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle").finish()
    }
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("local_addr", &self.local_addr)
            .field("stopped", &self.stopped)
            .finish()
    }
}

/// The acceptor: polls the non-blocking listener, applies admission
/// control, and spawns a reader/writer pair per admitted connection.
fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => accept_connection(shared, stream, peer),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => {
                // Transient accept errors (e.g. the peer aborted between
                // SYN and accept) must not kill the listener.
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

fn accept_connection(shared: &Arc<Shared>, stream: TcpStream, peer: SocketAddr) {
    let span = shared.metrics.accept.start_span();
    let mut conns = shared.conns.lock().expect("connection table lock");
    if conns.len() >= shared.config.max_connections {
        drop(conns);
        shared.metrics.connections_rejected.inc();
        let line = overloaded_line(format!(
            "connection table full (max {})",
            shared.config.max_connections
        ));
        let mut stream = stream;
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.write_all(b"\n");
        let _ = stream.flush();
        span.finish();
        return;
    }

    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            drop(conns);
            span.finish();
            return;
        }
    };
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        drop(conns);
        span.finish();
        return;
    }
    stream.set_nodelay(true).ok();

    let id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
    let (writer_tx, writer_rx) = mpsc::channel();
    let conn = Arc::new(ConnState {
        id,
        peer: peer.to_string(),
        writer_tx,
        owned: Mutex::new(BTreeSet::new()),
    });
    conns.insert(id, Arc::clone(&conn));
    drop(conns);
    shared.metrics.connections_accepted.inc();
    shared.metrics.connections_open.add(1);

    let reader = {
        let shared = Arc::clone(shared);
        let conn = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("serve-net-reader-{id}"))
            .spawn(move || reader_loop(&shared, &conn, stream))
            .expect("spawn reader thread")
    };
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("serve-net-writer-{id}"))
            .spawn(move || writer_loop(&shared, &conn, write_half, writer_rx))
            .expect("spawn writer thread")
    };
    shared.conn_threads.lock().expect("thread list lock").extend([reader, writer]);
    span.finish();
}

/// The per-connection reader: frames newline-JSON lines, seq-numbers
/// them, enqueues them for the workers (answering `overloaded` in-band
/// when the queue refuses), and finally promises the writer an exact
/// response count. On shutdown it drains the complete lines it has
/// already buffered before exiting — a read timeout (not a socket
/// shutdown) is what unblocks it, so no buffered request is discarded.
fn reader_loop(shared: &Arc<Shared>, conn: &Arc<ConnState>, mut stream: TcpStream) {
    let mut buffer: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 4096];
    let mut next_seq = 0u64;
    loop {
        // Frame every complete line currently buffered.
        while let Some(newline) = buffer.iter().position(|&b| b == b'\n') {
            let span = shared.metrics.read.start_span();
            let raw: Vec<u8> = buffer.drain(..=newline).collect();
            shared.metrics.bytes_in.add(raw.len() as u64);
            let line = String::from_utf8_lossy(&raw[..newline]).trim().to_string();
            if line.is_empty() {
                span.finish();
                continue;
            }
            let seq = next_seq;
            next_seq += 1;
            let item = WorkItem { conn: Arc::clone(conn), seq, line };
            if let Err(refused) = shared.queue.try_push(item) {
                shared.metrics.queue_rejected.inc();
                let line = overloaded_line(format!(
                    "pending-request queue full (capacity {})",
                    shared.config.queue_capacity
                ));
                let _ = conn.writer_tx.send(WriterMsg::Response { seq: refused.seq, line });
            }
            span.finish();
        }
        if shared.shutting_down() {
            break;
        }
        match stream.read(&mut scratch) {
            Ok(0) => break,
            Ok(n) => buffer.extend_from_slice(&scratch[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let _ = conn.writer_tx.send(WriterMsg::Finish { total: next_seq });
}

/// A worker: pops framed lines and serves them through the engine's
/// shared line path, tracking session ownership per connection and
/// honouring in-band shutdown requests.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(item) = shared.queue.pop() {
        let outcome = shared.engine.serve_line(&item.line, true, "tcp", Some(item.conn.context()));
        if let Some(id) = outcome.opened_session {
            item.conn.owned.lock().expect("owned set lock").insert(id);
        }
        if let Some(id) = outcome.closed_session {
            item.conn.owned.lock().expect("owned set lock").remove(&id);
        }
        if outcome.shutdown {
            shared.request_shutdown();
        }
        let _ =
            item.conn.writer_tx.send(WriterMsg::Response { seq: item.seq, line: outcome.rendered });
    }
}

/// The per-connection writer: restores request order by sequence number,
/// writes + flushes each response, and — once every promised response is
/// on the wire — tears the connection down (reaping its sessions under
/// [`SessionScope::Conn`]).
fn writer_loop(
    shared: &Arc<Shared>,
    conn: &Arc<ConnState>,
    stream: TcpStream,
    rx: mpsc::Receiver<WriterMsg>,
) {
    let mut out = BufWriter::new(stream);
    let mut pending: BTreeMap<u64, String> = BTreeMap::new();
    let mut next_seq = 0u64;
    let mut written = 0u64;
    let mut finish_total: Option<u64> = None;
    loop {
        if finish_total == Some(written) {
            break;
        }
        let Ok(msg) = rx.recv() else { break };
        match msg {
            WriterMsg::Response { seq, line } => {
                pending.insert(seq, line);
                while let Some(line) = pending.remove(&next_seq) {
                    let span = shared.metrics.write.start_span();
                    // Write errors mean the client is gone; keep
                    // consuming so the drain accounting still completes.
                    if out.write_all(line.as_bytes()).is_ok() && out.write_all(b"\n").is_ok() {
                        let _ = out.flush();
                        shared.metrics.bytes_out.add(line.len() as u64 + 1);
                    }
                    span.finish();
                    next_seq += 1;
                    written += 1;
                }
            }
            WriterMsg::Finish { total } => finish_total = Some(total),
        }
    }
    teardown_connection(shared, conn);
}

/// Removes a finished connection from the table and reaps the sessions
/// it still owns under [`SessionScope::Conn`].
fn teardown_connection(shared: &Shared, conn: &ConnState) {
    shared.conns.lock().expect("connection table lock").remove(&conn.id);
    shared.metrics.connections_open.add(-1);
    if shared.config.session_scope == SessionScope::Conn {
        let owned = std::mem::take(&mut *conn.owned.lock().expect("owned set lock"));
        for session in owned {
            if shared.engine.close_session(session).is_ok() {
                shared.metrics.sessions_reaped.inc();
            }
        }
    }
}

/// Sends one `{"shutdown": true}` line to a running server and returns
/// its acknowledgement — the client half of `--shutdown-server`.
pub fn send_shutdown(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"{\"shutdown\": true}\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response.trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use cachemind_tracedb::TraceDatabaseBuilder;

    fn test_conn() -> Arc<ConnState> {
        let (writer_tx, _rx) = mpsc::channel();
        Arc::new(ConnState {
            id: 1,
            peer: "test".into(),
            writer_tx,
            owned: Mutex::new(BTreeSet::new()),
        })
    }

    fn item(seq: u64) -> WorkItem {
        WorkItem { conn: test_conn(), seq, line: format!("line {seq}") }
    }

    #[test]
    fn work_queue_bounds_admission_and_preserves_order() {
        let queue = WorkQueue::new(2);
        assert!(queue.try_push(item(0)).is_ok());
        assert!(queue.try_push(item(1)).is_ok());
        // The third is refused and handed back intact for the in-band
        // overloaded answer.
        let refused = queue.try_push(item(2)).expect_err("queue is full");
        assert_eq!(refused.seq, 2);
        assert_eq!(refused.line, "line 2");
        // Draining frees capacity again — clean recovery.
        assert_eq!(queue.pop().expect("queued").seq, 0);
        assert!(queue.try_push(item(3)).is_ok());
        assert_eq!(queue.pop().expect("queued").seq, 1);
        assert_eq!(queue.pop().expect("queued").seq, 3);
    }

    #[test]
    fn work_queue_close_drains_but_never_discards() {
        let queue = WorkQueue::new(4);
        assert!(queue.try_push(item(0)).is_ok());
        assert!(queue.try_push(item(1)).is_ok());
        queue.close();
        // Push after close is refused...
        assert!(queue.try_push(item(2)).is_err());
        // ... but what was queued still drains before the None.
        assert_eq!(queue.pop().expect("queued").seq, 0);
        assert_eq!(queue.pop().expect("queued").seq, 1);
        assert!(queue.pop().is_none());
        assert!(queue.pop().is_none(), "closed-and-empty is terminal");
    }

    #[test]
    fn work_queue_pop_blocks_until_pushed() {
        let queue = Arc::new(WorkQueue::new(4));
        let popper = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop().map(|i| i.seq))
        };
        std::thread::sleep(Duration::from_millis(10));
        assert!(queue.try_push(item(7)).is_ok());
        assert_eq!(popper.join().expect("popper thread"), Some(7));
    }

    #[test]
    fn session_scope_parses_the_flag_values() {
        assert_eq!(SessionScope::parse("conn"), Some(SessionScope::Conn));
        assert_eq!(SessionScope::parse("global"), Some(SessionScope::Global));
        assert_eq!(SessionScope::parse("session"), None);
        assert_eq!(SessionScope::Conn.to_string(), "conn");
        assert_eq!(SessionScope::Global.to_string(), "global");
        assert_eq!(NetConfig::default().session_scope, SessionScope::Conn);
    }

    #[test]
    fn server_starts_serves_one_line_and_shuts_down() {
        let config = ServeConfig { threads: Some(2), shards: 2, ..Default::default() };
        let db = TraceDatabaseBuilder::quick_demo()
            .shards(config.shards)
            .try_build_sharded()
            .expect("demo build");
        let engine = Arc::new(ServeEngine::over(db, config));
        let server = TcpServer::start(Arc::clone(&engine), "127.0.0.1:0", NetConfig::default())
            .expect("bind ephemeral port");
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                b"{\"question\": \"What is the overall miss rate of the mcf workload under LRU?\"}\n",
            )
            .expect("send");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).expect("response line");
        assert!(line.contains("\"answer\""), "{line}");
        assert!(line.contains("\"session\":1"), "{line}");
        drop(reader);
        drop(stream);

        server.shutdown();
        assert_eq!(engine.session_count(), 0, "conn scope reaps the session at teardown");
    }
}
