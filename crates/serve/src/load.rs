//! The synthetic load driver: N sessions × M questions, answered in
//! batched rounds, with a JSON throughput/latency report.
//!
//! Question synthesis is a pure function of `(store, session, turn)` —
//! templates cycle over the store's real workloads, policies and trace
//! rows — so a run is fully reproducible. The report separates
//! deterministic content (answers, transcripts, aggregate counters) from
//! wall-clock content (throughput, latency percentiles); the former is
//! byte-identical across `SERVE_NUM_THREADS`, the latter seeds
//! `BENCH_serve.json`.

use serde_json::Value;

use cachemind_core::system::RetrieverKind;
use cachemind_tracedb::store::TraceStore;
use cachemind_tracedb::ScenarioSelector;

use crate::engine::ServeEngine;
use crate::protocol::{AskRequest, AskResponse};

/// Load-driver shape: how many sessions, how many questions each, and —
/// for protocol-v2 runs — which scenario each session pins at open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadSpec {
    /// Concurrent sessions to open.
    pub sessions: usize,
    /// Questions per session (one per round).
    pub questions: usize,
    /// Scenario selectors pinned to sessions round-robin (session `s`
    /// pins `scenarios[s % len]`). Empty = the v1 driver: unscoped
    /// sessions, byte-identical to the pre-v2 run.
    pub scenarios: Vec<ScenarioSelector>,
    /// Repeated-question period (`--repeat-period`): `0` keeps every turn
    /// distinct (the classic driver, byte-identical); `N > 0` makes turn
    /// `t` re-ask the question of turn `t % N`, so a drive of `M`
    /// questions per session asks only `min(M, N)` distinct ones — the
    /// mix that exercises the whole-answer cache.
    pub repeat_period: usize,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec { sessions: 8, questions: 4, scenarios: Vec::new(), repeat_period: 0 }
    }
}

impl LoadSpec {
    /// The scenario session `s` pins (unscoped when no scenarios are
    /// configured).
    pub fn pin_for(&self, session: usize) -> ScenarioSelector {
        if self.scenarios.is_empty() {
            ScenarioSelector::all()
        } else {
            self.scenarios[session % self.scenarios.len()].clone()
        }
    }

    /// The turn whose question turn `t` actually asks — `t` itself, or
    /// `t % repeat_period` when a repeat period is configured.
    pub fn question_turn(&self, turn: usize) -> usize {
        if self.repeat_period > 0 {
            turn % self.repeat_period
        } else {
            turn
        }
    }
}

/// The checksum the aggregate report uses to pin every answer without
/// embedding megabytes of text twice — the workspace's shared FNV-1a.
pub use cachemind_tracedb::store::fnv64;

/// The deterministic question a given `(session, turn)` asks, synthesized
/// from the store's actual vocabulary and trace rows.
pub fn synthetic_question(store: &dyn TraceStore, session: usize, turn: usize) -> String {
    let workloads = store.workloads();
    let policies = store.policies();
    assert!(!workloads.is_empty() && !policies.is_empty(), "load driver needs a populated store");
    let workload = &workloads[(session + turn) % workloads.len()];
    let policy = &policies[(session + 3 * turn) % policies.len()];
    let entry = store
        .get(&format!("{workload}_evictions_{policy}"))
        .expect("builder produced every workload x policy pair");
    let rows = entry.frame.rows();
    let row = &rows[(7 * session + 13 * turn) % rows.len()];
    match (session + 2 * turn) % 6 {
        0 => format!("What is the overall miss rate of the {workload} workload under {policy}?"),
        1 => format!("How many times did PC {} appear in {workload} under {policy}?", row.pc),
        2 => format!(
            "Does the memory access with PC {} and address {} result in a cache hit or \
             cache miss for the {workload} workload and {policy} replacement policy?",
            row.pc, row.address
        ),
        3 => format!("Which policy has the lowest miss rate for the {workload} workload?"),
        4 => format!("List all unique PCs in the {workload} trace under {policy}."),
        _ => format!("Why does belady outperform lru on PC {} in {workload}?", row.pc),
    }
}

/// The deterministic question a scenario-pinned `(session, turn)` asks.
/// Unscoped sessions fall through to [`synthetic_question`] (the v1
/// driver, byte-identical); pinned sessions rotate through an IPC-heavy
/// template set, so their answers exercise the per-machine scenario
/// sentences the pin selects.
pub fn synthetic_question_scoped(
    store: &dyn TraceStore,
    session: usize,
    turn: usize,
    pin: &ScenarioSelector,
) -> String {
    if pin.is_unscoped() {
        return synthetic_question(store, session, turn);
    }
    let workloads = store.workloads();
    let policies = store.policies();
    assert!(!workloads.is_empty() && !policies.is_empty(), "load driver needs a populated store");
    let workload = &workloads[(session + turn) % workloads.len()];
    let policy = &policies[(session + 3 * turn) % policies.len()];
    // `session + turn` (not `+ 2 * turn`): every session walks all four
    // templates, so every pinned session asks at least one IPC question.
    match (session + turn) % 4 {
        0 => format!("What is the estimated IPC for {workload} under {policy}?"),
        1 => format!("What is the overall miss rate of the {workload} workload under {policy}?"),
        2 => format!("Which policy gives the highest IPC on {workload}?"),
        _ => format!("Which policy has the lowest miss rate for the {workload} workload?"),
    }
}

/// How the engine behind a load run came up: built in-process or loaded
/// from an on-disk snapshot — and how long that took. Wall-clock content,
/// so it renders only in the report's `timing` block (the deterministic
/// half stays byte-identical across startup modes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartupTiming {
    /// `"build"` (simulated at startup) or `"snapshot"` (loaded from a
    /// file written by `cachemind-serve --build-db`).
    pub source: String,
    /// Microseconds from startup start to a ready engine.
    pub micros: u64,
    /// For snapshot startups run with `--startup-compare`: how long the
    /// equivalent in-process build took, the denominator of the snapshot
    /// speedup.
    pub reference_build_micros: Option<u64>,
}

/// Everything a load-driver run produced.
#[derive(Debug)]
pub struct LoadOutcome {
    /// The driven shape.
    pub spec: LoadSpec,
    /// `questions[s][t]` — the question session `s` asked on turn `t`.
    pub questions: Vec<Vec<String>>,
    /// `responses[s][t]` — the matching response.
    pub responses: Vec<Vec<AskResponse>>,
    /// Wall-clock time for all rounds, in microseconds.
    pub total_micros: u64,
    /// How the engine came up, when the caller measured it (the serve
    /// binary does; library callers may leave `None`).
    pub startup: Option<StartupTiming>,
    /// How the questions travelled: `"stdin"` (in-process rounds, the
    /// classic driver) or `"tcp"` (real socket round-trips via
    /// [`run_load_driver_tcp`]). Rendered in the report's `timing` block
    /// only — the deterministic half must stay byte-identical across
    /// transports, which is exactly what the cross-transport CI `cmp`
    /// checks.
    pub transport: String,
}

impl LoadOutcome {
    /// Every per-request latency, ascending.
    pub fn sorted_latencies(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self.responses.iter().flatten().map(|r| r.micros).collect();
        all.sort_unstable();
        all
    }

    /// Number of requests answered without error.
    pub fn answered(&self) -> usize {
        self.responses.iter().flatten().filter(|r| r.is_ok()).count()
    }

    /// Number of error responses.
    pub fn errors(&self) -> usize {
        self.responses.iter().flatten().filter(|r| !r.is_ok()).count()
    }

    /// The deterministic half of the report: configuration echo, per-turn
    /// answers, and aggregate counters. Byte-identical across
    /// `SERVE_NUM_THREADS` (no thread count, no wall-clock content).
    pub fn deterministic_value(&self, engine: &ServeEngine) -> Value {
        let config = engine.config();
        let mut conf = Value::object();
        conf.insert(
            "retriever",
            Value::from(match config.retriever {
                RetrieverKind::Sieve => "sieve",
                RetrieverKind::Ranger => "ranger",
                RetrieverKind::Dense => "dense",
            }),
        );
        conf.insert("backend", Value::from(config.backend.label()));
        conf.insert("scale", Value::from(format!("{:?}", config.scale).to_lowercase()));
        conf.insert("shards", Value::from(engine.store().shard_count()));
        conf.insert("traces", Value::from(engine.store().len()));

        let mut sessions = Vec::new();
        let mut answer_bytes = 0usize;
        let mut digest: u64 = fnv64(&[]);
        let mut verdicts: std::collections::BTreeMap<String, usize> = Default::default();
        for (s, (qs, rs)) in self.questions.iter().zip(&self.responses).enumerate() {
            let pin = self.spec.pin_for(s);
            let mut turns = Vec::new();
            for (t, (question, response)) in qs.iter().zip(rs).enumerate() {
                let mut turn = Value::object();
                turn.insert("turn", Value::from(t + 1));
                turn.insert("question", Value::from(question.as_str()));
                if let Some(answer) = &response.answer {
                    turn.insert("answer", Value::from(answer.as_str()));
                    answer_bytes += answer.len();
                    digest = fnv64(format!("{s}:{t}:{answer}:{digest:016x}").as_bytes());
                }
                if let Some(verdict) = &response.verdict {
                    turn.insert("verdict", Value::from(verdict.as_str()));
                    let kind = verdict.split(['(', ' ']).next().unwrap_or("?").to_owned();
                    *verdicts.entry(kind).or_default() += 1;
                }
                if let Some(machine) = &response.machine {
                    turn.insert("machine", Value::from(machine.as_str()));
                }
                if let Some(prefetcher) = &response.prefetcher {
                    turn.insert("prefetcher", Value::from(prefetcher.as_str()));
                }
                if let Some(error) = &response.error {
                    turn.insert("error", Value::from(error.as_str()));
                }
                turns.push(turn);
            }
            let mut sess = Value::object();
            sess.insert("id", Value::from(rs.first().map(|r| r.session).unwrap_or(0)));
            if !pin.is_unscoped() {
                // v2 runs record each session's pinned scenario; v1 runs
                // keep the legacy report bytes exactly.
                sess.insert("scenario", Value::from(pin.to_string().as_str()));
            }
            sess.insert("turns", Value::Array(turns));
            sessions.push(sess);
        }

        let mut verdict_counts = Value::object();
        for (kind, count) in verdicts {
            verdict_counts.insert(&kind, Value::from(count));
        }
        let mut aggregate = Value::object();
        aggregate.insert("sessions", Value::from(self.spec.sessions));
        aggregate.insert("questions_per_session", Value::from(self.spec.questions));
        aggregate.insert("questions", Value::from(self.spec.sessions * self.spec.questions));
        if self.spec.repeat_period > 0 {
            // Recorded only when configured, so classic (period-0) reports
            // keep their legacy bytes exactly.
            aggregate.insert("repeat_period", Value::from(self.spec.repeat_period));
        }
        aggregate.insert("answered", Value::from(self.answered()));
        aggregate.insert("errors", Value::from(self.errors()));
        aggregate.insert("answer_bytes", Value::from(answer_bytes));
        aggregate.insert("answers_fnv64", Value::from(format!("{digest:016x}")));
        aggregate.insert("verdicts", verdict_counts);

        let mut root = Value::object();
        root.insert("config", conf);
        root.insert("aggregate", aggregate);
        root.insert("sessions", Value::Array(sessions));
        root
    }

    /// The full report: deterministic content plus the wall-clock `timing`
    /// block (worker count, throughput, latency percentiles).
    pub fn report_value(&self, engine: &ServeEngine) -> Value {
        let mut root = self.deterministic_value(engine);
        let latencies = self.sorted_latencies();
        let percentile = |q: f64| -> u64 {
            if latencies.is_empty() {
                return 0;
            }
            let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
            latencies[idx]
        };
        let questions = (self.spec.sessions * self.spec.questions).max(1);
        let seconds = self.total_micros as f64 / 1_000_000.0;
        let mut latency = Value::object();
        latency.insert("p50", Value::from(percentile(0.50)));
        latency.insert("p95", Value::from(percentile(0.95)));
        latency.insert("p99", Value::from(percentile(0.99)));
        latency.insert("max", Value::from(latencies.last().copied().unwrap_or(0)));
        let mut timing = Value::object();
        timing.insert("transport", Value::from(self.transport.as_str()));
        timing.insert("threads", Value::from(engine.num_threads()));
        if let Some(startup) = &self.startup {
            let mut s = Value::object();
            s.insert("source", Value::from(startup.source.as_str()));
            s.insert("micros", Value::from(startup.micros));
            if let Some(build) = startup.reference_build_micros {
                s.insert("reference_build_micros", Value::from(build));
            }
            timing.insert("startup", s);
        }
        timing.insert("total_micros", Value::from(self.total_micros));
        timing.insert(
            "throughput_qps",
            Value::from(if seconds > 0.0 { questions as f64 / seconds } else { 0.0 }),
        );
        timing.insert("latency_micros", latency);
        // The engine's full metrics snapshot (per-stage histograms, request
        // counters) — wall-clock content, so it lives under `timing` and
        // never leaks into the deterministic half.
        timing.insert("metrics", engine.metrics().snapshot().to_value());
        root.insert("timing", timing);
        root
    }

    /// Renders the report as pretty JSON; `with_timing` selects between
    /// the full report and the deterministic half.
    pub fn render(&self, engine: &ServeEngine, with_timing: bool) -> String {
        let value =
            if with_timing { self.report_value(engine) } else { self.deterministic_value(engine) };
        serde_json::to_string_pretty(&value).expect("shim serialization is infallible")
    }
}

/// Replays `spec.sessions × spec.questions` synthetic questions through
/// the engine, one batched round per turn (every session's next question
/// answered together). With `spec.scenarios` set, session `s` opens
/// pinned to `scenarios[s % len]` and asks the scenario-aware question
/// set; without, this is the v1 driver bit-for-bit.
pub fn run_load_driver(engine: &ServeEngine, spec: LoadSpec) -> LoadOutcome {
    let session_ids: Vec<u64> =
        (0..spec.sessions).map(|s| engine.open_session_pinned(spec.pin_for(s))).collect();
    let questions: Vec<Vec<String>> = (0..spec.sessions)
        .map(|s| {
            let pin = spec.pin_for(s);
            (0..spec.questions)
                .map(|t| synthetic_question_scoped(engine.store(), s, spec.question_turn(t), &pin))
                .collect()
        })
        .collect();

    let mut responses: Vec<Vec<AskResponse>> =
        (0..spec.sessions).map(|_| Vec::with_capacity(spec.questions)).collect();
    // Driver timing rides the engine's metrics registry: one span for the
    // whole drive (its return value is the report's `total_micros`) and one
    // `serve.round` sample per batched turn.
    let drive_span = engine.metrics().span(cachemind_obs::names::SERVE_LOAD_DRIVE);
    for turn in 0..spec.questions {
        let round_span = engine.metrics().span(cachemind_obs::names::SERVE_ROUND);
        let round: Vec<AskRequest> = session_ids
            .iter()
            .enumerate()
            .map(|(s, id)| AskRequest::in_session(*id, questions[s][turn].clone()))
            .collect();
        for (s, response) in engine.ask_round(&round).into_iter().enumerate() {
            responses[s].push(response);
        }
        round_span.finish();
    }
    let total_micros = drive_span.finish();

    LoadOutcome {
        spec,
        questions,
        responses,
        total_micros,
        startup: None,
        transport: "stdin".into(),
    }
}

/// Replays the same `spec.sessions × spec.questions` synthetic load
/// against a *running* TCP server (`cachemind-serve --tcp`), measuring
/// real socket round-trips.
///
/// `engine` is a local reference engine over the same database the
/// server fronts — it synthesizes the questions (a pure function of the
/// store) and supplies the report's configuration echo; no request is
/// answered through it.
///
/// Sessions are opened *serially, in session order* over one connection
/// each, so a fresh server assigns ids 1..N exactly as the in-process
/// driver would — the keystone of cross-transport byte-identity. The ask
/// phase then runs every connection concurrently, each asking its
/// questions in lockstep (send, await response, repeat), so per-session
/// turn order matches the in-process rounds while the server sees real
/// concurrent traffic. Per-request latencies are client-measured
/// round-trip times; they (and everything else wall-clock) stay out of
/// the deterministic report.
pub fn run_load_driver_tcp(
    engine: &ServeEngine,
    spec: LoadSpec,
    addr: impl std::net::ToSocketAddrs,
) -> std::io::Result<LoadOutcome> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn protocol_io_error(detail: impl std::fmt::Display) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, detail.to_string())
    }

    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| protocol_io_error("server address resolved to nothing"))?;

    let questions: Vec<Vec<String>> = (0..spec.sessions)
        .map(|s| {
            let pin = spec.pin_for(s);
            (0..spec.questions)
                .map(|t| synthetic_question_scoped(engine.store(), s, spec.question_turn(t), &pin))
                .collect()
        })
        .collect();

    struct Client {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
        session: u64,
    }

    fn round_trip(client: &mut Client, line: &str) -> std::io::Result<String> {
        client.stream.write_all(line.as_bytes())?;
        client.stream.write_all(b"\n")?;
        client.stream.flush()?;
        let mut response = String::new();
        if client.reader.read_line(&mut response)? == 0 {
            return Err(protocol_io_error("server closed the connection mid-drive"));
        }
        Ok(response.trim().to_string())
    }

    // Phase 1 (serial): one connection per session, opened in session
    // order, so the server's id assignment replays the in-process
    // driver's exactly.
    let mut clients = Vec::with_capacity(spec.sessions);
    for s in 0..spec.sessions {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client { stream, reader, session: 0 };
        let pin = spec.pin_for(s);
        let open = crate::protocol::Request::Open {
            session: None,
            scenario: (!pin.is_unscoped()).then_some(pin),
        };
        let response = round_trip(&mut client, &open.to_json())?;
        let opened = AskResponse::from_json(&response).map_err(protocol_io_error)?;
        if !opened.is_ok() {
            return Err(protocol_io_error(format!("open refused: {response}")));
        }
        client.session = opened.session;
        clients.push(client);
    }

    // Phase 2 (concurrent): every connection asks its questions in
    // lockstep, all connections in flight at once.
    let drive_span = engine.metrics().span(cachemind_obs::names::SERVE_LOAD_DRIVE);
    let responses: std::io::Result<Vec<Vec<AskResponse>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(s, mut client)| {
                let questions = &questions[s];
                scope.spawn(move || -> std::io::Result<Vec<AskResponse>> {
                    let mut answered = Vec::with_capacity(questions.len());
                    for question in questions {
                        let request = AskRequest::in_session(client.session, question.clone());
                        let started = std::time::Instant::now();
                        let line = round_trip(&mut client, &request.to_json())?;
                        let rtt = started.elapsed().as_micros() as u64;
                        let mut response =
                            AskResponse::from_json(&line).map_err(protocol_io_error)?;
                        // The latency that matters over TCP is the full
                        // client-observed round trip, not the server-side
                        // answering slice.
                        response.micros = rtt;
                        answered.push(response);
                    }
                    Ok(answered)
                })
            })
            .collect();
        handles.into_iter().map(|handle| handle.join().expect("client thread")).collect()
    });
    let responses = responses?;
    let total_micros = drive_span.finish();

    Ok(LoadOutcome {
        spec,
        questions,
        responses,
        total_micros,
        startup: None,
        transport: "tcp".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use cachemind_tracedb::TraceDatabaseBuilder;

    fn engine(threads: usize) -> ServeEngine {
        let config = ServeConfig { threads: Some(threads), shards: 3, ..Default::default() };
        let db = TraceDatabaseBuilder::quick_demo()
            .shards(config.shards)
            .try_build_sharded()
            .expect("demo build");
        ServeEngine::over(db, config)
    }

    #[test]
    fn synthetic_questions_are_pure_and_varied() {
        let eng = engine(1);
        let engine = &eng;
        let a = synthetic_question(engine.store(), 2, 1);
        let b = synthetic_question(engine.store(), 2, 1);
        assert_eq!(a, b, "synthesis must be a pure function");
        let distinct: std::collections::BTreeSet<String> = (0..4)
            .flat_map(|s| (0..4).map(move |t| (s, t)))
            .map(|(s, t)| synthetic_question(engine.store(), s, t))
            .collect();
        assert!(distinct.len() >= 8, "templates should spread: {}", distinct.len());
    }

    #[test]
    fn load_driver_answers_everything() {
        let engine = engine(2);
        let outcome = run_load_driver(
            &engine,
            LoadSpec { sessions: 3, questions: 2, scenarios: vec![], repeat_period: 0 },
        );
        assert_eq!(outcome.answered(), 6);
        assert_eq!(outcome.errors(), 0);
        assert_eq!(engine.session_count(), 3);
        for (s, per_session) in outcome.responses.iter().enumerate() {
            for (t, response) in per_session.iter().enumerate() {
                assert_eq!(response.turn, t + 1, "session {s} turn {t}");
            }
        }
        let rendered = outcome.render(&engine, true);
        assert!(rendered.contains("\"throughput_qps\""));
        assert!(rendered.contains("\"transport\": \"stdin\""), "{rendered}");
        let deterministic = outcome.render(&engine, false);
        assert!(!deterministic.contains("micros"));
        assert!(!deterministic.contains("threads"));
        assert!(!deterministic.contains("scenario"), "v1 reports carry no scenario field");
        assert!(!deterministic.contains("transport"), "transport is timing-block content");
    }

    #[test]
    fn repeat_period_recycles_questions_and_hits_the_answer_cache() {
        let engine = engine(2);
        let spec = LoadSpec { sessions: 2, questions: 6, repeat_period: 3, ..Default::default() };
        let outcome = run_load_driver(&engine, spec);
        assert_eq!(outcome.errors(), 0);
        for s in 0..2 {
            for t in 3..6 {
                assert_eq!(
                    outcome.questions[s][t],
                    outcome.questions[s][t - 3],
                    "turn {t} re-asks turn {}",
                    t - 3
                );
                assert_eq!(
                    outcome.responses[s][t].answer,
                    outcome.responses[s][t - 3].answer,
                    "repeated questions replay identical answers"
                );
            }
        }
        // The repeated half of the drive hit the engine's answer cache:
        // 2 sessions ask the same 3-question schedule offset by session,
        // so every turn past the first period is a replay.
        let snap = engine.metrics().snapshot();
        assert!(
            snap.counter(cachemind_obs::names::RETRIEVAL_CACHE_HITS) >= 6,
            "the second period replays stored answers"
        );
        // The period is recorded in the deterministic report; period-0
        // runs keep the legacy bytes.
        let report = outcome.render(&engine, false);
        assert!(report.contains("\"repeat_period\": 3"), "{report}");
        let plain =
            run_load_driver(&engine, LoadSpec { sessions: 1, questions: 1, ..Default::default() });
        assert!(!plain.render(&engine, false).contains("repeat_period"));
    }

    #[test]
    fn startup_timing_renders_only_in_the_timing_block() {
        let engine = engine(1);
        let mut outcome = run_load_driver(
            &engine,
            LoadSpec { sessions: 1, questions: 1, scenarios: vec![], repeat_period: 0 },
        );
        outcome.startup = Some(StartupTiming {
            source: "snapshot".into(),
            micros: 1234,
            reference_build_micros: Some(99999),
        });
        let full = outcome.render(&engine, true);
        assert!(full.contains("\"startup\""), "{full}");
        assert!(full.contains("\"source\": \"snapshot\""), "{full}");
        assert!(full.contains("\"reference_build_micros\": 99999"), "{full}");
        let deterministic = outcome.render(&engine, false);
        assert!(!deterministic.contains("startup"), "startup timing is wall-clock content");
        assert!(!deterministic.contains("snapshot"));
    }

    #[test]
    fn scenario_pinned_driver_cites_per_machine_answers() {
        use crate::engine::ServeConfig;
        use cachemind_core::system::RetrieverKind;

        let config = ServeConfig {
            threads: Some(2),
            shards: 3,
            retriever: RetrieverKind::Ranger,
            machines: vec!["table2".into(), "small".into()],
            ..Default::default()
        };
        let engine = ServeEngine::build(config).expect("presets valid");
        let spec = LoadSpec {
            sessions: 2,
            questions: 4,
            scenarios: vec![
                ScenarioSelector::all().with_machine("table2"),
                ScenarioSelector::all().with_machine("small"),
            ],
            repeat_period: 0,
        };
        let outcome = run_load_driver(&engine, spec);
        assert_eq!(outcome.errors(), 0);

        // Find an estimated-IPC turn per session and check each response
        // cites its pinned machine's label.
        let cited: Vec<String> = (0..2)
            .map(|s| {
                let t = (0..4)
                    .find(|t| outcome.questions[s][*t].contains("estimated IPC"))
                    .expect("pinned sessions ask IPC questions");
                outcome.responses[s][t].machine.clone().expect("scoped responses cite a machine")
            })
            .collect();
        assert!(cited[0].starts_with("table2@"), "session 0 cites table2: {}", cited[0]);
        assert!(cited[1].starts_with("small@"), "session 1 cites small: {}", cited[1]);

        // The deterministic report records each session's pin.
        let report = outcome.render(&engine, false);
        assert!(report.contains("\"scenario\": \"@table2\""), "{report}");
        assert!(report.contains("\"scenario\": \"@small\""), "{report}");
    }
}
