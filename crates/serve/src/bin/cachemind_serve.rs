//! `cachemind-serve` — the CacheMind serving front-end.
//!
//! ```text
//! # serve newline-delimited JSON requests from stdin
//! cachemind-serve [--retriever sieve|ranger] [--scale tiny|small|full]
//!                 [--shards S] [--threads N] [--max-idle-rounds R]
//!
//! # synthetic load driver: N sessions x M questions, batched rounds
//! cachemind-serve --load-driver [--sessions N] [--questions M]
//!                 [--report BENCH_serve.json] [--no-timing] [...]
//!
//! # snapshot lifecycle: build once offline, serve instantly afterwards
//! cachemind-serve --build-db db.snap [--scale ...] [--machines ...]
//! cachemind-serve --db-path db.snap [--startup-compare] [...]
//! ```
//!
//! The worker-pool width comes from `--threads`, else `SERVE_NUM_THREADS`,
//! else the machine. With `--no-timing` the load driver prints only the
//! deterministic report (no thread count, no wall-clock fields) — the form
//! CI diffs across thread counts. `--report PATH` additionally writes the
//! full report including throughput and latency percentiles.
//!
//! `--build-db PATH` runs the simulation build and writes the sharded
//! database to `PATH` as a versioned snapshot, without serving. `--db-path
//! PATH` starts the engine from such a snapshot instead of simulating —
//! answers are byte-identical to a fresh build, startup is near-instant —
//! and `--startup-compare` additionally times the equivalent in-process
//! build so the report's `timing.startup` block carries the speedup
//! denominator.

use std::io::{BufRead, Write as _};
use std::sync::Arc;
use std::time::Instant;

use cachemind_core::system::RetrieverKind;
use cachemind_serve::engine::{build_database, ServeConfig, ServeEngine};
use cachemind_serve::load::{run_load_driver, run_load_driver_tcp, LoadSpec, StartupTiming};
use cachemind_serve::net::{self, NetConfig, SessionScope, TcpServer};
use cachemind_tracedb::ScenarioSelector;
use cachemind_workloads::workload::Scale;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn has(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn usize_flag(args: &[String], name: &str, default: usize) -> usize {
    match flag(args, name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} expects a positive integer, got {v:?}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: cachemind-serve [--load-driver] [--sessions N] [--questions M]\n\
         \x20                      [--retriever sieve|ranger] [--scale tiny|small|full]\n\
         \x20                      [--shards S] [--threads N] [--report PATH] [--no-timing]\n\
         \x20                      [--machines table2,small] [--prefetchers nextline,stride4]\n\
         \x20                      [--scenarios @table2,@small] [--max-idle-rounds R]\n\
         \x20                      [--repeat-period N] [--no-answer-cache]\n\
         \x20                      [--build-db PATH | --db-path PATH [--startup-compare]]\n\
         \x20                      [--stats-json PATH]\n\
         \x20                      [--tcp ADDR [--port-file PATH] [--max-connections N]\n\
         \x20                       [--queue N] [--session-scope conn|global]]\n\
         \x20                      [--shutdown-server --tcp ADDR]\n\
         --machines adds machine-qualified traces (MachineConfig presets) to the build;\n\
         --prefetchers adds prefetcher-qualified (transformed-stream) traces;\n\
         --scenarios pins load-driver sessions round-robin to selectors\n\
         \x20   (canonical form workload@machine+prefetcher/policy, all parts optional);\n\
         --max-idle-rounds reaps sessions untouched for R consecutive rounds (asks\n\
         \x20   and opens both tick the clock);\n\
         --repeat-period makes load-driver turn t re-ask the question of turn\n\
         \x20   t mod N — the repeated-question mix that exercises the answer cache;\n\
         --no-answer-cache disables the whole-answer cache (on by default) for\n\
         \x20   cache-on/cache-off A/B runs;\n\
         --build-db simulates the configured database and writes it to PATH as a\n\
         \x20   versioned snapshot, then exits (no serving);\n\
         --db-path starts the engine from such a snapshot instead of simulating\n\
         \x20   (--startup-compare also times the equivalent in-process build);\n\
         --stats-json writes the engine's metrics snapshot (the {{\"stats\": true}}\n\
         \x20   response shape) to PATH on shutdown;\n\
         --tcp serves the same newline-JSON protocol on ADDR (use port 0 for an\n\
         \x20   ephemeral port; --port-file writes the bound address for scripts;\n\
         \x20   --max-connections and --queue bound admission, refusals answer\n\
         \x20   in-band with error_kind \"overloaded\"; --session-scope conn reaps a\n\
         \x20   connection's sessions at disconnect, global matches stdin semantics);\n\
         --tcp with --load-driver drives a *running* server at ADDR over real\n\
         \x20   sockets instead of in-process rounds (the deterministic --no-timing\n\
         \x20   report is byte-identical either way);\n\
         --shutdown-server asks the server at --tcp ADDR to shut down gracefully.\n\
         without --load-driver, serves newline-delimited JSON requests from stdin:\n\
         \x20   {{\"question\": \"...\", \"session\": 3}}   (omit session to open one)\n\
         \x20   {{\"question\": \"...\", \"scenario\": \"@table2+stride4\", \"protocol_version\": 2}}\n\
         \x20   {{\"open\": true, \"scenario\": \"@table2\"}}  (open/probe without asking)\n\
         \x20   {{\"close\": true, \"session\": 3}}        (close the session)\n\
         \x20   {{\"stats\": true}}                       (in-band metrics snapshot)\n\
         \x20   {{\"shutdown\": true}}                    (graceful shutdown)"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if has(&args, "--help") || has(&args, "-h") {
        usage();
    }

    let retriever = match flag(&args, "--retriever").as_deref() {
        None | Some("sieve") => RetrieverKind::Sieve,
        Some("ranger") => RetrieverKind::Ranger,
        Some(other) => {
            eprintln!("error: unknown retriever {other:?} (expected sieve or ranger)");
            std::process::exit(2);
        }
    };
    let scale = match flag(&args, "--scale").as_deref() {
        None | Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        Some(other) => {
            eprintln!("error: unknown scale {other:?} (expected tiny, small or full)");
            std::process::exit(2);
        }
    };
    let machines: Vec<String> = flag(&args, "--machines")
        .map(|v| v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_owned).collect())
        .unwrap_or_default();
    let prefetchers: Vec<String> = flag(&args, "--prefetchers")
        .map(|v| v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_owned).collect())
        .unwrap_or_default();
    let scenarios: Vec<ScenarioSelector> = flag(&args, "--scenarios")
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    ScenarioSelector::parse(s).unwrap_or_else(|e| {
                        eprintln!("error: --scenarios: {e}");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    let config = ServeConfig {
        retriever,
        scale,
        shards: usize_flag(&args, "--shards", ServeConfig::default().shards),
        threads: flag(&args, "--threads").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: --threads expects a positive integer, got {v:?}");
                std::process::exit(2);
            })
        }),
        machines,
        prefetchers,
        max_idle_rounds: flag(&args, "--max-idle-rounds").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: --max-idle-rounds expects a positive integer, got {v:?}");
                std::process::exit(2);
            })
        }),
        answer_cache: !has(&args, "--no-answer-cache"),
        ..Default::default()
    };

    let tcp_addr = flag(&args, "--tcp");
    let net_config = NetConfig {
        max_connections: usize_flag(
            &args,
            "--max-connections",
            NetConfig::default().max_connections,
        ),
        queue_capacity: usize_flag(&args, "--queue", NetConfig::default().queue_capacity),
        session_scope: match flag(&args, "--session-scope") {
            None => NetConfig::default().session_scope,
            Some(v) => SessionScope::parse(&v).unwrap_or_else(|| {
                eprintln!("error: unknown session scope {v:?} (expected conn or global)");
                std::process::exit(2);
            }),
        },
    };

    // Remote control: ask a running TCP server to shut down gracefully,
    // print its acknowledgement, exit — no engine needed.
    if has(&args, "--shutdown-server") {
        let Some(addr) = tcp_addr else {
            eprintln!("error: --shutdown-server needs the server address via --tcp ADDR");
            std::process::exit(2);
        };
        match net::send_shutdown(addr.as_str()) {
            Ok(ack) => {
                println!("{ack}");
                return;
            }
            Err(e) => {
                eprintln!("error: cannot shut down server at {addr}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Offline snapshot build: simulate, save, exit — the serving start
    // that follows (--db-path) then skips simulation entirely.
    if let Some(path) = flag(&args, "--build-db") {
        eprintln!(
            "[cachemind-serve] building sharded trace database ({:?}, {} shards) ...",
            config.scale, config.shards
        );
        let started = Instant::now();
        let db = match build_database(&config) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        let build_micros = started.elapsed().as_micros() as u64;
        if let Err(e) = db.save(&path) {
            eprintln!("error: cannot write snapshot {path:?}: {e}");
            std::process::exit(1);
        }
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        eprintln!(
            "[cachemind-serve] wrote snapshot {path} ({bytes} bytes, {} traces, {} shards) — \
             build took {} ms",
            cachemind_tracedb::store::TraceStore::len(&db),
            db.num_shards(),
            build_micros / 1000
        );
        return;
    }

    let startup;
    let engine = match flag(&args, "--db-path") {
        Some(path) => {
            // Optional reference build: the denominator of the snapshot
            // speedup, timed before the load so the engine's own startup
            // number is unpolluted.
            let reference_build_micros = if has(&args, "--startup-compare") {
                let started = Instant::now();
                if let Err(e) = build_database(&config) {
                    eprintln!("error: --startup-compare build failed: {e}");
                    std::process::exit(1);
                }
                Some(started.elapsed().as_micros() as u64)
            } else {
                None
            };
            eprintln!("[cachemind-serve] loading trace-database snapshot {path} ...");
            let started = Instant::now();
            let engine = match ServeEngine::from_snapshot(&path, config) {
                Ok(engine) => engine,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            let micros = started.elapsed().as_micros() as u64;
            startup =
                Some(StartupTiming { source: "snapshot".into(), micros, reference_build_micros });
            engine
        }
        None => {
            eprintln!(
                "[cachemind-serve] building sharded trace database ({:?}, {} shards) ...",
                config.scale, config.shards
            );
            let started = Instant::now();
            let engine = match ServeEngine::build(config) {
                Ok(engine) => engine,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            let micros = started.elapsed().as_micros() as u64;
            startup = Some(StartupTiming {
                source: "build".into(),
                micros,
                reference_build_micros: None,
            });
            engine
        }
    };
    if let Some(s) = &startup {
        eprintln!(
            "[cachemind-serve] ready in {} ms ({}): {} traces across {} shards, {} worker threads",
            s.micros / 1000,
            s.source,
            engine.store().len(),
            engine.config().shards,
            engine.num_threads()
        );
    }

    if has(&args, "--load-driver") {
        let spec = LoadSpec {
            sessions: usize_flag(&args, "--sessions", LoadSpec::default().sessions),
            questions: usize_flag(&args, "--questions", LoadSpec::default().questions),
            scenarios,
            repeat_period: usize_flag(&args, "--repeat-period", 0),
        };
        let mut outcome = match &tcp_addr {
            // Socket mode: drive a *running* server over real TCP
            // round-trips; the local engine only synthesizes questions
            // and echoes configuration into the report.
            Some(addr) => {
                eprintln!("[cachemind-serve] driving server at {addr} over tcp ...");
                match run_load_driver_tcp(&engine, spec, addr.as_str()) {
                    Ok(outcome) => outcome,
                    Err(e) => {
                        eprintln!("error: tcp load drive against {addr} failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            None => run_load_driver(&engine, spec),
        };
        outcome.startup = startup;
        let with_timing = !has(&args, "--no-timing");
        println!("{}", outcome.render(&engine, with_timing));
        if let Some(path) = flag(&args, "--report") {
            let full = outcome.render(&engine, true);
            if let Err(e) = std::fs::write(&path, full + "\n") {
                eprintln!("error: cannot write {path:?}: {e}");
                std::process::exit(1);
            }
            eprintln!("[cachemind-serve] wrote full report to {path}");
        }
        match &tcp_addr {
            // In socket mode the interesting stats live in the *server*:
            // fetch them in-band over the socket, exactly as any client
            // would.
            Some(addr) => write_remote_stats_json(&args, addr),
            None => write_stats_json(&args, &engine, "stdin"),
        }
        return;
    }

    // TCP server mode: serve the protocol on a socket while stdin stays
    // a control (and serving) channel. `exit`, `quit` or an in-band
    // shutdown line triggers the graceful drain; stdin EOF just parks.
    if let Some(addr) = tcp_addr {
        let engine = Arc::new(engine);
        let (max_conns, queue_cap, scope) =
            (net_config.max_connections, net_config.queue_capacity, net_config.session_scope);
        let server = match TcpServer::start(Arc::clone(&engine), addr.as_str(), net_config) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("error: cannot bind tcp listener on {addr}: {e}");
                std::process::exit(1);
            }
        };
        let local = server.local_addr();
        eprintln!(
            "[cachemind-serve] listening on {local} (tcp, {} workers, max {max_conns} \
             connections, queue {queue_cap}, session scope {scope})",
            engine.num_threads()
        );
        if let Some(path) = flag(&args, "--port-file") {
            if let Err(e) = std::fs::write(&path, format!("{local}\n")) {
                eprintln!("error: cannot write {path:?}: {e}");
                std::process::exit(1);
            }
        }
        let shutdown = server.shutdown_handle();
        let stdin_engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if trimmed == "exit" || trimmed == "quit" {
                    shutdown.signal();
                    break;
                }
                let outcome = stdin_engine.serve_line(trimmed, true, "stdin", None);
                let mut out = stdout.lock();
                let _ = writeln!(out, "{}", outcome.rendered);
                let _ = out.flush();
                if outcome.shutdown {
                    shutdown.signal();
                    break;
                }
            }
            // EOF without an exit request: leave the server running.
        });
        server.wait();
        eprintln!("[cachemind-serve] tcp server drained and stopped");
        write_stats_json(&args, &engine, "tcp");
        return;
    }

    // Event loop: one JSON request per stdin line, one JSON response per
    // stdout line. Parse errors come back in-band so every line answers.
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "exit" || trimmed == "quit" {
            break;
        }
        let outcome = engine.serve_line(trimmed, true, "stdin", None);
        let mut out = stdout.lock();
        let _ = writeln!(out, "{}", outcome.rendered);
        let _ = out.flush();
        if outcome.shutdown {
            break;
        }
    }

    // On shutdown, optionally dump the engine's full stats object — the
    // same shape a {"stats": true} line returns in-band.
    write_stats_json(&args, &engine, "stdin");
}

/// Writes the engine's stats object (tagged with the serving transport,
/// the shape a `{"stats": true}` line answers with) to the
/// `--stats-json` path, when one was given.
fn write_stats_json(args: &[String], engine: &ServeEngine, transport: &str) {
    if let Some(path) = flag(args, "--stats-json") {
        if let Err(e) =
            std::fs::write(&path, engine.stats_value_tagged(transport).to_string() + "\n")
        {
            eprintln!("error: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!("[cachemind-serve] wrote stats snapshot to {path}");
    }
}

/// Fetches a running server's stats in-band over the socket and writes
/// the response line to the `--stats-json` path, when one was given.
fn write_remote_stats_json(args: &[String], addr: &str) {
    let Some(path) = flag(args, "--stats-json") else { return };
    let fetch = || -> std::io::Result<String> {
        use std::io::Read as _;
        let mut stream = std::net::TcpStream::connect(addr)?;
        stream.write_all(b"{\"stats\": true}\n")?;
        stream.flush()?;
        stream.shutdown(std::net::Shutdown::Write)?;
        let mut response = String::new();
        std::io::BufReader::new(stream).read_to_string(&mut response)?;
        Ok(response.trim().to_string())
    };
    match fetch() {
        Ok(stats) => {
            if let Err(e) = std::fs::write(&path, stats + "\n") {
                eprintln!("error: cannot write {path:?}: {e}");
                std::process::exit(1);
            }
            eprintln!("[cachemind-serve] wrote server stats snapshot to {path}");
        }
        Err(e) => {
            eprintln!("error: cannot fetch stats from {addr}: {e}");
            std::process::exit(1);
        }
    }
}
