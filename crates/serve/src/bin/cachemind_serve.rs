//! `cachemind-serve` — the CacheMind serving front-end.
//!
//! ```text
//! # serve newline-delimited JSON requests from stdin
//! cachemind-serve [--retriever sieve|ranger] [--scale tiny|small|full]
//!                 [--shards S] [--threads N]
//!
//! # synthetic load driver: N sessions x M questions, batched rounds
//! cachemind-serve --load-driver [--sessions N] [--questions M]
//!                 [--report BENCH_serve.json] [--no-timing] [...]
//! ```
//!
//! The worker-pool width comes from `--threads`, else `SERVE_NUM_THREADS`,
//! else the machine. With `--no-timing` the load driver prints only the
//! deterministic report (no thread count, no wall-clock fields) — the form
//! CI diffs across thread counts. `--report PATH` additionally writes the
//! full report including throughput and latency percentiles.

use std::io::{BufRead, Write as _};

use cachemind_core::system::RetrieverKind;
use cachemind_serve::engine::{ServeConfig, ServeEngine};
use cachemind_serve::load::{run_load_driver, LoadSpec};
use cachemind_serve::protocol::{AskResponse, Request};
use cachemind_tracedb::ScenarioSelector;
use cachemind_workloads::workload::Scale;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn has(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn usize_flag(args: &[String], name: &str, default: usize) -> usize {
    match flag(args, name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} expects a positive integer, got {v:?}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: cachemind-serve [--load-driver] [--sessions N] [--questions M]\n\
         \x20                      [--retriever sieve|ranger] [--scale tiny|small|full]\n\
         \x20                      [--shards S] [--threads N] [--report PATH] [--no-timing]\n\
         \x20                      [--machines table2,small] [--prefetchers nextline,stride4]\n\
         \x20                      [--scenarios @table2,@small]\n\
         --machines adds machine-qualified traces (MachineConfig presets) to the build;\n\
         --prefetchers adds prefetcher-qualified (transformed-stream) traces;\n\
         --scenarios pins load-driver sessions round-robin to selectors\n\
         \x20   (canonical form workload@machine+prefetcher/policy, all parts optional).\n\
         without --load-driver, serves newline-delimited JSON requests from stdin:\n\
         \x20   {{\"question\": \"...\", \"session\": 3}}   (omit session to open one)\n\
         \x20   {{\"question\": \"...\", \"scenario\": \"@table2+stride4\", \"protocol_version\": 2}}\n\
         \x20   {{\"close\": true, \"session\": 3}}        (close the session)"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if has(&args, "--help") || has(&args, "-h") {
        usage();
    }

    let retriever = match flag(&args, "--retriever").as_deref() {
        None | Some("sieve") => RetrieverKind::Sieve,
        Some("ranger") => RetrieverKind::Ranger,
        Some(other) => {
            eprintln!("error: unknown retriever {other:?} (expected sieve or ranger)");
            std::process::exit(2);
        }
    };
    let scale = match flag(&args, "--scale").as_deref() {
        None | Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        Some(other) => {
            eprintln!("error: unknown scale {other:?} (expected tiny, small or full)");
            std::process::exit(2);
        }
    };
    let machines: Vec<String> = flag(&args, "--machines")
        .map(|v| v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_owned).collect())
        .unwrap_or_default();
    let prefetchers: Vec<String> = flag(&args, "--prefetchers")
        .map(|v| v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_owned).collect())
        .unwrap_or_default();
    let scenarios: Vec<ScenarioSelector> = flag(&args, "--scenarios")
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    ScenarioSelector::parse(s).unwrap_or_else(|e| {
                        eprintln!("error: --scenarios: {e}");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    let config = ServeConfig {
        retriever,
        scale,
        shards: usize_flag(&args, "--shards", ServeConfig::default().shards),
        threads: flag(&args, "--threads").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: --threads expects a positive integer, got {v:?}");
                std::process::exit(2);
            })
        }),
        machines,
        prefetchers,
        ..Default::default()
    };

    eprintln!(
        "[cachemind-serve] building sharded trace database ({:?}, {} shards) ...",
        config.scale, config.shards
    );
    let engine = match ServeEngine::build(config) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[cachemind-serve] ready: {} traces across {} shards, {} worker threads",
        engine.store().len(),
        engine.config().shards,
        engine.num_threads()
    );

    if has(&args, "--load-driver") {
        let spec = LoadSpec {
            sessions: usize_flag(&args, "--sessions", LoadSpec::default().sessions),
            questions: usize_flag(&args, "--questions", LoadSpec::default().questions),
            scenarios,
        };
        let outcome = run_load_driver(&engine, spec);
        let with_timing = !has(&args, "--no-timing");
        println!("{}", outcome.render(&engine, with_timing));
        if let Some(path) = flag(&args, "--report") {
            let full = outcome.render(&engine, true);
            if let Err(e) = std::fs::write(&path, full + "\n") {
                eprintln!("error: cannot write {path:?}: {e}");
                std::process::exit(1);
            }
            eprintln!("[cachemind-serve] wrote full report to {path}");
        }
        return;
    }

    // Event loop: one JSON request per stdin line, one JSON response per
    // stdout line. Parse errors come back in-band so every line answers.
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "exit" || trimmed == "quit" {
            break;
        }
        let response = match Request::from_json(trimmed) {
            Ok(request) => engine.handle_request(&request),
            Err(error) => AskResponse::failure(0, &error),
        };
        let mut out = stdout.lock();
        let _ = writeln!(out, "{}", response.to_json(true));
        let _ = out.flush();
    }
}
