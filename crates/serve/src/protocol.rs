//! The serve wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line on stdin, one response per line on stdout:
//!
//! ```json
//! {"question": "What is the miss rate of mcf under LRU?", "session": 3}
//! {"session": 3, "turn": 2, "answer": "...", "verdict": "Number(41.2)", "micros": 512}
//! ```
//!
//! `session` is optional in requests — omitting it (or sending `null`)
//! opens a fresh session and the response carries the assigned id. Errors
//! come back in-band as `{"session": ..., "error": "...", "error_kind":
//! "..."}` so a batch of requests always yields a response per request;
//! `error_kind` is a stable machine-matchable discriminator
//! (`invalid_json` | `bad_request` | `unknown_session` | `overloaded`).
//!
//! # Protocol v2: scenario-scoped asks
//!
//! A request may carry `"protocol_version": 2` and a `"scenario"` field —
//! a [`ScenarioSelector`] in its canonical text form
//! (`workload@machine+prefetcher/policy`, all components optional):
//!
//! ```json
//! {"question": "What is the estimated IPC for mcf?", "scenario": "@table2/lru", "protocol_version": 2}
//! ```
//!
//! The scenario scopes that request's retrieval; when the request *opens*
//! a session (no `session` field), the scenario is also pinned as the
//! session's default scope for later turns. Sending `scenario` implies
//! v2. Plain v1 requests remain valid and answer byte-identically to the
//! pre-v2 protocol. Responses to scenario-scoped requests cite the
//! canonical `machine` label — and, when the grounded evidence names one,
//! the `prefetcher` label — the answer was grounded in.
//!
//! # Session lifecycle: `open` and `close`
//!
//! A `{"open": true}` line opens a session *without asking a question* —
//! the response carries the assigned id at `"turn": 0` and, when the
//! request pinned one, the session's `scenario` in canonical text form:
//!
//! ```json
//! {"open": true, "scenario": "@table2+stride4"}
//! {"session": 4, "turn": 0, "scenario": "@table2+stride4"}
//! ```
//!
//! With a `session` field, `open` instead *echoes* an existing session's
//! pinned scenario and turn count — a status probe that never burns a
//! question (re-pinning is rejected: `scenario` is only valid on a fresh
//! open).
//!
//! A `{"close": true, "session": N}` line closes a session, removing it
//! (and its conversation memory) from the engine's session map — without
//! it the map only grows. The response echoes the session and reports
//! `"closed": true` plus the number of turns the session answered;
//! closing an unknown session fails in-band with
//! `"error_kind": "unknown_session"`, and a closed id is thereafter
//! unknown. Servers may also reap idle sessions themselves (see
//! `--max-idle-rounds`), after which the id fails the same way.
//!
//! # In-band telemetry: `stats`
//!
//! A `{"stats": true}` line returns the server's versioned metrics
//! snapshot — sessions open/opened/closed/reaped, requests by kind,
//! per-`error_kind` counts, the whole-answer cache's entry/hit/miss
//! counts, and the full latency histograms — as one JSON object with
//! `"stats_version": 2` ([`STATS_VERSION`]). Stats requests
//! are pure reads: they never touch a session, and the snapshot is taken
//! *before* the stats request itself is counted, so after driving N asks
//! the first stats response reports exactly N requests.
//!
//! # Transport control: `shutdown`
//!
//! A `{"shutdown": true}` line asks the server to shut down gracefully:
//! stop accepting connections, drain every in-flight request, flush all
//! writers, then exit. It is acknowledged in-band with
//! `{"shutdown":true}` but is a *transport-level* control message — it is
//! never counted as a request, so a stats snapshot is unaffected by how
//! the run was stopped. See `docs/PROTOCOL.md` for the full wire-protocol
//! specification (including the TCP transport) and
//! `docs/OBSERVABILITY.md` for the metric taxonomy.

use cachemind_tracedb::ScenarioSelector;
use serde_json::Value;

/// The current protocol version ([`AskRequest::protocol_version`]).
pub const PROTOCOL_V2: u64 = 2;
/// The legacy, selector-free protocol version.
pub const PROTOCOL_V1: u64 = 1;
/// Version stamp of the `stats` response shape (the `stats_version`
/// field), bumped whenever the stats object's layout changes. Version 2
/// added the `cache` object (whole-answer cache entries/hits/misses).
pub const STATS_VERSION: u64 = 2;

/// A protocol-level failure, reported in-band per request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The request line was not valid JSON.
    InvalidJson(String),
    /// The request was valid JSON but not a valid request object.
    BadRequest(String),
    /// The named session does not exist.
    UnknownSession(u64),
    /// The server refused the request for capacity reasons (connection
    /// table or pending-request queue full). The request was *not*
    /// processed; retrying after a drain is safe. Only the TCP transport
    /// emits this — stdin mode is inherently paced by its single reader.
    Overloaded(String),
}

impl ProtocolError {
    /// The stable machine-matchable discriminator carried in responses as
    /// `error_kind` — the in-band error shape is uniform across parse
    /// failures, session failures, and admission-control rejections.
    pub const fn kind(&self) -> &'static str {
        match self {
            ProtocolError::InvalidJson(_) => "invalid_json",
            ProtocolError::BadRequest(_) => "bad_request",
            ProtocolError::UnknownSession(_) => "unknown_session",
            ProtocolError::Overloaded(_) => "overloaded",
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::InvalidJson(detail) => write!(f, "invalid JSON: {detail}"),
            ProtocolError::BadRequest(detail) => write!(f, "bad request: {detail}"),
            ProtocolError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ProtocolError::Overloaded(detail) => write!(f, "overloaded: {detail}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A question addressed to one chat session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AskRequest {
    /// The target session; `None` opens a new one.
    pub session: Option<u64>,
    /// The natural-language question.
    pub question: String,
    /// The scenario scope of this request (v2). On a session-opening
    /// request the scope is also pinned as the session default.
    pub scenario: Option<ScenarioSelector>,
    /// Protocol version: [`PROTOCOL_V1`] for legacy requests,
    /// [`PROTOCOL_V2`] when scenario-scoped.
    pub protocol_version: u64,
}

impl AskRequest {
    /// A v1 request opening a fresh session.
    pub fn new(question: impl Into<String>) -> Self {
        AskRequest {
            session: None,
            question: question.into(),
            scenario: None,
            protocol_version: PROTOCOL_V1,
        }
    }

    /// A v1 request against an existing session.
    pub fn in_session(session: u64, question: impl Into<String>) -> Self {
        AskRequest { session: Some(session), ..AskRequest::new(question) }
    }

    /// Upgrades the request to v2 with a scenario scope.
    pub fn with_scenario(mut self, scenario: ScenarioSelector) -> Self {
        self.scenario = Some(scenario);
        self.protocol_version = PROTOCOL_V2;
        self
    }

    /// Parses one request line (v1 or v2).
    pub fn from_json(line: &str) -> Result<Self, ProtocolError> {
        let value =
            serde_json::from_str(line).map_err(|e| ProtocolError::InvalidJson(e.to_string()))?;
        Self::from_value(&value)
    }

    /// Parses an already-decoded request object (the shared half of
    /// [`AskRequest::from_json`] and [`Request::from_json`]).
    fn from_value(value: &Value) -> Result<Self, ProtocolError> {
        let question = value
            .get("question")
            .and_then(Value::as_str)
            .ok_or_else(|| ProtocolError::BadRequest("missing string field 'question'".into()))?
            .to_owned();
        if question.trim().is_empty() {
            return Err(ProtocolError::BadRequest("'question' must be non-empty".into()));
        }
        let session = match value.get("session") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                ProtocolError::BadRequest("'session' must be a non-negative integer".into())
            })?),
        };
        let scenario = match value.get("scenario") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => {
                let text = v.as_str().ok_or_else(|| {
                    ProtocolError::BadRequest("'scenario' must be a selector string".into())
                })?;
                Some(
                    ScenarioSelector::parse(text)
                        .map_err(|e| ProtocolError::BadRequest(e.to_string()))?,
                )
            }
        };
        let protocol_version = match value.get("protocol_version") {
            None => {
                // Sending a scenario implies v2.
                if scenario.is_some() {
                    PROTOCOL_V2
                } else {
                    PROTOCOL_V1
                }
            }
            Some(v) => match v.as_u64() {
                Some(n @ (PROTOCOL_V1 | PROTOCOL_V2)) => n,
                _ => {
                    return Err(ProtocolError::BadRequest(format!(
                        "unsupported 'protocol_version' {v} (expected 1 or 2)"
                    )))
                }
            },
        };
        if protocol_version == PROTOCOL_V1 && scenario.is_some() {
            return Err(ProtocolError::BadRequest("'scenario' requires protocol_version 2".into()));
        }
        Ok(AskRequest { session, question, scenario, protocol_version })
    }

    /// Renders the request as a compact JSON line. v1 requests render the
    /// legacy shape exactly; v2 requests add `scenario` (canonical text
    /// form) and `protocol_version`.
    pub fn to_json(&self) -> String {
        let mut obj = Value::object();
        obj.insert("question", Value::from(self.question.as_str()));
        if let Some(id) = self.session {
            obj.insert("session", Value::from(id));
        }
        if let Some(scenario) = &self.scenario {
            obj.insert("scenario", Value::from(scenario.to_string().as_str()));
        }
        if self.protocol_version != PROTOCOL_V1 {
            obj.insert("protocol_version", Value::from(self.protocol_version));
        }
        obj.to_string()
    }
}

/// Any request line the serve event loop accepts: a question for a
/// session, or a session-lifecycle `open` / `close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// A question ([`AskRequest`], v1 or v2).
    Ask(AskRequest),
    /// `{"open": true}` — open a session (optionally pinning a scenario)
    /// or, with a `session` field, echo an existing session's pin and
    /// turn count. Never burns a question.
    Open {
        /// An existing session to probe; `None` opens a fresh one.
        session: Option<u64>,
        /// The scenario to pin on a fresh open (invalid with `session`).
        scenario: Option<ScenarioSelector>,
    },
    /// `{"close": true, "session": N}` — close the named session,
    /// removing it and its conversation memory from the engine.
    Close {
        /// The session to close.
        session: u64,
    },
    /// `{"stats": true}` — return the server's versioned metrics snapshot.
    /// A pure read: touches no session and burns no question.
    Stats,
    /// `{"shutdown": true}` — ask the server to shut down gracefully
    /// (stop accepting, drain in-flight requests, flush writers, exit).
    /// A transport-level control message: it is acknowledged in-band but
    /// never counted as a request, so stats bytes are unaffected by how a
    /// run was stopped.
    Shutdown,
}

impl Request {
    /// Parses one request line: an `open` when the object carries
    /// `"open": true`, a `close` when it carries `"close": true`, a
    /// `stats` when it carries `"stats": true`, a `shutdown` when it
    /// carries `"shutdown": true`, an [`AskRequest`] otherwise.
    pub fn from_json(line: &str) -> Result<Self, ProtocolError> {
        let value =
            serde_json::from_str(line).map_err(|e| ProtocolError::InvalidJson(e.to_string()))?;
        if let Some(flag) = value.get("open") {
            if flag.as_bool() != Some(true) {
                return Err(ProtocolError::BadRequest("'open' must be the boolean true".into()));
            }
            let session = match value.get("session") {
                None => None,
                Some(v) if v.is_null() => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    ProtocolError::BadRequest("'session' must be a non-negative integer".into())
                })?),
            };
            let scenario = match value.get("scenario") {
                None => None,
                Some(v) if v.is_null() => None,
                Some(v) => {
                    let text = v.as_str().ok_or_else(|| {
                        ProtocolError::BadRequest("'scenario' must be a selector string".into())
                    })?;
                    Some(
                        ScenarioSelector::parse(text)
                            .map_err(|e| ProtocolError::BadRequest(e.to_string()))?,
                    )
                }
            };
            if session.is_some() && scenario.is_some() {
                return Err(ProtocolError::BadRequest(
                    "'scenario' is only valid when opening a fresh session (omit 'session')".into(),
                ));
            }
            return Ok(Request::Open { session, scenario });
        }
        if let Some(flag) = value.get("stats") {
            if flag.as_bool() != Some(true) {
                return Err(ProtocolError::BadRequest("'stats' must be the boolean true".into()));
            }
            return Ok(Request::Stats);
        }
        if let Some(flag) = value.get("shutdown") {
            if flag.as_bool() != Some(true) {
                return Err(ProtocolError::BadRequest(
                    "'shutdown' must be the boolean true".into(),
                ));
            }
            return Ok(Request::Shutdown);
        }
        match value.get("close") {
            None => Ok(Request::Ask(AskRequest::from_value(&value)?)),
            Some(flag) => {
                if flag.as_bool() != Some(true) {
                    return Err(ProtocolError::BadRequest(
                        "'close' must be the boolean true".into(),
                    ));
                }
                let session = value.get("session").and_then(Value::as_u64).ok_or_else(|| {
                    ProtocolError::BadRequest("close requests require a 'session' integer".into())
                })?;
                Ok(Request::Close { session })
            }
        }
    }

    /// Renders the request as a compact JSON line.
    pub fn to_json(&self) -> String {
        match self {
            Request::Ask(ask) => ask.to_json(),
            Request::Open { session, scenario } => {
                let mut obj = Value::object();
                obj.insert("open", Value::from(true));
                if let Some(id) = session {
                    obj.insert("session", Value::from(*id));
                }
                if let Some(scenario) = scenario {
                    obj.insert("scenario", Value::from(scenario.to_string().as_str()));
                }
                obj.to_string()
            }
            Request::Close { session } => {
                let mut obj = Value::object();
                obj.insert("close", Value::from(true));
                obj.insert("session", Value::from(*session));
                obj.to_string()
            }
            Request::Stats => {
                let mut obj = Value::object();
                obj.insert("stats", Value::from(true));
                obj.to_string()
            }
            Request::Shutdown => {
                let mut obj = Value::object();
                obj.insert("shutdown", Value::from(true));
                obj.to_string()
            }
        }
    }
}

/// The reply to any [`Request`]: an [`AskResponse`] for asks, opens and
/// closes, or the versioned metrics object for `stats`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// An answer, acknowledgement or in-band failure.
    Ask(AskResponse),
    /// The stats object answering `{"stats": true}` (carries
    /// `"stats_version"`: [`STATS_VERSION`]).
    Stats(Value),
    /// The acknowledgement for `{"shutdown": true}` — echoed back as
    /// `{"shutdown":true}` before the transport drains and exits.
    Shutdown,
}

impl Response {
    /// Whether the request succeeded (stats and shutdown requests always
    /// do).
    pub fn is_ok(&self) -> bool {
        match self {
            Response::Ask(response) => response.is_ok(),
            Response::Stats(_) | Response::Shutdown => true,
        }
    }

    /// The inner [`AskResponse`].
    ///
    /// # Panics
    ///
    /// Panics when the response is a stats object or a shutdown
    /// acknowledgement.
    pub fn expect_ask(self) -> AskResponse {
        match self {
            Response::Ask(response) => response,
            Response::Stats(_) => panic!("expected an ask response, got a stats response"),
            Response::Shutdown => panic!("expected an ask response, got a shutdown ack"),
        }
    }

    /// Renders the response as a compact JSON line. `with_timing` gates
    /// the ask shape's wall-clock field exactly as
    /// [`AskResponse::to_json`]; stats objects are wall-clock content by
    /// definition and render unchanged, as does the fixed shutdown ack.
    pub fn to_json(&self, with_timing: bool) -> String {
        match self {
            Response::Ask(response) => response.to_json(with_timing),
            Response::Stats(value) => value.to_string(),
            Response::Shutdown => "{\"shutdown\":true}".to_owned(),
        }
    }
}

/// The answer (or error) for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct AskResponse {
    /// The session the question ran in (0 when the request never reached a
    /// session, e.g. a parse error).
    pub session: u64,
    /// 1-based turn number within the session (0 on error).
    pub turn: usize,
    /// The grounded answer text, on success.
    pub answer: Option<String>,
    /// The machine-checkable verdict, rendered (`Number(41.2)`, ...).
    pub verdict: Option<String>,
    /// The canonical machine label the answer's grounded evidence cites —
    /// set only for scenario-scoped (v2) requests, so a pinned session can
    /// verify *which machine* answered. Absent on v1 responses (bytes
    /// unchanged).
    pub machine: Option<String>,
    /// The canonical prefetcher label the answer's grounded evidence cites
    /// — set only for scenario-scoped (v2) requests whose evidence was a
    /// prefetcher-qualified trace. Absent on v1 responses and on answers
    /// grounded in baseline traces.
    pub prefetcher: Option<String>,
    /// The session's pinned scenario in canonical text form — set only on
    /// `open` acknowledgements for scoped sessions, so clients can read a
    /// pin back without burning a question. Absent everywhere else (ask
    /// and close bytes unchanged).
    pub scenario: Option<String>,
    /// Whether this response acknowledges a `close` request (the session
    /// is gone afterwards). Rendered only when true, so ask responses are
    /// byte-identical to the pre-close protocol.
    pub closed: bool,
    /// The protocol error, on failure (human-readable).
    pub error: Option<String>,
    /// The stable error discriminator, on failure
    /// ([`ProtocolError::kind`]).
    pub error_kind: Option<String>,
    /// Wall-clock time answering took, in microseconds. Excluded from
    /// deterministic renderings.
    pub micros: u64,
}

impl AskResponse {
    /// A failure response: every protocol error — parse failure or
    /// unknown session — takes this one in-band shape, with a stable
    /// `error_kind`.
    pub fn failure(session: u64, error: &ProtocolError) -> Self {
        AskResponse {
            session,
            turn: 0,
            answer: None,
            verdict: None,
            machine: None,
            prefetcher: None,
            scenario: None,
            closed: false,
            error: Some(error.to_string()),
            error_kind: Some(error.kind().to_owned()),
            micros: 0,
        }
    }

    /// The acknowledgement for a successful `close` request: `turn` echoes
    /// how many turns the session answered before closing.
    pub fn closed(session: u64, turns: usize) -> Self {
        AskResponse {
            session,
            turn: turns,
            answer: None,
            verdict: None,
            machine: None,
            prefetcher: None,
            scenario: None,
            closed: true,
            error: None,
            error_kind: None,
            micros: 0,
        }
    }

    /// The acknowledgement for a successful `open` request: `turn` echoes
    /// the turns the session has answered so far (0 on a fresh open) and
    /// `scenario` carries the pinned scope in canonical text form when the
    /// session is scoped.
    pub fn opened(session: u64, turns: usize, pinned: &ScenarioSelector) -> Self {
        AskResponse {
            session,
            turn: turns,
            answer: None,
            verdict: None,
            machine: None,
            prefetcher: None,
            scenario: (!pinned.is_unscoped()).then(|| pinned.to_string()),
            closed: false,
            error: None,
            error_kind: None,
            micros: 0,
        }
    }

    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// The response as a JSON object. With `with_timing` false the
    /// wall-clock field is omitted, leaving only deterministic content —
    /// the form the determinism tests and CI smoke diff byte-for-byte.
    pub fn to_value(&self, with_timing: bool) -> Value {
        let mut obj = Value::object();
        obj.insert("session", Value::from(self.session));
        obj.insert("turn", Value::from(self.turn));
        if let Some(answer) = &self.answer {
            obj.insert("answer", Value::from(answer.as_str()));
        }
        if let Some(verdict) = &self.verdict {
            obj.insert("verdict", Value::from(verdict.as_str()));
        }
        if let Some(machine) = &self.machine {
            obj.insert("machine", Value::from(machine.as_str()));
        }
        if let Some(prefetcher) = &self.prefetcher {
            obj.insert("prefetcher", Value::from(prefetcher.as_str()));
        }
        if let Some(scenario) = &self.scenario {
            obj.insert("scenario", Value::from(scenario.as_str()));
        }
        if self.closed {
            obj.insert("closed", Value::from(true));
        }
        if let Some(error) = &self.error {
            obj.insert("error", Value::from(error.as_str()));
        }
        if let Some(kind) = &self.error_kind {
            obj.insert("error_kind", Value::from(kind.as_str()));
        }
        if with_timing {
            obj.insert("micros", Value::from(self.micros));
        }
        obj
    }

    /// Parses a response line back into the typed shape (the load-driver
    /// and round-trip-test counterpart of [`AskResponse::to_json`]).
    pub fn from_json(line: &str) -> Result<Self, ProtocolError> {
        let value =
            serde_json::from_str(line).map_err(|e| ProtocolError::InvalidJson(e.to_string()))?;
        let session = value
            .get("session")
            .and_then(Value::as_u64)
            .ok_or_else(|| ProtocolError::BadRequest("missing 'session'".into()))?;
        let turn = value
            .get("turn")
            .and_then(Value::as_u64)
            .ok_or_else(|| ProtocolError::BadRequest("missing 'turn'".into()))?
            as usize;
        let text = |field: &str| value.get(field).and_then(Value::as_str).map(str::to_owned);
        Ok(AskResponse {
            session,
            turn,
            answer: text("answer"),
            verdict: text("verdict"),
            machine: text("machine"),
            prefetcher: text("prefetcher"),
            scenario: text("scenario"),
            closed: value.get("closed").and_then(Value::as_bool).unwrap_or(false),
            error: text("error"),
            error_kind: text("error_kind"),
            micros: value.get("micros").and_then(Value::as_u64).unwrap_or(0),
        })
    }

    /// Renders the response as a compact JSON line.
    pub fn to_json(&self, with_timing: bool) -> String {
        self.to_value(with_timing).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = AskRequest::in_session(9, "What is the miss rate of mcf under LRU?");
        let parsed = AskRequest::from_json(&req.to_json()).expect("round trip");
        assert_eq!(parsed, req);
        assert_eq!(parsed.protocol_version, PROTOCOL_V1);

        let fresh = AskRequest::new("hello");
        let parsed = AskRequest::from_json(&fresh.to_json()).expect("round trip");
        assert_eq!(parsed.session, None);
    }

    #[test]
    fn v1_wire_shape_is_unchanged() {
        // The legacy request renders without any v2 field — byte-for-byte
        // what the pre-v2 protocol produced.
        let req = AskRequest::in_session(3, "q");
        assert_eq!(req.to_json(), "{\"question\":\"q\",\"session\":3}");
    }

    #[test]
    fn v2_requests_round_trip_with_scenarios() {
        let scenario = ScenarioSelector::parse("mcf@table2+stride4/lru").expect("selector");
        let req =
            AskRequest::in_session(7, "What is the estimated IPC?").with_scenario(scenario.clone());
        assert_eq!(req.protocol_version, PROTOCOL_V2);
        let line = req.to_json();
        assert!(line.contains("\"scenario\":\"mcf@table2+stride4/lru\""), "{line}");
        assert!(line.contains("\"protocol_version\":2"), "{line}");
        let parsed = AskRequest::from_json(&line).expect("round trip");
        assert_eq!(parsed, req);
        assert_eq!(parsed.scenario, Some(scenario));

        // A scenario without an explicit version implies v2.
        let implied =
            AskRequest::from_json("{\"question\": \"q\", \"scenario\": \"@small\"}").unwrap();
        assert_eq!(implied.protocol_version, PROTOCOL_V2);
        assert_eq!(implied.scenario.as_ref().and_then(|s| s.machine.as_deref()), Some("small"));

        // An explicit v2 without a scenario is fine (scope-free v2).
        let bare = AskRequest::from_json("{\"question\": \"q\", \"protocol_version\": 2}").unwrap();
        assert_eq!(bare.protocol_version, PROTOCOL_V2);
        assert_eq!(bare.scenario, None);
    }

    #[test]
    fn null_session_opens_fresh() {
        let parsed = AskRequest::from_json("{\"question\": \"q\", \"session\": null}").unwrap();
        assert_eq!(parsed.session, None);
    }

    #[test]
    fn bad_requests_are_rejected() {
        assert!(matches!(AskRequest::from_json("not json"), Err(ProtocolError::InvalidJson(_))));
        assert!(matches!(
            AskRequest::from_json("{\"session\": 1}"),
            Err(ProtocolError::BadRequest(_))
        ));
        assert!(matches!(
            AskRequest::from_json("{\"question\": \"  \"}"),
            Err(ProtocolError::BadRequest(_))
        ));
        assert!(matches!(
            AskRequest::from_json("{\"question\": \"q\", \"session\": -2}"),
            Err(ProtocolError::BadRequest(_))
        ));
    }

    #[test]
    fn bad_v2_requests_are_rejected() {
        // Malformed selector text.
        let err =
            AskRequest::from_json("{\"question\": \"q\", \"scenario\": \"mcf@\"}").unwrap_err();
        assert!(matches!(&err, ProtocolError::BadRequest(d) if d.contains("empty machine")));
        // Non-string scenario.
        assert!(matches!(
            AskRequest::from_json("{\"question\": \"q\", \"scenario\": 5}"),
            Err(ProtocolError::BadRequest(_))
        ));
        // Unknown protocol version.
        assert!(matches!(
            AskRequest::from_json("{\"question\": \"q\", \"protocol_version\": 3}"),
            Err(ProtocolError::BadRequest(_))
        ));
        // A scenario on an explicit v1 request is contradictory.
        assert!(matches!(
            AskRequest::from_json(
                "{\"question\": \"q\", \"scenario\": \"@small\", \"protocol_version\": 1}"
            ),
            Err(ProtocolError::BadRequest(_))
        ));
    }

    #[test]
    fn error_kinds_are_stable_and_uniform() {
        for (error, kind) in [
            (ProtocolError::InvalidJson("x".into()), "invalid_json"),
            (ProtocolError::BadRequest("x".into()), "bad_request"),
            (ProtocolError::UnknownSession(4), "unknown_session"),
            (ProtocolError::Overloaded("queue full".into()), "overloaded"),
        ] {
            assert_eq!(error.kind(), kind);
            let resp = AskResponse::failure(0, &error);
            assert_eq!(resp.error_kind.as_deref(), Some(kind));
            assert!(!resp.is_ok());
            let line = resp.to_json(false);
            assert!(line.contains(&format!("\"error_kind\":\"{kind}\"")), "{line}");
        }
    }

    #[test]
    fn close_requests_parse_and_round_trip() {
        let req = Request::from_json("{\"close\": true, \"session\": 7}").expect("close parses");
        assert_eq!(req, Request::Close { session: 7 });
        assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);

        // Ask lines dispatch to the ask arm unchanged.
        let ask = Request::from_json("{\"question\": \"q\", \"session\": 3}").unwrap();
        assert_eq!(ask, Request::Ask(AskRequest::in_session(3, "q")));
        assert_eq!(ask.to_json(), "{\"question\":\"q\",\"session\":3}");

        // Close requires a session and a literal true.
        assert!(matches!(
            Request::from_json("{\"close\": true}"),
            Err(ProtocolError::BadRequest(_))
        ));
        assert!(matches!(
            Request::from_json("{\"close\": 1, \"session\": 2}"),
            Err(ProtocolError::BadRequest(_))
        ));
        assert!(matches!(Request::from_json("not json"), Err(ProtocolError::InvalidJson(_))));
    }

    #[test]
    fn open_requests_parse_and_round_trip() {
        // A bare open: fresh unscoped session.
        let req = Request::from_json("{\"open\": true}").expect("open parses");
        assert_eq!(req, Request::Open { session: None, scenario: None });
        assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);

        // A scoped open pins the scenario.
        let req = Request::from_json("{\"open\": true, \"scenario\": \"@table2+stride4\"}")
            .expect("scoped open parses");
        let Request::Open { session: None, scenario: Some(scenario) } = &req else {
            panic!("expected a scoped open, got {req:?}");
        };
        assert_eq!(scenario.machine.as_deref(), Some("table2"));
        assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);

        // An open against an existing session is a status probe.
        let req = Request::from_json("{\"open\": true, \"session\": 5}").expect("probe parses");
        assert_eq!(req, Request::Open { session: Some(5), scenario: None });

        // Re-pinning an existing session is rejected.
        let err = Request::from_json("{\"open\": true, \"session\": 5, \"scenario\": \"@small\"}")
            .unwrap_err();
        assert!(matches!(&err, ProtocolError::BadRequest(d) if d.contains("fresh session")));

        // `open` must be the literal true; bad selectors are rejected.
        assert!(matches!(Request::from_json("{\"open\": 1}"), Err(ProtocolError::BadRequest(_))));
        assert!(matches!(
            Request::from_json("{\"open\": true, \"scenario\": \"mcf@\"}"),
            Err(ProtocolError::BadRequest(_))
        ));
    }

    #[test]
    fn stats_requests_parse_and_round_trip() {
        let req = Request::from_json("{\"stats\": true}").expect("stats parses");
        assert_eq!(req, Request::Stats);
        assert_eq!(req.to_json(), "{\"stats\":true}");
        assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);

        // `stats` must be the literal true.
        assert!(matches!(Request::from_json("{\"stats\": 1}"), Err(ProtocolError::BadRequest(_))));
        assert!(matches!(
            Request::from_json("{\"stats\": false}"),
            Err(ProtocolError::BadRequest(_))
        ));

        // The other flags still win their own shapes.
        assert!(matches!(Request::from_json("{\"open\": true}"), Ok(Request::Open { .. })));
        assert!(matches!(
            Request::from_json("{\"close\": true, \"session\": 1}"),
            Ok(Request::Close { .. })
        ));
    }

    #[test]
    fn shutdown_requests_parse_and_round_trip() {
        let req = Request::from_json("{\"shutdown\": true}").expect("shutdown parses");
        assert_eq!(req, Request::Shutdown);
        assert_eq!(req.to_json(), "{\"shutdown\":true}");
        assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);

        // `shutdown` must be the literal true.
        assert!(matches!(
            Request::from_json("{\"shutdown\": 1}"),
            Err(ProtocolError::BadRequest(_))
        ));
        assert!(matches!(
            Request::from_json("{\"shutdown\": false}"),
            Err(ProtocolError::BadRequest(_))
        ));

        // The ack renders one fixed line, timing-independent.
        let ack = Response::Shutdown;
        assert!(ack.is_ok());
        assert_eq!(ack.to_json(false), "{\"shutdown\":true}");
        assert_eq!(ack.to_json(true), ack.to_json(false));
    }

    #[test]
    fn overloaded_failures_take_the_uniform_error_shape() {
        let error = ProtocolError::Overloaded("pending-request queue full (capacity 2)".into());
        let resp = AskResponse::failure(0, &error);
        assert!(!resp.is_ok());
        let line = resp.to_json(false);
        assert!(line.contains("\"error_kind\":\"overloaded\""), "{line}");
        assert!(line.contains("queue full"), "{line}");
        let back = AskResponse::from_json(&line).expect("round trip");
        assert_eq!(back.error_kind.as_deref(), Some("overloaded"));
    }

    #[test]
    fn response_wrapper_dispatches_by_shape() {
        let ask = Response::Ask(AskResponse::closed(5, 3));
        assert!(ask.is_ok());
        assert_eq!(ask.to_json(false), AskResponse::closed(5, 3).to_json(false));
        assert_eq!(ask.expect_ask(), AskResponse::closed(5, 3));

        let mut obj = Value::object();
        obj.insert("stats_version", Value::from(STATS_VERSION));
        let stats = Response::Stats(obj);
        assert!(stats.is_ok());
        assert_eq!(stats.to_json(false), "{\"stats_version\":2}");
        // Timing gating never alters a stats object.
        assert_eq!(stats.to_json(true), stats.to_json(false));

        let failure = Response::Ask(AskResponse::failure(0, &ProtocolError::UnknownSession(0)));
        assert!(!failure.is_ok());
    }

    #[test]
    fn opened_responses_render_and_round_trip() {
        let pin = ScenarioSelector::parse("@table2+stride4").expect("selector");
        let resp = AskResponse::opened(4, 0, &pin);
        assert!(resp.is_ok());
        assert!(!resp.closed);
        let line = resp.to_json(false);
        assert!(line.contains("\"scenario\":\"@table2+stride4\""), "{line}");
        assert!(line.contains("\"turn\":0"), "{line}");
        assert!(!line.contains("answer"), "{line}");
        assert_eq!(AskResponse::from_json(&line).unwrap(), resp);

        // Unscoped sessions acknowledge without a scenario field at all.
        let bare = AskResponse::opened(7, 3, &ScenarioSelector::all());
        assert_eq!(bare.scenario, None);
        assert!(!bare.to_json(false).contains("scenario"));
        assert_eq!(bare.turn, 3, "probes echo the turns answered so far");
    }

    #[test]
    fn closed_responses_render_and_round_trip() {
        let resp = AskResponse::closed(5, 3);
        assert!(resp.is_ok());
        let line = resp.to_json(false);
        assert!(line.contains("\"closed\":true"), "{line}");
        assert!(!line.contains("answer"), "{line}");
        assert_eq!(AskResponse::from_json(&line).unwrap(), resp);
        // Ordinary responses never carry the field.
        assert!(!AskResponse::failure(0, &ProtocolError::UnknownSession(0))
            .to_json(false)
            .contains("closed"));
    }

    #[test]
    fn prefetcher_citing_responses_round_trip() {
        let resp = AskResponse {
            session: 2,
            turn: 1,
            answer: Some("The answer is 0.81.".into()),
            verdict: Some("Number(0.81)".into()),
            machine: Some("table2@llc2048x16+dram160".into()),
            prefetcher: Some("stride4".into()),
            scenario: None,
            closed: false,
            error: None,
            error_kind: None,
            micros: 9,
        };
        let line = resp.to_json(false);
        assert!(line.contains("\"prefetcher\":\"stride4\""), "{line}");
        let back = AskResponse::from_json(&line).expect("round trip");
        assert_eq!(back.prefetcher.as_deref(), Some("stride4"));
        assert_eq!(back.machine, resp.machine);
    }

    #[test]
    fn responses_round_trip() {
        let resp = AskResponse {
            session: 2,
            turn: 1,
            answer: Some("yes".into()),
            verdict: Some("HitMiss(false)".into()),
            machine: None,
            prefetcher: None,
            scenario: None,
            closed: false,
            error: None,
            error_kind: None,
            micros: 1234,
        };
        let back = AskResponse::from_json(&resp.to_json(true)).expect("round trip");
        assert_eq!(back, resp);
        // Without timing the micros default to zero on re-parse.
        let back = AskResponse::from_json(&resp.to_json(false)).expect("round trip");
        assert_eq!(back.micros, 0);
        assert_eq!(back.answer, resp.answer);

        let failure = AskResponse::failure(7, &ProtocolError::UnknownSession(7));
        let back = AskResponse::from_json(&failure.to_json(true)).expect("round trip");
        assert_eq!(back, failure);
    }

    #[test]
    fn response_rendering_controls_timing() {
        let resp = AskResponse {
            session: 2,
            turn: 1,
            answer: Some("yes".into()),
            verdict: Some("HitMiss(false)".into()),
            machine: None,
            prefetcher: None,
            scenario: None,
            closed: false,
            error: None,
            error_kind: None,
            micros: 1234,
        };
        assert!(resp.to_json(true).contains("\"micros\":1234"));
        assert!(!resp.to_json(false).contains("micros"));
    }
}
