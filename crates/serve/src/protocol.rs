//! The serve wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line on stdin, one response per line on stdout:
//!
//! ```json
//! {"question": "What is the miss rate of mcf under LRU?", "session": 3}
//! {"session": 3, "turn": 2, "answer": "...", "verdict": "Number(41.2)", "micros": 512}
//! ```
//!
//! `session` is optional in requests — omitting it (or sending `null`)
//! opens a fresh session and the response carries the assigned id. Errors
//! come back in-band as `{"session": ..., "error": "..."}` so a batch of
//! requests always yields a response per request.

use serde_json::Value;

/// A protocol-level failure, reported in-band per request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The request line was not valid JSON.
    InvalidJson(String),
    /// The request was valid JSON but not a valid request object.
    BadRequest(String),
    /// The named session does not exist.
    UnknownSession(u64),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::InvalidJson(detail) => write!(f, "invalid JSON: {detail}"),
            ProtocolError::BadRequest(detail) => write!(f, "bad request: {detail}"),
            ProtocolError::UnknownSession(id) => write!(f, "unknown session {id}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A question addressed to one chat session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AskRequest {
    /// The target session; `None` opens a new one.
    pub session: Option<u64>,
    /// The natural-language question.
    pub question: String,
}

impl AskRequest {
    /// A request opening a fresh session.
    pub fn new(question: impl Into<String>) -> Self {
        AskRequest { session: None, question: question.into() }
    }

    /// A request against an existing session.
    pub fn in_session(session: u64, question: impl Into<String>) -> Self {
        AskRequest { session: Some(session), question: question.into() }
    }

    /// Parses one request line.
    pub fn from_json(line: &str) -> Result<Self, ProtocolError> {
        let value =
            serde_json::from_str(line).map_err(|e| ProtocolError::InvalidJson(e.to_string()))?;
        let question = value
            .get("question")
            .and_then(Value::as_str)
            .ok_or_else(|| ProtocolError::BadRequest("missing string field 'question'".into()))?
            .to_owned();
        if question.trim().is_empty() {
            return Err(ProtocolError::BadRequest("'question' must be non-empty".into()));
        }
        let session = match value.get("session") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                ProtocolError::BadRequest("'session' must be a non-negative integer".into())
            })?),
        };
        Ok(AskRequest { session, question })
    }

    /// Renders the request as a compact JSON line.
    pub fn to_json(&self) -> String {
        let mut obj = Value::object();
        obj.insert("question", Value::from(self.question.as_str()));
        if let Some(id) = self.session {
            obj.insert("session", Value::from(id));
        }
        obj.to_string()
    }
}

/// The answer (or error) for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct AskResponse {
    /// The session the question ran in (0 when the request never reached a
    /// session, e.g. a parse error).
    pub session: u64,
    /// 1-based turn number within the session (0 on error).
    pub turn: usize,
    /// The grounded answer text, on success.
    pub answer: Option<String>,
    /// The machine-checkable verdict, rendered (`Number(41.2)`, ...).
    pub verdict: Option<String>,
    /// The protocol error, on failure.
    pub error: Option<String>,
    /// Wall-clock time answering took, in microseconds. Excluded from
    /// deterministic renderings.
    pub micros: u64,
}

impl AskResponse {
    /// A failure response.
    pub fn failure(session: u64, error: &ProtocolError) -> Self {
        AskResponse {
            session,
            turn: 0,
            answer: None,
            verdict: None,
            error: Some(error.to_string()),
            micros: 0,
        }
    }

    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// The response as a JSON object. With `with_timing` false the
    /// wall-clock field is omitted, leaving only deterministic content —
    /// the form the determinism tests and CI smoke diff byte-for-byte.
    pub fn to_value(&self, with_timing: bool) -> Value {
        let mut obj = Value::object();
        obj.insert("session", Value::from(self.session));
        obj.insert("turn", Value::from(self.turn));
        if let Some(answer) = &self.answer {
            obj.insert("answer", Value::from(answer.as_str()));
        }
        if let Some(verdict) = &self.verdict {
            obj.insert("verdict", Value::from(verdict.as_str()));
        }
        if let Some(error) = &self.error {
            obj.insert("error", Value::from(error.as_str()));
        }
        if with_timing {
            obj.insert("micros", Value::from(self.micros));
        }
        obj
    }

    /// Renders the response as a compact JSON line.
    pub fn to_json(&self, with_timing: bool) -> String {
        self.to_value(with_timing).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = AskRequest::in_session(9, "What is the miss rate of mcf under LRU?");
        let parsed = AskRequest::from_json(&req.to_json()).expect("round trip");
        assert_eq!(parsed, req);

        let fresh = AskRequest::new("hello");
        let parsed = AskRequest::from_json(&fresh.to_json()).expect("round trip");
        assert_eq!(parsed.session, None);
    }

    #[test]
    fn null_session_opens_fresh() {
        let parsed = AskRequest::from_json("{\"question\": \"q\", \"session\": null}").unwrap();
        assert_eq!(parsed.session, None);
    }

    #[test]
    fn bad_requests_are_rejected() {
        assert!(matches!(AskRequest::from_json("not json"), Err(ProtocolError::InvalidJson(_))));
        assert!(matches!(
            AskRequest::from_json("{\"session\": 1}"),
            Err(ProtocolError::BadRequest(_))
        ));
        assert!(matches!(
            AskRequest::from_json("{\"question\": \"  \"}"),
            Err(ProtocolError::BadRequest(_))
        ));
        assert!(matches!(
            AskRequest::from_json("{\"question\": \"q\", \"session\": -2}"),
            Err(ProtocolError::BadRequest(_))
        ));
    }

    #[test]
    fn response_rendering_controls_timing() {
        let resp = AskResponse {
            session: 2,
            turn: 1,
            answer: Some("yes".into()),
            verdict: Some("HitMiss(false)".into()),
            error: None,
            micros: 1234,
        };
        assert!(resp.to_json(true).contains("\"micros\":1234"));
        assert!(!resp.to_json(false).contains("micros"));
    }
}
