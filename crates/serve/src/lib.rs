//! # cachemind-serve
//!
//! The CacheMind serving subsystem: a batched, multi-session front-end
//! over one shared, sharded trace database.
//!
//! * [`engine::ServeEngine`] — the session manager and worker-pool event
//!   loop. Many concurrent [`ChatSession`](cachemind_core::chat::ChatSession)s
//!   share a single `Arc`'d [`ShardedTraceDatabase`](cachemind_tracedb::shard::ShardedTraceDatabase);
//!   each *round* batches the pending question of every session and
//!   answers them in parallel on `SERVE_NUM_THREADS` workers.
//! * [`protocol`] — the newline-delimited JSON wire format
//!   ([`AskRequest`] / [`AskResponse`], plus the session-lifecycle
//!   [`Request::Close`]) with in-band errors and
//!   per-request timing. The full v1/v2 specification lives in
//!   `docs/PROTOCOL.md`.
//! * [`load`] — the synthetic load driver behind
//!   `cachemind-serve --load-driver`: replays N sessions × M questions and
//!   reports throughput and latency percentiles as JSON
//!   (`BENCH_serve.json`), in-process or over a real TCP socket
//!   (`--tcp`).
//! * [`net`] — the TCP transport behind `cachemind-serve --tcp`: an
//!   acceptor thread, a bounded connection table with per-connection
//!   reader/writer threads, a bounded work queue feeding the
//!   `SERVE_NUM_THREADS` worker pool, in-band `overloaded` admission
//!   control, per-connection session ownership, and graceful shutdown.
//!
//! Determinism is the backbone: answers, transcripts and the aggregate
//! report are byte-identical for any worker count, which is what the
//! `serve determinism` integration tests and the CI smoke step diff.
//!
//! # Quickstart
//!
//! ```rust
//! use cachemind_serve::engine::{ServeConfig, ServeEngine};
//! use cachemind_serve::protocol::AskRequest;
//! use cachemind_tracedb::TraceDatabaseBuilder;
//!
//! let db = TraceDatabaseBuilder::quick_demo().shards(3).try_build_sharded().unwrap();
//! let engine = ServeEngine::over(db, ServeConfig { threads: Some(2), ..Default::default() });
//! let response = engine.handle(&AskRequest::new(
//!     "What is the overall miss rate of the mcf workload under LRU?",
//! ));
//! assert!(response.is_ok());
//! ```

pub mod engine;
pub mod load;
pub mod net;
pub mod protocol;

pub use engine::{LineOutcome, ServeConfig, ServeEngine};
pub use load::{run_load_driver, run_load_driver_tcp, LoadOutcome, LoadSpec};
pub use net::{NetConfig, SessionScope, TcpServer};
pub use protocol::{AskRequest, AskResponse, ProtocolError, Request};
