//! Span timers: scoped wall-clock measurement feeding latency histograms.

use std::time::Instant;

use crate::registry::HistogramHandle;

/// Times a named stage and records the elapsed **microseconds** into a
/// latency histogram. Create one via
/// [`MetricsRegistry::span`](crate::MetricsRegistry::span) (or
/// [`HistogramHandle::start_span`] on a pre-registered handle), then
/// either call [`SpanTimer::finish`] to record and read the duration, or
/// let the timer drop at scope end to record implicitly.
///
/// Timers only ever *write* wall-clock durations into metrics — they
/// return elapsed time to the caller solely for timing-gated reporting,
/// never for anything that feeds a deterministic output.
#[derive(Debug)]
pub struct SpanTimer {
    histogram: HistogramHandle,
    started: Instant,
    finished: bool,
}

impl SpanTimer {
    pub(crate) fn new(histogram: HistogramHandle) -> Self {
        SpanTimer { histogram, started: Instant::now(), finished: false }
    }

    /// Elapsed microseconds so far, without recording.
    pub fn elapsed_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Records the elapsed microseconds into the histogram and returns
    /// them.
    pub fn finish(mut self) -> u64 {
        let micros = self.elapsed_micros();
        self.histogram.record(micros);
        self.finished = true;
        micros
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if !self.finished {
            self.histogram.record(self.elapsed_micros());
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn finish_records_once() {
        let registry = MetricsRegistry::new();
        let span = registry.span("stage");
        let micros = span.finish();
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("stage").expect("recorded").count, 1);
        assert_eq!(snap.histogram_sum("stage"), micros);
    }

    #[test]
    fn drop_records_implicitly() {
        let registry = MetricsRegistry::new();
        {
            let _span = registry.span("scoped");
        }
        assert_eq!(registry.snapshot().histogram("scoped").expect("recorded").count, 1);
    }
}
