//! Fixed-bucket log-scale latency histograms with order-independent
//! merge.
//!
//! Values are `u64` (by convention: microseconds for span histograms).
//! Bucket `0` holds the value `0`; bucket `i ≥ 1` holds the values in
//! `[2^(i-1), 2^i - 1]` — so [`bucket_index`] is one `leading_zeros` and
//! the whole layout is [`BUCKETS`] = 65 counters, covering the full `u64`
//! range with ≤ 2× relative error per bucket.
//!
//! Recording is lock-free: each [`Histogram`] stripes `SHARDS` (8)
//! independent atomic bucket arrays and picks one by hashing the recording
//! thread's id, so concurrent recorders on different threads touch
//! different cache lines. A [`HistogramSnapshot`] sums the shards; because
//! histogram state is pure counts, [`HistogramSnapshot::merge`] is
//! bucket-wise addition — commutative and associative, so any partition of
//! the same recordings over any number of histograms merges to the same
//! snapshot (the property the `histogram_props` proptests pin).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per power of two up to
/// `2^63`.
pub const BUCKETS: usize = 65;

/// Number of independently-recordable stripes per histogram.
const SHARDS: usize = 8;

/// The bucket a value lands in: `0` for `0`, else `64 - leading_zeros`
/// (so bucket `i` covers `[2^(i-1), 2^i - 1]`).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The smallest value bucket `index` can hold.
pub fn bucket_lower(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// The largest value bucket `index` can hold.
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// One stripe of a histogram: an atomic bucket array plus the running
/// count/sum/min/max.
#[derive(Debug)]
struct Shard {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A concurrent log-scale histogram. Recording is wait-free per shard;
/// reading ([`Histogram::snapshot`]) sums the shards.
#[derive(Debug)]
pub struct Histogram {
    shards: Vec<Shard>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { shards: (0..SHARDS).map(|_| Shard::new()).collect() }
    }

    /// The stripe the current thread records into: a cheap hash of the
    /// thread id, so threads spread across shards and a single-threaded
    /// recorder always reuses one hot stripe.
    fn shard(&self) -> &Shard {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::hash::Hash::hash(&std::thread::current().id(), &mut hasher);
        let index = std::hash::Hasher::finish(&hasher) as usize % self.shards.len();
        &self.shards[index]
    }

    /// Records one value. Lock-free: a handful of relaxed atomic updates
    /// on the calling thread's stripe.
    pub fn record(&self, value: u64) {
        let shard = self.shard();
        shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.min.fetch_min(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Sums the shards into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for shard in &self.shards {
            for (bucket, counter) in snap.buckets.iter_mut().zip(&shard.buckets) {
                *bucket += counter.load(Ordering::Relaxed);
            }
            snap.count += shard.count.load(Ordering::Relaxed);
            snap.sum = snap.sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
            snap.min = snap.min.min(shard.min.load(Ordering::Relaxed));
            snap.max = snap.max.max(shard.max.load(Ordering::Relaxed));
        }
        snap
    }
}

/// An immutable view of a histogram: bucket counts plus count/sum/min/max.
/// Snapshots merge bucket-wise ([`HistogramSnapshot::merge`]), so
/// per-thread or per-process histograms combine without ordering
/// assumptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_index`] for the layout).
    pub buckets: Vec<u64>,
    /// Total recordings.
    pub count: u64,
    /// Sum of all recorded values (wrapping).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The smallest recorded value, `0` when empty (the export-friendly
    /// form of [`HistogramSnapshot::min`]).
    pub fn min_or_zero(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another snapshot into this one — bucket-wise addition, so
    /// the result is independent of merge order and of how recordings were
    /// partitioned across the inputs.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (into, from) in self.buckets.iter_mut().zip(&other.buckets) {
            *into += from;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The quantile `q` (in `[0, 1]`) of the recorded distribution: walks
    /// the cumulative bucket counts to the bucket holding the rank-`⌈q·n⌉`
    /// value and reports that bucket's upper bound, clamped to the
    /// observed max. Monotone in `q` by construction (the cumulative walk
    /// can only move right), so `p50 ≤ p90 ≤ p95 ≤ p99` always holds.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// The `(lower_bound, count)` pairs of the non-empty buckets — the
    /// compact export form.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, count)| **count > 0)
            .map(|(index, count)| (bucket_lower(index), *count))
            .collect()
    }

    /// The snapshot as a JSON object: count/sum/min/max/mean, the p50–p99
    /// quantiles, and the non-empty `[lower_bound, count]` bucket pairs.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        let mut obj = Value::object();
        obj.insert("count", Value::from(self.count));
        obj.insert("sum", Value::from(self.sum));
        obj.insert("min", Value::from(self.min_or_zero()));
        obj.insert("max", Value::from(self.max));
        obj.insert("mean", Value::from(self.mean()));
        obj.insert("p50", Value::from(self.quantile(0.50)));
        obj.insert("p90", Value::from(self.quantile(0.90)));
        obj.insert("p95", Value::from(self.quantile(0.95)));
        obj.insert("p99", Value::from(self.quantile(0.99)));
        let buckets = self
            .nonzero_buckets()
            .into_iter()
            .map(|(lower, count)| Value::Array(vec![Value::from(lower), Value::from(count)]))
            .collect();
        obj.insert("buckets", Value::Array(buckets));
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for index in 0..BUCKETS {
            assert!(bucket_lower(index) <= bucket_upper(index));
            assert_eq!(bucket_index(bucket_lower(index)), index);
            assert_eq!(bucket_index(bucket_upper(index)), index);
        }
        // Buckets tile the range with no gaps.
        for index in 1..BUCKETS {
            assert_eq!(bucket_upper(index - 1) + 1, bucket_lower(index));
        }
    }

    #[test]
    fn record_and_snapshot_agree() {
        let hist = Histogram::new();
        for value in [0, 1, 1, 7, 100, 1000] {
            hist.record(value);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1109);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.buckets[bucket_index(1)], 2);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 6);
    }

    #[test]
    fn empty_snapshot_exports_zeros() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.min_or_zero(), 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.nonzero_buckets().is_empty());
        let value = snap.to_value();
        assert_eq!(value.get("count").and_then(serde_json::Value::as_u64), Some(0));
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let hist = Histogram::new();
        // 90 fast (≤ 127 µs bucket) + 10 slow (≤ 8191 µs bucket).
        for _ in 0..90 {
            hist.record(100);
        }
        for _ in 0..10 {
            hist.record(5000);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.quantile(0.50), 127);
        assert_eq!(snap.quantile(0.90), 127);
        assert_eq!(snap.quantile(0.99), 5000, "clamped to the observed max");
        assert!(snap.quantile(0.50) <= snap.quantile(0.95));
    }

    #[test]
    fn concurrent_recorders_lose_nothing() {
        let hist = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let hist = std::sync::Arc::clone(&hist);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        hist.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = hist.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(snap.max, 3999);
        assert_eq!(snap.min, 0);
    }
}
