//! Workspace-wide telemetry: metrics registry, latency histograms, and
//! per-stage span timers.
//!
//! Every layer of the CacheMind workspace records into a
//! [`MetricsRegistry`]: monotonic [`Counter`]s, [`Gauge`]s, and log-scale
//! latency [`Histogram`]s fed by [`SpanTimer`]s. The design rules, in
//! order:
//!
//! 1. **Observability never perturbs deterministic outputs.** Metrics are
//!    side channels — wall-clock content only. Nothing recorded here may
//!    flow into an answer, a report's deterministic half, or any byte the
//!    thread-count determinism tests compare.
//! 2. **The hot path is lock-free.** Handles ([`Counter`], [`Gauge`],
//!    [`HistogramHandle`]) are registered once (one short mutex
//!    acquisition) and then increment/record through atomics only.
//!    Histograms additionally stripe their buckets across shards keyed by
//!    thread, so concurrent recorders do not contend on one cache line.
//! 3. **Merges are order- and partition-independent.** Histogram state is
//!    pure bucket counts; merging is bucket-wise addition, so any
//!    partition of the same recordings over any number of histograms (or
//!    shards, or threads) merges to the same snapshot.
//!
//! Two registry scopes exist:
//!
//! * **Owned registries** — e.g. one per `ServeEngine` — so a server's
//!   `stats` snapshot counts exactly its own traffic (and tests can assert
//!   exact totals without cross-test contamination).
//! * **The process-global registry** ([`global`]) — the default sink for
//!   library stages without an owner (sweep prepare/replay, trace-database
//!   build, snapshot save/load/verify), which single-workload binaries
//!   (`sweep_grid`, `build_db`) read back for their bench records.
//!
//! The canonical metric names live in [`names`]; the bucket layout and
//! span taxonomy are documented in `docs/OBSERVABILITY.md`.

pub mod histogram;
pub mod registry;
pub mod span;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, HistogramHandle, MetricsRegistry, MetricsSnapshot};
pub use span::SpanTimer;

/// Version stamp carried by every exported metrics snapshot
/// ([`MetricsSnapshot::to_value`]), so downstream consumers can detect
/// schema changes.
pub const METRICS_SNAPSHOT_VERSION: u64 = 1;

/// The canonical metric names recorded across the workspace — one
/// definition shared by the instrumented crates, the docs, and the tests.
/// Span histograms record elapsed wall-clock **microseconds**.
pub mod names {
    /// Sweep stage 1 (stream transform + scenario prepare), per grid run.
    pub const SWEEP_PREPARE: &str = "sweep.prepare";
    /// Sweep stage 2 (per-cell policy replay + canonical sort), per grid
    /// run.
    pub const SWEEP_REPLAY: &str = "sweep.replay";
    /// Counter: scenario-grid cells that reused an already-prepared
    /// stage-1 scenario instead of re-preparing (cells − triples per run).
    pub const SWEEP_PREPARE_REUSE: &str = "sweep.prepare.reuse_hits";
    /// One policy replay of one scenario cell, per cell (the per-cell
    /// latency histogram behind the per-run [`SWEEP_REPLAY`] span).
    pub const SWEEP_CELL_REPLAY: &str = "sweep.cell_replay";
    /// Sharded trace-database build (simulation + tabulation), per build.
    pub const TRACEDB_BUILD: &str = "tracedb.build";
    /// Snapshot encode + write (the save path), per save.
    pub const TRACEDB_SNAPSHOT_SAVE: &str = "tracedb.snapshot_save";
    /// Snapshot read + decode (eager load path), per load.
    pub const TRACEDB_SNAPSHOT_LOAD: &str = "tracedb.snapshot_load";
    /// Snapshot read + full checksum verification (lazy open path), per
    /// open.
    pub const TRACEDB_SNAPSHOT_VERIFY: &str = "tracedb.snapshot_verify";
    /// Deferred snapshot decode on first query, per lazy store.
    pub const TRACEDB_LAZY_DECODE: &str = "tracedb.lazy_decode";
    /// Counter: shard segments decoded by lazy stores.
    pub const TRACEDB_LAZY_DECODE_SEGMENTS: &str = "tracedb.lazy_decode_segments";
    /// Counter: trace entries decoded by lazy stores.
    pub const TRACEDB_LAZY_DECODE_TRACES: &str = "tracedb.lazy_decode_traces";
    /// Ranger plan compilation, per retrieval.
    pub const RETRIEVAL_PLAN_COMPILE: &str = "retrieval.plan_compile";
    /// Ranger plan execution, per retrieval.
    pub const RETRIEVAL_PLAN_RUN: &str = "retrieval.plan_run";
    /// Counter: whole-answer cache lookups that replayed a stored answer.
    pub const RETRIEVAL_CACHE_HITS: &str = "retrieval.cache.hits";
    /// Counter: whole-answer cache lookups that fell through to the full
    /// answering pipeline.
    pub const RETRIEVAL_CACHE_MISSES: &str = "retrieval.cache.misses";
    /// Counter: answers stored into the whole-answer cache after a miss.
    pub const RETRIEVAL_CACHE_INSERTS: &str = "retrieval.cache.inserts";
    /// Request-line JSON parse in the serve event loop, per line.
    pub const SERVE_PARSE: &str = "serve.parse";
    /// One question answered through the serving pipeline, per request.
    pub const SERVE_ASK: &str = "serve.ask";
    /// Response rendering in the serve event loop, per line.
    pub const SERVE_RESPOND: &str = "serve.respond";
    /// One batched ask round in the load driver, per round.
    pub const SERVE_ROUND: &str = "serve.round";
    /// One whole load-driver drive (all rounds), per run.
    pub const SERVE_LOAD_DRIVE: &str = "serve.load_drive";
    /// Counter: ask requests (load-driver rounds and protocol asks).
    pub const SERVE_REQUESTS_ASK: &str = "serve.requests.ask";
    /// Counter: protocol `open` requests.
    pub const SERVE_REQUESTS_OPEN: &str = "serve.requests.open";
    /// Counter: protocol `close` requests.
    pub const SERVE_REQUESTS_CLOSE: &str = "serve.requests.close";
    /// Counter: protocol `stats` requests (snapshotted *before* the
    /// increment, so a stats response never counts itself).
    pub const SERVE_REQUESTS_STATS: &str = "serve.requests.stats";
    /// Counter prefix: in-band errors by `error_kind` — e.g.
    /// `serve.errors.unknown_session`.
    pub const SERVE_ERRORS_PREFIX: &str = "serve.errors.";
    /// Counter: sessions opened (any path: protocol, rounds, library).
    pub const SERVE_SESSIONS_OPENED: &str = "serve.sessions_opened";
    /// Counter: sessions closed by a `close` request or call.
    pub const SERVE_SESSIONS_CLOSED: &str = "serve.sessions_closed";
    /// Counter: sessions reaped by the idle-round horizon.
    pub const SERVE_SESSIONS_REAPED: &str = "serve.sessions_reaped";
    /// Gauge: sessions currently open (set when a snapshot is taken).
    pub const SERVE_SESSIONS_OPEN: &str = "serve.sessions_open";
    /// One connection accepted (admission check + handoff to its reader
    /// and writer threads), per accept.
    pub const SERVE_NET_ACCEPT: &str = "serve.net.accept";
    /// One request line framed off a TCP socket, per line.
    pub const SERVE_NET_READ: &str = "serve.net.read";
    /// One response line written + flushed to a TCP socket, per line.
    pub const SERVE_NET_WRITE: &str = "serve.net.write";
    /// Gauge: TCP connections currently open.
    pub const SERVE_NET_CONNECTIONS_OPEN: &str = "serve.net.connections_open";
    /// Counter: TCP connections admitted into the connection table.
    pub const SERVE_NET_CONNECTIONS_ACCEPTED: &str = "serve.net.connections_accepted";
    /// Counter: TCP connections refused at the door (`--max-connections`);
    /// each refusal is answered in-band with `error_kind:"overloaded"`
    /// before the socket closes.
    pub const SERVE_NET_CONNECTIONS_REJECTED: &str = "serve.net.connections_rejected";
    /// Counter: request lines refused because the bounded pending-request
    /// queue was full; each is answered in-band with
    /// `error_kind:"overloaded"` on its own connection.
    pub const SERVE_NET_QUEUE_REJECTED: &str = "serve.net.queue_rejected";
    /// Counter: request bytes read off TCP sockets (framed lines incl.
    /// the newline).
    pub const SERVE_NET_BYTES_IN: &str = "serve.net.bytes_in";
    /// Counter: response bytes written to TCP sockets (incl. the
    /// newline).
    pub const SERVE_NET_BYTES_OUT: &str = "serve.net.bytes_out";
    /// Counter: sessions reaped because their owning connection
    /// disconnected (`--session-scope conn`).
    pub const SERVE_NET_SESSIONS_REAPED: &str = "serve.net.sessions_reaped";
}

/// The process-global registry: the default sink for library stages that
/// have no owning component (sweep stages, trace-database builds, snapshot
/// I/O) and the source single-workload binaries read their bench timings
/// from. Owned components (the serve engine) use their own registry so
/// their snapshots count exactly their own traffic.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("obs.test.global").add(2);
        assert!(global().snapshot().counter("obs.test.global") >= 2);
    }

    #[test]
    fn names_are_unique() {
        let all = [
            names::SWEEP_PREPARE,
            names::SWEEP_REPLAY,
            names::SWEEP_PREPARE_REUSE,
            names::SWEEP_CELL_REPLAY,
            names::TRACEDB_BUILD,
            names::TRACEDB_SNAPSHOT_SAVE,
            names::TRACEDB_SNAPSHOT_LOAD,
            names::TRACEDB_SNAPSHOT_VERIFY,
            names::TRACEDB_LAZY_DECODE,
            names::TRACEDB_LAZY_DECODE_SEGMENTS,
            names::TRACEDB_LAZY_DECODE_TRACES,
            names::RETRIEVAL_PLAN_COMPILE,
            names::RETRIEVAL_PLAN_RUN,
            names::RETRIEVAL_CACHE_HITS,
            names::RETRIEVAL_CACHE_MISSES,
            names::RETRIEVAL_CACHE_INSERTS,
            names::SERVE_PARSE,
            names::SERVE_ASK,
            names::SERVE_RESPOND,
            names::SERVE_ROUND,
            names::SERVE_LOAD_DRIVE,
            names::SERVE_REQUESTS_ASK,
            names::SERVE_REQUESTS_OPEN,
            names::SERVE_REQUESTS_CLOSE,
            names::SERVE_REQUESTS_STATS,
            names::SERVE_SESSIONS_OPENED,
            names::SERVE_SESSIONS_CLOSED,
            names::SERVE_SESSIONS_REAPED,
            names::SERVE_SESSIONS_OPEN,
            names::SERVE_NET_ACCEPT,
            names::SERVE_NET_READ,
            names::SERVE_NET_WRITE,
            names::SERVE_NET_CONNECTIONS_OPEN,
            names::SERVE_NET_CONNECTIONS_ACCEPTED,
            names::SERVE_NET_CONNECTIONS_REJECTED,
            names::SERVE_NET_QUEUE_REJECTED,
            names::SERVE_NET_BYTES_IN,
            names::SERVE_NET_BYTES_OUT,
            names::SERVE_NET_SESSIONS_REAPED,
        ];
        let unique: std::collections::BTreeSet<&str> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }
}
