//! The metrics registry: named counters, gauges and histograms behind
//! cheap clonable handles.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes one short mutex
//! acquisition to look up or create the named metric; the returned handle
//! is an `Arc` straight to the atomic state, so the increment/record hot
//! path never touches a lock again. Components that record on every
//! request pre-register their handles once at construction.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde_json::Value;

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::span::SpanTimer;
use crate::METRICS_SNAPSHOT_VERSION;

/// A monotonic counter handle. Cloning shares the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable signed level (open sessions, queue depth).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle. Cloning shares the underlying striped buckets.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Histogram>);

impl HistogramHandle {
    /// Records one value (lock-free).
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }

    /// Starts a span timer that records its elapsed microseconds into
    /// this histogram when finished (or dropped).
    pub fn start_span(&self) -> SpanTimer {
        SpanTimer::new(self.clone())
    }

    /// Sums the histogram's stripes into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, HistogramHandle>>,
}

/// A named-metric registry. Cloning is cheap (an `Arc`); clones share the
/// same metrics, so a component can hand its registry down to the layers
/// it owns and read one coherent snapshot back.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Whether two registries share the same underlying metrics.
    pub fn same_as(&self, other: &MetricsRegistry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock().expect("counter map lock");
        counters.entry(name.to_owned()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.lock().expect("gauge map lock");
        gauges.entry(name.to_owned()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut histograms = self.inner.histograms.lock().expect("histogram map lock");
        histograms
            .entry(name.to_owned())
            .or_insert_with(|| HistogramHandle(Arc::new(Histogram::new())))
            .clone()
    }

    /// Starts a span timer recording into the histogram named `name`.
    /// Per-call registration costs one mutex acquisition — hot paths
    /// should pre-register the handle and use
    /// [`HistogramHandle::start_span`].
    pub fn span(&self, name: &str) -> SpanTimer {
        self.histogram(name).start_span()
    }

    /// A point-in-time snapshot of every metric in the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("counter map lock")
            .iter()
            .map(|(name, counter)| (name.clone(), counter.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("gauge map lock")
            .iter()
            .map(|(name, gauge)| (name.clone(), gauge.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("histogram map lock")
            .iter()
            .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// A point-in-time view of a registry: plain values, no atomics — safe to
/// export, merge or assert against.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The counter named `name` (0 when never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge named `name` (0 when never registered).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The histogram named `name`, when recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The sum of the histogram named `name` (0 when never recorded) —
    /// how the bench binaries read a stage's accumulated wall time back.
    pub fn histogram_sum(&self, name: &str) -> u64 {
        self.histograms.get(name).map(|h| h.sum).unwrap_or(0)
    }

    /// The `(name, value)` counters whose name starts with `prefix` —
    /// e.g. every `serve.errors.` kind.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(name, value)| (name.as_str(), *value))
            .collect()
    }

    /// The snapshot as a versioned JSON object:
    ///
    /// ```json
    /// {"version": 1, "counters": {...}, "gauges": {...},
    ///  "histograms": {"serve.ask": {"count": ..., "p50": ..., ...}}}
    /// ```
    ///
    /// Histograms with no samples (registered but never recorded) are
    /// omitted — every exported quantile is backed by real data.
    pub fn to_value(&self) -> Value {
        let mut counters = Value::object();
        for (name, value) in &self.counters {
            counters.insert(name, Value::from(*value));
        }
        let mut gauges = Value::object();
        for (name, value) in &self.gauges {
            gauges.insert(name, Value::from(*value as f64));
        }
        let mut histograms = Value::object();
        for (name, histogram) in &self.histograms {
            if !histogram.is_empty() {
                histograms.insert(name, histogram.to_value());
            }
        }
        let mut root = Value::object();
        root.insert("version", Value::from(METRICS_SNAPSHOT_VERSION));
        root.insert("counters", counters);
        root.insert("gauges", gauges);
        root.insert("histograms", histograms);
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_with_the_registry() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("requests");
        counter.inc();
        counter.add(4);
        assert_eq!(registry.counter("requests").get(), 5, "same name, same atomic");
        registry.gauge("depth").set(3);
        registry.gauge("depth").add(-1);
        assert_eq!(registry.gauge("depth").get(), 2);
        registry.histogram("latency").record(9);
        assert_eq!(registry.histogram("latency").snapshot().count, 1);
    }

    #[test]
    fn clones_share_metrics() {
        let registry = MetricsRegistry::new();
        let clone = registry.clone();
        assert!(registry.same_as(&clone));
        clone.counter("x").inc();
        assert_eq!(registry.snapshot().counter("x"), 1);
        assert!(!registry.same_as(&MetricsRegistry::new()));
    }

    #[test]
    fn snapshot_reads_every_metric() {
        let registry = MetricsRegistry::new();
        registry.counter("serve.errors.bad_request").add(2);
        registry.counter("serve.errors.unknown_session").inc();
        registry.counter("serve.requests.ask").add(7);
        registry.histogram("serve.ask").record(100);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.requests.ask"), 7);
        assert_eq!(snap.counter("never.registered"), 0);
        assert_eq!(
            snap.counters_with_prefix("serve.errors."),
            vec![("serve.errors.bad_request", 2), ("serve.errors.unknown_session", 1)]
        );
        assert_eq!(snap.histogram_sum("serve.ask"), 100);
        assert_eq!(snap.histogram_sum("never.recorded"), 0);
    }

    #[test]
    fn snapshot_exports_versioned_json() {
        let registry = MetricsRegistry::new();
        registry.counter("c").add(3);
        registry.gauge("g").set(-2);
        registry.histogram("h").record(5);
        let value = registry.snapshot().to_value();
        assert_eq!(value.get("version").and_then(Value::as_u64), Some(1));
        let counters = value.get("counters").expect("counters object");
        assert_eq!(counters.get("c").and_then(Value::as_u64), Some(3));
        let gauges = value.get("gauges").expect("gauges object");
        assert_eq!(gauges.get("g").and_then(Value::as_f64), Some(-2.0));
        let histograms = value.get("histograms").expect("histograms object");
        assert_eq!(
            histograms.get("h").and_then(|h| h.get("count")).and_then(Value::as_u64),
            Some(1)
        );
    }
}
