//! Property tests for the log-scale histogram: bucket placement,
//! order/partition-independent merge, and monotone quantile export.

use proptest::prelude::*;

use cachemind_obs::histogram::{bucket_index, bucket_lower, bucket_upper};
use cachemind_obs::{Histogram, HistogramSnapshot};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let hist = Histogram::new();
    for &value in values {
        hist.record(value);
    }
    hist.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every recorded value lands in exactly the bucket whose
    /// `[lower, upper]` range contains it, and bucket totals account for
    /// every recording.
    #[test]
    fn values_land_in_the_right_buckets(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), values.len() as u64);
        for &value in &values {
            let index = bucket_index(value);
            prop_assert!(bucket_lower(index) <= value && value <= bucket_upper(index));
            prop_assert!(snap.buckets[index] > 0);
        }
        let mut expected = vec![0u64; snap.buckets.len()];
        for &value in &values {
            expected[bucket_index(value)] += 1;
        }
        prop_assert_eq!(&snap.buckets, &expected);
    }

    /// Any partition of the same recordings across per-thread histograms,
    /// merged in any order, yields the same snapshot as recording
    /// everything into one histogram.
    #[test]
    fn merge_is_order_and_partition_independent(
        values in proptest::collection::vec(0u64..1_000_000, 1..200),
        cuts in proptest::collection::vec(0usize..200, 0..4),
        reverse in any::<bool>(),
    ) {
        let whole = snapshot_of(&values);

        // Split the recordings at the (sorted, clamped) cut points.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (values.len() + 1)).collect();
        bounds.push(0);
        bounds.push(values.len());
        bounds.sort_unstable();
        let mut parts: Vec<HistogramSnapshot> = bounds
            .windows(2)
            .map(|w| snapshot_of(&values[w[0]..w[1]]))
            .collect();
        if reverse {
            parts.reverse();
        }

        let mut merged = HistogramSnapshot::empty();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged, whole);
    }

    /// Quantile export is monotone in `q` (p50 ≤ p90 ≤ p95 ≤ p99), bounded
    /// by the observed extremes, and each reported quantile is at most one
    /// bucket's width above the true rank value.
    #[test]
    fn quantile_export_is_monotone_and_bounded(
        values in proptest::collection::vec(0u64..10_000_000, 1..200),
    ) {
        let snap = snapshot_of(&values);
        let p50 = snap.quantile(0.50);
        let p90 = snap.quantile(0.90);
        let p95 = snap.quantile(0.95);
        let p99 = snap.quantile(0.99);
        prop_assert!(p50 <= p90 && p90 <= p95 && p95 <= p99);
        prop_assert!(p99 <= snap.max);
        prop_assert!(p50 >= snap.min_or_zero());

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (q, reported) in [(0.50, p50), (0.90, p90), (0.95, p95), (0.99, p99)] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            // Reported quantile never undershoots the true value and
            // overshoots by at most the bucket's ≤ 2× relative error.
            prop_assert!(reported >= exact);
            prop_assert!(reported <= bucket_upper(bucket_index(exact)).min(snap.max));
        }
    }
}
