//! [`ShardedTraceDatabase`] — the trace store partitioned into
//! independently-built shards.
//!
//! The builder assigns every `workload × policy` pair to a shard with the
//! deterministic [`shard_index`] function and
//! builds the shards in parallel (one simulation per pair, oracle shared
//! per workload). Reads compose the shards back into a single ascending
//! key space behind the [`TraceStore`] surface, so retrieval and the
//! system layer cannot tell a sharded store from a monolithic one — the
//! serve layer, however, can see the shard structure and uses it to group
//! batched queries.

use std::collections::BTreeMap;

use cachemind_sim::config::CacheConfig;

use crate::database::{TraceDatabase, TraceEntry};
use crate::store::{shard_index, TraceStore};

/// A trace database physically split into shards.
///
/// Invariants maintained by construction:
///
/// * every trace key lives in exactly one shard, the one
///   `shard_index(key, shards.len())` names;
/// * `assignment` maps every stored key to its shard, in ascending key
///   order (it is the global index);
/// * all shards share the same LLC geometry.
#[derive(Debug, Clone, Default)]
pub struct ShardedTraceDatabase {
    shards: Vec<TraceDatabase>,
    assignment: BTreeMap<String, usize>,
}

impl ShardedTraceDatabase {
    /// Assembles a sharded database from prebuilt entries.
    ///
    /// Entries are routed to `shards.max(1)` shards by
    /// [`shard_index`]; later duplicates of a key replace earlier ones,
    /// matching [`TraceDatabase::insert`] semantics.
    pub fn from_entries(entries: Vec<TraceEntry>, shards: usize, llc: Option<CacheConfig>) -> Self {
        let n = shards.max(1);
        let mut parts: Vec<TraceDatabase> = (0..n)
            .map(|_| {
                let mut db = TraceDatabase::new();
                if let Some(cfg) = llc.clone() {
                    db.set_llc_config(cfg);
                }
                db
            })
            .collect();
        let mut assignment = BTreeMap::new();
        for entry in entries {
            let key = entry.id.key();
            let shard = shard_index(&key, n);
            assignment.insert(key, shard);
            parts[shard].insert(entry);
        }
        ShardedTraceDatabase { shards: parts, assignment }
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard, as a plain [`TraceDatabase`].
    pub fn shard(&self, index: usize) -> &TraceDatabase {
        &self.shards[index]
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[TraceDatabase] {
        &self.shards
    }

    /// The shard holding `key`, if the key is stored.
    pub fn shard_of_key(&self, key: &str) -> Option<usize> {
        self.assignment.get(key).copied()
    }

    /// Serializes the database into the versioned snapshot byte format
    /// ([`crate::snapshot::write_snapshot`]): byte-stable across runs and
    /// thread counts.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        crate::snapshot::write_snapshot(self)
    }

    /// Deserializes a database from snapshot bytes
    /// ([`crate::snapshot::read_snapshot`]).
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, crate::snapshot::SnapshotError> {
        crate::snapshot::read_snapshot(bytes)
    }

    /// Writes the database to `path` as a snapshot file.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        crate::snapshot::save_to_path(self, path.as_ref())
    }

    /// Loads a database from a snapshot file written by
    /// [`ShardedTraceDatabase::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, crate::snapshot::SnapshotError> {
        crate::snapshot::load_from_path(path.as_ref())
    }

    /// Merges all shards into a single monolithic [`TraceDatabase`],
    /// consuming the sharded store. The result is byte-for-byte the
    /// database the serial builder would have produced.
    pub fn into_unified(self) -> TraceDatabase {
        let mut out = TraceDatabase::new();
        let mut llc = None;
        for shard in self.shards {
            if llc.is_none() {
                llc = shard.llc_config().cloned();
            }
            for entry in shard.into_entries() {
                out.insert(entry);
            }
        }
        if let Some(cfg) = llc {
            out.set_llc_config(cfg);
        }
        out
    }
}

impl TraceStore for ShardedTraceDatabase {
    fn get(&self, key: &str) -> Option<&TraceEntry> {
        let shard = *self.assignment.get(key)?;
        self.shards[shard].get(key)
    }

    fn trace_keys(&self) -> Vec<String> {
        self.assignment.keys().cloned().collect()
    }

    fn entries<'a>(&'a self) -> Box<dyn Iterator<Item = &'a TraceEntry> + 'a> {
        Box::new(
            self.assignment.iter().filter_map(move |(key, shard)| self.shards[*shard].get(key)),
        )
    }

    fn workloads(&self) -> Vec<String> {
        let mut set = std::collections::BTreeSet::new();
        for shard in &self.shards {
            set.extend(shard.workloads());
        }
        set.into_iter().collect()
    }

    fn policies(&self) -> Vec<String> {
        let mut set = std::collections::BTreeSet::new();
        for shard in &self.shards {
            set.extend(shard.policies());
        }
        set.into_iter().collect()
    }

    fn llc_config(&self) -> Option<&CacheConfig> {
        self.shards.iter().find_map(|s| s.llc_config())
    }

    fn len(&self) -> usize {
        self.assignment.len()
    }

    fn shard_count(&self) -> usize {
        self.shards.len().max(1)
    }

    fn shard_of(&self, key: &str) -> usize {
        shard_index(key, self.shards.len().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TraceDatabaseBuilder;

    fn sharded(n: usize) -> ShardedTraceDatabase {
        TraceDatabaseBuilder::quick_demo().shards(n).try_build_sharded().expect("valid names")
    }

    #[test]
    fn reads_compose_shards_into_one_key_space() {
        let s = sharded(3);
        let flat = TraceDatabaseBuilder::quick_demo().build();
        assert_eq!(s.len(), flat.len());
        assert_eq!(s.trace_keys(), flat.trace_ids().map(str::to_owned).collect::<Vec<_>>());
        assert_eq!(TraceStore::workloads(&s), flat.workloads());
        assert_eq!(TraceStore::policies(&s), flat.policies());
        for key in s.trace_keys() {
            let a = TraceStore::get(&s, &key).expect("sharded get");
            let b = flat.get(&key).expect("flat get");
            assert_eq!(a.metadata, b.metadata, "{key}");
        }
        // entries() iterates in ascending key order.
        let keys: Vec<String> = TraceStore::entries(&s).map(|e| e.id.key()).collect();
        assert_eq!(keys, s.trace_keys());
    }

    #[test]
    fn every_key_lives_in_its_assigned_shard() {
        let s = sharded(4);
        for key in s.trace_keys() {
            let shard = s.shard_of_key(&key).expect("assigned");
            assert_eq!(shard, s.shard_of(&key), "assignment must match the pure function");
            assert!(s.shard(shard).get(&key).is_some(), "{key} missing from shard {shard}");
            for (i, other) in s.shards().iter().enumerate() {
                if i != shard {
                    assert!(other.get(&key).is_none(), "{key} duplicated into shard {i}");
                }
            }
        }
    }

    #[test]
    fn unification_recovers_the_monolithic_database() {
        let unified = sharded(5).into_unified();
        let flat = TraceDatabaseBuilder::quick_demo().build();
        assert_eq!(unified.trace_ids().collect::<Vec<_>>(), flat.trace_ids().collect::<Vec<_>>());
        assert_eq!(unified.llc_config(), flat.llc_config());
    }

    #[test]
    fn single_shard_degenerates_to_flat_layout() {
        let s = sharded(1);
        assert_eq!(s.num_shards(), 1);
        assert_eq!(s.shard(0).len(), s.len());
    }
}
