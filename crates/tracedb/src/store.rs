//! [`TraceStore`] — the query surface shared by the monolithic
//! [`TraceDatabase`](crate::database::TraceDatabase) and the
//! [`ShardedTraceDatabase`](crate::shard::ShardedTraceDatabase).
//!
//! Retrievers and the CacheMind system layer are written against this
//! trait, so they work unchanged whether the traces live in one `BTreeMap`
//! or are partitioned across shards built in parallel. The trait is
//! object-safe (`&dyn TraceStore`) because the system layer holds an
//! `Arc<dyn TraceStore>` shared by many concurrent chat sessions.

use cachemind_sim::config::CacheConfig;
use cachemind_sim::scenario::ScenarioSelector;

use crate::database::{TraceEntry, TraceId};

/// Read access to a collection of stored traces.
///
/// Iteration order is part of the contract: [`TraceStore::trace_keys`] and
/// [`TraceStore::entries`] yield traces in ascending key order regardless of
/// physical layout, so everything computed over a store is deterministic.
///
/// Keys follow the qualified grammar of [`TraceId`]
/// (`<workload>_evictions_<policy>[@machine][+prefetcher]`); the
/// selector-filtered surface — [`TraceStore::select`],
/// [`TraceStore::get_scoped`], [`TraceStore::machines`],
/// [`TraceStore::prefetchers`] — scopes reads by a
/// [`ScenarioSelector`] so one multi-scenario store can answer
/// per-machine, per-prefetcher questions without its unscoped behaviour
/// changing at all.
pub trait TraceStore: std::fmt::Debug + Send + Sync {
    /// Looks up a trace by its `<workload>_evictions_<policy>` key.
    fn get(&self, key: &str) -> Option<&TraceEntry>;

    /// Looks up a trace by parsed id.
    fn get_id(&self, id: &TraceId) -> Option<&TraceEntry> {
        self.get(&id.key())
    }

    /// All trace keys, in ascending order.
    fn trace_keys(&self) -> Vec<String>;

    /// All entries, in ascending key order.
    fn entries<'a>(&'a self) -> Box<dyn Iterator<Item = &'a TraceEntry> + 'a>;

    /// Distinct workload names present, sorted.
    fn workloads(&self) -> Vec<String>;

    /// Distinct policy names present, sorted.
    fn policies(&self) -> Vec<String>;

    /// The LLC geometry the traces were produced under (if known).
    fn llc_config(&self) -> Option<&CacheConfig>;

    /// Number of stored traces.
    fn len(&self) -> usize;

    /// Whether the store holds no traces.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of physical shards behind the store (1 for a monolithic
    /// database).
    fn shard_count(&self) -> usize {
        1
    }

    /// The shard a trace key is (or would be) assigned to. Monolithic
    /// stores map everything to shard 0. The assignment is a pure function
    /// of the key, so callers may use it as a deterministic scheduling key
    /// for batched work.
    fn shard_of(&self, _key: &str) -> usize {
        0
    }

    /// Distinct canonical machine labels present, sorted — one per machine
    /// the builder produced traces for.
    fn machines(&self) -> Vec<String> {
        let set: std::collections::BTreeSet<String> =
            self.entries().map(|e| e.machine.clone()).collect();
        set.into_iter().collect()
    }

    /// Distinct canonical prefetcher labels present, sorted (`"none"` for
    /// baseline entries, plus one label per prefetcher the builder
    /// transformed streams through).
    fn prefetchers(&self) -> Vec<String> {
        let set: std::collections::BTreeSet<String> =
            self.entries().map(|e| e.prefetcher.clone()).collect();
        set.into_iter().collect()
    }

    /// The entries a [`ScenarioSelector`] scopes to, in ascending key
    /// order: every selector axis that is set must match (workload and
    /// policy exactly, prefetcher by canonical label, machine by name or
    /// label — see [`ScenarioSelector::matches_machine`]).
    fn select<'a>(
        &'a self,
        selector: &ScenarioSelector,
    ) -> Box<dyn Iterator<Item = &'a TraceEntry> + 'a> {
        let selector = selector.clone();
        Box::new(self.entries().filter(move |e| {
            selector.matches(&e.id.workload, &e.machine, &e.prefetcher, &e.id.policy)
        }))
    }

    /// Looks up the trace for `(workload, policy)` within a selector's
    /// *machine scope* (machine + prefetcher; the selector's workload and
    /// policy fields are slot defaults for intent resolution, not filters
    /// here — the id already names the pair).
    ///
    /// The unqualified primary-machine baseline entry wins when it
    /// satisfies the scope (so unscoped queries behave exactly as before);
    /// otherwise keyed qualified lookups are tried — the scope's machine
    /// value as a full canonical label and/or its prefetcher label,
    /// assembled into the qualified key shapes of [`TraceId::qualified`] —
    /// and only a scope naming a machine by *preset name* falls back to
    /// the linear in-scope scan (first match in ascending key order).
    /// A scope prefetcher of `"none"` selects the unqualified baseline
    /// entries, which carry that label. `None` when no entry for the pair
    /// lies in scope.
    fn get_scoped(&self, id: &TraceId, selector: &ScenarioSelector) -> Option<&TraceEntry> {
        self.get_scoped_resolved(id, &selector.machine_scope())
    }

    /// [`TraceStore::get_scoped`] over a scope that is *already* a machine
    /// scope (workload/policy cleared — see
    /// [`ScenarioSelector::machine_scope`]): the resolve-once entry point.
    /// Multi-step plans derive the machine scope once per run and pass it
    /// down to every branch instead of re-deriving (and re-allocating) it
    /// per trace lookup. Passing a selector whose workload/policy halves
    /// are still set would additionally filter the linear-scan fallback by
    /// those fields, which is not the `get_scoped` contract — callers
    /// resolve first.
    fn get_scoped_resolved(&self, id: &TraceId, scope: &ScenarioSelector) -> Option<&TraceEntry> {
        let in_scope = |entry: &TraceEntry| {
            scope.matches_machine(&entry.machine)
                && scope.prefetcher.as_deref().is_none_or(|p| p == entry.prefetcher)
        };
        if let Some(entry) = self.get_id(id) {
            if in_scope(entry) {
                return Some(entry);
            }
        }
        // Keyed fast paths: qualified keys assembled from the scope. The
        // builder writes no `+none` qualification, so a "none" scope
        // prefetcher maps to the unqualified baseline key shapes.
        let machine = scope.machine.as_deref();
        let prefetcher = scope.prefetcher.as_deref().filter(|p| *p != "none");
        let pairs = [(machine, prefetcher), (machine, None), (None, prefetcher)];
        for (i, &(m, p)) in pairs.iter().enumerate() {
            // Skip the unqualified shape (already tried above) and any
            // pair equal to an earlier one (a single-axis scope collapses
            // two of the three shapes into the same key).
            if (m.is_none() && p.is_none()) || pairs[..i].contains(&(m, p)) {
                continue;
            }
            let candidate = TraceId::qualified(&id.workload, &id.policy, m, p);
            if candidate == *id {
                continue;
            }
            if let Some(entry) = self.get_id(&candidate) {
                if in_scope(entry) {
                    return Some(entry);
                }
            }
        }
        self.select(scope).find(|e| e.id.workload == id.workload && e.id.policy == id.policy)
    }
}

impl<T: TraceStore + ?Sized> TraceStore for &T {
    fn get(&self, key: &str) -> Option<&TraceEntry> {
        (**self).get(key)
    }
    fn trace_keys(&self) -> Vec<String> {
        (**self).trace_keys()
    }
    fn entries<'a>(&'a self) -> Box<dyn Iterator<Item = &'a TraceEntry> + 'a> {
        (**self).entries()
    }
    fn workloads(&self) -> Vec<String> {
        (**self).workloads()
    }
    fn policies(&self) -> Vec<String> {
        (**self).policies()
    }
    fn llc_config(&self) -> Option<&CacheConfig> {
        (**self).llc_config()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn shard_count(&self) -> usize {
        (**self).shard_count()
    }
    fn shard_of(&self, key: &str) -> usize {
        (**self).shard_of(key)
    }
}

/// FNV-1a over arbitrary bytes — the stable hash behind shard assignment
/// and the serve layer's report checksums. (`cachemind-lang` keeps its own
/// private copies for embeddings/profiles; crate layering prevents sharing
/// one implementation with it.)
pub fn fnv64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The deterministic shard assignment used across the workspace:
/// [`fnv64`] over the trace key, reduced modulo the shard count. A pure
/// function of `(key, shards)` — independent of build order, thread count,
/// and insertion history.
pub fn shard_index(key: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    (fnv64(key.as_bytes()) % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_index_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8, 64] {
            for key in ["mcf_evictions_lru", "lbm_evictions_belady", ""] {
                let a = shard_index(key, shards);
                let b = shard_index(key, shards);
                assert_eq!(a, b, "assignment must be pure");
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn shard_index_spreads_keys() {
        // With enough keys and several shards, more than one shard is used.
        let keys: Vec<String> = (0..32).map(|i| format!("w{i}_evictions_lru")).collect();
        let used: std::collections::BTreeSet<usize> =
            keys.iter().map(|k| shard_index(k, 4)).collect();
        assert!(used.len() > 1, "keys all collapsed onto one shard: {used:?}");
    }
}
