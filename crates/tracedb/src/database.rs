//! The trace database and its builder: simulate workloads under policies
//! and store the annotated traces.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use cachemind_policies::by_name as policy_by_name;
use cachemind_sim::access::MemoryAccess;
use cachemind_sim::config::{CacheConfig, MachineConfig};
use cachemind_sim::prefetch::PrefetcherKind;
use cachemind_sim::sweep::{prefetch_usefulness, prepare_scenario, transform_stream};
use cachemind_sim::timing::IpcModel;
use cachemind_workloads::workload::{Scale, Workload};
use cachemind_workloads::{by_name as workload_by_name, DATABASE_WORKLOADS};

use crate::frame::TraceFrame;
use crate::meta;
use crate::record::TraceRow;
use crate::shard::ShardedTraceDatabase;
use crate::store::TraceStore;

/// A parsed trace identifier, optionally qualified with the scenario the
/// trace was produced under. The full key grammar is
///
/// ```text
/// <workload>_evictions_<policy>[@<machine_label>][+<prefetcher_label>]
/// ```
///
/// mirroring the [`ScenarioSelector`](cachemind_sim::scenario::ScenarioSelector)
/// text form: `mcf_evictions_lru` (primary machine, no prefetcher),
/// `mcf_evictions_lru@table2@llc2048x16+dram160` (machine-qualified),
/// `mcf_evictions_lru+stride4` (prefetcher-qualified on the primary
/// machine), `mcf_evictions_lru@table2@llc2048x16+dram160+stride4` (both).
///
/// Traces built on the builder's *primary* machine with *no* prefetcher
/// keep the unqualified legacy key, so a database without extra machines
/// or prefetchers is byte-identical to what earlier builders produced;
/// qualified traces are addressed through
/// [`TraceStore::get_scoped`].
///
/// Because canonical machine labels themselves contain `@` and `+`
/// (`table2@llc2048x16+dram160`), [`TraceId::parse`] is right-anchored the
/// same way selector parsing is: a trailing `+component` is a prefetcher
/// qualification only if it parses as a
/// [`PrefetcherKind`] name;
/// everything after the first `@` up to there belongs to the machine.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TraceId {
    /// Workload name (e.g. `mcf`).
    pub workload: String,
    /// Policy name (e.g. `lru`).
    pub policy: String,
    /// Canonical machine label for non-primary-machine traces; `None` for
    /// the primary machine (legacy key shape).
    pub machine: Option<String>,
    /// Canonical prefetcher label (`nextline`, `stride4`) for traces whose
    /// stream was rewritten by a hardware prefetcher before replay; `None`
    /// for the untransformed baseline (the builder never writes a `+none`
    /// qualification — baseline entries are simply unqualified).
    pub prefetcher: Option<String>,
}

impl TraceId {
    /// Creates an id on the primary machine with no prefetcher.
    pub fn new(workload: &str, policy: &str) -> Self {
        TraceId {
            workload: workload.to_owned(),
            policy: policy.to_owned(),
            machine: None,
            prefetcher: None,
        }
    }

    /// Creates a machine-qualified id (no prefetcher).
    pub fn scoped(workload: &str, policy: &str, machine: &str) -> Self {
        TraceId { machine: Some(machine.to_owned()), ..TraceId::new(workload, policy) }
    }

    /// Creates a fully qualified id: any combination of machine and
    /// prefetcher qualification. `None` in either slot selects the primary
    /// machine / the no-prefetch baseline respectively.
    pub fn qualified(
        workload: &str,
        policy: &str,
        machine: Option<&str>,
        prefetcher: Option<&str>,
    ) -> Self {
        TraceId {
            machine: machine.map(str::to_owned),
            prefetcher: prefetcher.map(str::to_owned),
            ..TraceId::new(workload, policy)
        }
    }

    /// Parses a `<workload>_evictions_<policy>[@<machine>][+<prefetcher>]`
    /// key (see the type-level grammar notes).
    pub fn parse(key: &str) -> Option<Self> {
        use cachemind_sim::prefetch::PrefetcherKind;
        let (workload, rest) = key.split_once("_evictions_")?;
        // Right-anchored, like selector parsing: a trailing `+component`
        // is a prefetcher qualification iff it names a prefetcher kind —
        // `+dram160` inside a machine label never parses as one.
        let (rest, prefetcher) = match rest.rfind('+') {
            Some(idx) => match PrefetcherKind::parse(&rest[idx + 1..]) {
                Some(kind) => (&rest[..idx], Some(kind.label())),
                None => (rest, None),
            },
            None => (rest, None),
        };
        let (policy, machine) = match rest.split_once('@') {
            Some((policy, machine)) => {
                if machine.is_empty() {
                    return None;
                }
                (policy, Some(machine.to_owned()))
            }
            None => (rest, None),
        };
        if workload.is_empty() || policy.is_empty() {
            return None;
        }
        Some(TraceId {
            workload: workload.to_owned(),
            policy: policy.to_owned(),
            machine,
            prefetcher,
        })
    }

    /// The storage key (the grammar in the type-level docs).
    pub fn key(&self) -> String {
        let mut key = format!("{}_evictions_{}", self.workload, self.policy);
        if let Some(machine) = &self.machine {
            key.push('@');
            key.push_str(machine);
        }
        if let Some(prefetcher) = &self.prefetcher {
            key.push('+');
            key.push_str(prefetcher);
        }
        key
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

/// One stored trace: frame + metadata string + description (§4.3), plus
/// the machine the trace was produced on and its model-estimated IPC.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// The trace identifier.
    pub id: TraceId,
    /// Per-access rows with program context.
    pub frame: TraceFrame,
    /// The "Cache Performance Summary" string (includes the scenario
    /// sentence: machine label + estimated IPC).
    pub metadata: String,
    /// Human-readable workload + policy description.
    pub description: String,
    /// Canonical label of the machine the trace replayed on.
    pub machine: String,
    /// Canonical label of the prefetcher whose transform rewrote the
    /// stream before replay (`"none"` for baseline entries).
    pub prefetcher: String,
    /// Prefetch accesses that actually filled a line (0 for baseline
    /// entries).
    pub prefetch_fills: u64,
    /// Demand accesses served from a line a prefetch brought in.
    pub useful_prefetches: u64,
    /// `useful_prefetches / prefetch_fills` (0 when nothing was fetched).
    pub prefetch_accuracy: f64,
    /// `useful_prefetches / (useful_prefetches + demand_misses)` — the
    /// fraction of would-be misses the prefetcher covered.
    pub prefetch_coverage: f64,
    /// Model-estimated IPC of the replay (prefetch-aware: covered demand
    /// misses raise it).
    pub ipc: f64,
}

/// The external store: trace id -> entry.
#[derive(Debug, Clone, Default)]
pub struct TraceDatabase {
    entries: BTreeMap<String, TraceEntry>,
    llc: Option<CacheConfig>,
}

impl TraceDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        TraceDatabase::default()
    }

    /// Inserts an entry, replacing any previous trace with the same id.
    pub fn insert(&mut self, entry: TraceEntry) {
        self.entries.insert(entry.id.key(), entry);
    }

    /// Looks up a trace by its `<workload>_evictions_<policy>` key.
    pub fn get(&self, key: &str) -> Option<&TraceEntry> {
        self.entries.get(key)
    }

    /// Looks up a trace by parsed id.
    pub fn get_id(&self, id: &TraceId) -> Option<&TraceEntry> {
        self.entries.get(&id.key())
    }

    /// All trace keys, sorted.
    pub fn trace_ids(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// All entries.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.values()
    }

    /// Distinct workload names present.
    pub fn workloads(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .entries
            .values()
            .map(|e| e.id.workload.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        v.sort();
        v
    }

    /// Distinct policy names present.
    pub fn policies(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .entries
            .values()
            .map(|e| e.id.policy.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        v.sort();
        v
    }

    /// The LLC geometry the traces were produced under (if built by the
    /// builder).
    pub fn llc_config(&self) -> Option<&CacheConfig> {
        self.llc.as_ref()
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records the LLC geometry the traces were produced under.
    pub fn set_llc_config(&mut self, config: CacheConfig) {
        self.llc = Some(config);
    }

    /// Consumes the database, yielding its entries in ascending key order.
    pub fn into_entries(self) -> impl Iterator<Item = TraceEntry> {
        self.entries.into_values()
    }
}

impl TraceStore for TraceDatabase {
    fn get(&self, key: &str) -> Option<&TraceEntry> {
        TraceDatabase::get(self, key)
    }

    fn trace_keys(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    fn entries<'a>(&'a self) -> Box<dyn Iterator<Item = &'a TraceEntry> + 'a> {
        Box::new(self.entries.values())
    }

    fn workloads(&self) -> Vec<String> {
        TraceDatabase::workloads(self)
    }

    fn policies(&self) -> Vec<String> {
        TraceDatabase::policies(self)
    }

    fn llc_config(&self) -> Option<&CacheConfig> {
        TraceDatabase::llc_config(self)
    }

    fn len(&self) -> usize {
        TraceDatabase::len(self)
    }
}

/// An unresolvable builder configuration: the name does not exist in the
/// workload or policy registry.
///
/// Surfaced by [`TraceDatabaseBuilder::try_build`] and friends *before* any
/// simulation starts, so shard workers never panic mid-build and service
/// layers can turn the failure into a clean protocol error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A workload name the registry does not know.
    UnknownWorkload(String),
    /// A policy name the registry does not know.
    UnknownPolicy(String),
    /// A machine preset name [`MachineConfig::preset`] does not know
    /// (surfaced by service layers that resolve presets before building).
    UnknownMachine(String),
    /// A prefetcher name [`PrefetcherKind::parse`] does not know (surfaced
    /// by service layers that resolve prefetcher names before building).
    UnknownPrefetcher(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownWorkload(name) => write!(f, "unknown workload {name:?}"),
            BuildError::UnknownPolicy(name) => write!(f, "unknown policy {name:?}"),
            BuildError::UnknownMachine(name) => write!(f, "unknown machine preset {name:?}"),
            BuildError::UnknownPrefetcher(name) => write!(f, "unknown prefetcher {name:?}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`TraceDatabase`] by simulating workloads under policies.
///
/// # Example
///
/// ```rust
/// use cachemind_tracedb::database::TraceDatabaseBuilder;
/// use cachemind_workloads::Scale;
///
/// let db = TraceDatabaseBuilder::new()
///     .workloads(["mcf"])
///     .policies(["lru", "belady"])
///     .scale(Scale::Tiny)
///     .build();
/// assert_eq!(db.len(), 2);
/// ```
/// The policy-independent half of one `workload × machine × prefetcher`
/// build cell: the machine, the active prefetcher, and the prepared
/// scenario ([`cachemind_sim::sweep::PreparedScenario`] — LLC replay with
/// reuse oracle, plus the baseline hierarchy counters feeding the IPC
/// model on full machines).
#[derive(Debug)]
struct PreparedReplay {
    machine: MachineConfig,
    label: String,
    prefetcher: PrefetcherKind,
    prefetcher_label: String,
    scenario: cachemind_sim::sweep::PreparedScenario,
    primary: bool,
}

#[derive(Debug, Clone)]
pub struct TraceDatabaseBuilder {
    workloads: Vec<String>,
    policies: Vec<String>,
    scale: Scale,
    llc: CacheConfig,
    keep_snapshots_every: usize,
    num_shards: usize,
    extra_machines: Vec<MachineConfig>,
    extra_prefetchers: Vec<PrefetcherKind>,
}

impl Default for TraceDatabaseBuilder {
    fn default() -> Self {
        TraceDatabaseBuilder::new()
    }
}

impl TraceDatabaseBuilder {
    /// The LLC geometry used for database experiments: 256 sets x 8 ways
    /// (a scaled-down Table-2 LLC so that the synthetic working sets
    /// exercise capacity pressure; see DESIGN.md).
    pub fn experiment_llc() -> CacheConfig {
        CacheConfig::new("LLC", 8, 8, 6).with_latency(26).with_mshr(64)
    }

    /// Starts a builder with the paper's defaults: the three database
    /// workloads, the four database policies, `Scale::Small`.
    pub fn new() -> Self {
        TraceDatabaseBuilder {
            workloads: DATABASE_WORKLOADS.iter().map(|s| (*s).to_owned()).collect(),
            policies: cachemind_policies::DATABASE_POLICIES
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            scale: Scale::Small,
            llc: Self::experiment_llc(),
            keep_snapshots_every: 1,
            num_shards: Self::DEFAULT_SHARDS,
            extra_machines: Vec::new(),
            extra_prefetchers: Vec::new(),
        }
    }

    /// A tiny database (all workloads x all policies at `Scale::Tiny`,
    /// under a proportionally small 128-line LLC so the short traces still
    /// exercise real capacity pressure) for tests and doc examples.
    pub fn quick_demo() -> Self {
        TraceDatabaseBuilder::new()
            .scale(Scale::Tiny)
            .llc(CacheConfig::new("LLC", 5, 4, 6).with_latency(26).with_mshr(16))
    }

    /// Selects the workloads to simulate.
    pub fn workloads<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.workloads = names.into_iter().map(Into::into).collect();
        self
    }

    /// Selects the replacement policies to replay.
    pub fn policies<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.policies = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the generation scale.
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the LLC geometry.
    pub fn llc(mut self, config: CacheConfig) -> Self {
        self.llc = config;
        self
    }

    /// Keeps the bulky snapshot columns (resident lines, history, scores)
    /// on every `n`-th row only (1 = every row, 0 = never).
    pub fn keep_snapshots_every(mut self, n: usize) -> Self {
        self.keep_snapshots_every = n;
        self
    }

    /// Adds a machine to build traces for, *in addition to* the primary
    /// (LLC-only) machine the builder's LLC geometry describes.
    ///
    /// Primary-machine traces keep their legacy unqualified keys and are
    /// byte-identical whether or not extra machines are configured; every
    /// extra machine contributes one machine-qualified trace per
    /// `workload × policy` pair ([`TraceId::scoped`]), replayed under that
    /// machine's LLC (full machines filter the stream through L1/L2 first)
    /// with its own [`IpcModel`] estimate — so one database can answer
    /// per-machine questions for many scenarios at once.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.extra_machines.push(machine);
        self
    }

    /// Replaces the extra-machine set (see [`TraceDatabaseBuilder::machine`]).
    pub fn machines<I: IntoIterator<Item = MachineConfig>>(mut self, machines: I) -> Self {
        self.extra_machines = machines.into_iter().collect();
        self
    }

    /// Adds a hardware prefetcher to build traces for, *in addition to* the
    /// no-prefetch baseline.
    ///
    /// Every extra prefetcher contributes one prefetcher-qualified trace
    /// per `workload × machine × policy` cell: the workload stream is
    /// rewritten through the prefetcher model
    /// ([`transform_stream`], the same stage-1 machinery
    /// [`ScenarioGrid`](cachemind_sim::sweep::ScenarioGrid) runs) *before*
    /// the hierarchy filter and replay, the entry's key gains the
    /// `+<prefetcher>` qualification ([`TraceId::qualified`]), and its
    /// metadata records the prefetcher sentence (label, accuracy,
    /// coverage) next to a prefetch-aware IPC estimate — so a `+stride4`
    /// selector scopes to real traces.
    ///
    /// Baseline entries keep their unqualified keys and are byte-identical
    /// whether or not extra prefetchers are configured.
    /// [`PrefetcherKind::None`] names the always-built baseline and is
    /// ignored here; duplicate kinds (by canonical label) are kept once.
    pub fn prefetcher(mut self, kind: PrefetcherKind) -> Self {
        if kind != PrefetcherKind::None
            && !self.extra_prefetchers.iter().any(|k| k.label() == kind.label())
        {
            self.extra_prefetchers.push(kind);
        }
        self
    }

    /// Replaces the extra-prefetcher set (see
    /// [`TraceDatabaseBuilder::prefetcher`] for the per-kind semantics).
    pub fn prefetchers<I: IntoIterator<Item = PrefetcherKind>>(mut self, kinds: I) -> Self {
        self.extra_prefetchers.clear();
        for kind in kinds {
            self = self.prefetcher(kind);
        }
        self
    }

    /// The default shard count for [`TraceDatabaseBuilder::try_build_sharded`].
    ///
    /// A fixed constant — **not** the worker count — so the physical layout
    /// of the database is identical regardless of how many threads built it.
    pub const DEFAULT_SHARDS: usize = 4;

    /// Sets the number of shards the sharded build partitions the
    /// `workload × policy` pairs into (clamped to at least 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.num_shards = n.max(1);
        self
    }

    /// Prepares the policy-independent half of a `workload × machine ×
    /// prefetcher` replay via the sweep engine's stage-1 machinery
    /// ([`prepare_scenario`]): the LLC access stream (already
    /// prefetcher-transformed by the caller; filtered through L1/L2 for
    /// full machines), the reuse oracle, and — for full machines — the
    /// baseline hierarchy counters the IPC model reads. A `None` machine
    /// slot selects the primary (builder-LLC) machine, whose
    /// baseline-prefetcher entries keep the legacy byte-identical shape.
    fn prepare_replay(
        &self,
        workload: &Workload,
        accesses: &[MemoryAccess],
        slot: Option<&MachineConfig>,
        prefetcher: PrefetcherKind,
    ) -> PreparedReplay {
        let (machine, primary) = match slot {
            None => (MachineConfig::llc_only(self.llc.clone()), true),
            Some(m) => (m.clone(), false),
        };
        let scenario = prepare_scenario(&machine, accesses, workload.instr_count);
        PreparedReplay {
            label: machine.machine_label(),
            prefetcher,
            prefetcher_label: prefetcher.label(),
            scenario,
            machine,
            primary,
        }
    }

    /// Simulates one `(workload, machine, prefetcher, policy)` cell into
    /// its trace entry.
    fn build_entry(
        &self,
        wname: &str,
        workload: &Workload,
        program: &Arc<cachemind_workloads::program::ProgramImage>,
        prepared: &PreparedReplay,
        pname: &str,
    ) -> TraceEntry {
        let policy = policy_by_name(pname).expect("policy validated before simulation");
        let report = prepared.scenario.replay.run(policy);
        let rows: Vec<TraceRow> = report
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let keep = self.keep_snapshots_every > 0 && i % self.keep_snapshots_every == 0;
                TraceRow::from_record(r, keep)
            })
            .collect();
        // The scenario sentence: which machine the trace replayed on and
        // the model-estimated IPC (full machines use the hierarchy
        // counters, LLC-only machines the same estimate a scenario cell
        // on this machine reports). The stream is already
        // prefetcher-transformed, so covered demand misses raise the IPC.
        let model = IpcModel::from_config(&prepared.machine.hierarchy);
        let demand_misses = report.stats.demand_misses;
        let ipc = match &prepared.scenario.hierarchy {
            Some(hreport) => model.ipc(hreport, demand_misses),
            None => {
                let demand_accesses = report.stats.accesses - report.stats.prefetches;
                let demand_hits = demand_accesses.saturating_sub(demand_misses);
                model.ipc_from_llc(workload.instr_count, demand_hits, demand_misses)
            }
        };
        // Prefetch usefulness, as the scenario grid counts it: the
        // hierarchy's counters on full machines (useful prefetches are
        // consumed by L1 hits the LLC replay never sees), the replay-walk
        // oracle on LLC-only machines. Baseline cells skip the walk — the
        // untransformed stream carries no prefetches.
        let (prefetch_fills, useful_prefetches) =
            match (&prepared.scenario.hierarchy, prepared.prefetcher) {
                (_, PrefetcherKind::None) => (0, 0),
                (Some(hreport), _) => (hreport.prefetch_fills, hreport.useful_prefetches),
                (None, _) => prefetch_usefulness(
                    &report.records,
                    prepared.machine.hierarchy.llc.line_size_log2,
                ),
            };
        let prefetch_accuracy = if prefetch_fills == 0 {
            0.0
        } else {
            useful_prefetches as f64 / prefetch_fills as f64
        };
        let covered = useful_prefetches + demand_misses;
        let prefetch_coverage =
            if covered == 0 { 0.0 } else { useful_prefetches as f64 / covered as f64 };
        let metadata = match prepared.prefetcher {
            PrefetcherKind::None => meta::render_scenario(&report, &prepared.label, ipc),
            _ => meta::render_scenario_prefetched(
                &report,
                &prepared.label,
                &prepared.prefetcher_label,
                ipc,
                prefetch_accuracy,
                prefetch_coverage,
            ),
        };
        let description = format!(
            "Workload: {}. Replacement Policy: {}. {}",
            wname,
            policy_description(pname),
            workload.description
        );
        let id = TraceId::qualified(
            wname,
            pname,
            (!prepared.primary).then_some(prepared.label.as_str()),
            (prepared.prefetcher != PrefetcherKind::None)
                .then_some(prepared.prefetcher_label.as_str()),
        );
        TraceEntry {
            id,
            frame: TraceFrame::new(rows, Arc::clone(program)),
            metadata,
            description,
            machine: prepared.label.clone(),
            prefetcher: prepared.prefetcher_label.clone(),
            prefetch_fills,
            useful_prefetches,
            prefetch_accuracy,
            prefetch_coverage,
            ipc,
        }
    }

    /// Validates every configured name against the registries, failing fast
    /// (and deterministically: first offending workload in configuration
    /// order, then first offending policy) before any simulation runs.
    fn validate(&self) -> Result<(), BuildError> {
        for wname in &self.workloads {
            if !cachemind_workloads::is_known(wname) {
                return Err(BuildError::UnknownWorkload(wname.clone()));
            }
        }
        for pname in &self.policies {
            if policy_by_name(pname).is_none() {
                return Err(BuildError::UnknownPolicy(pname.clone()));
            }
        }
        Ok(())
    }

    /// Simulates everything and assembles the sharded database.
    ///
    /// Work is spread across rayon workers in stages mirroring
    /// [`ScenarioGrid`](cachemind_sim::sweep::ScenarioGrid): one task per
    /// workload generates the access stream, one per `workload ×
    /// prefetcher` rewrites it through the prefetcher model, one per
    /// `workload × machine × prefetcher` builds the shared replay (reuse
    /// oracle + hierarchy filter), then one task per grid cell runs the
    /// policy replay. Entries are routed to shards by the deterministic
    /// [`shard_index`](crate::store::shard_index) assignment, so the result
    /// is identical no matter how many threads ran the build.
    ///
    /// Unknown workload or policy names surface as a [`BuildError`] before
    /// any simulation starts — shard workers never panic on bad names.
    pub fn try_build_sharded(self) -> Result<ShardedTraceDatabase, BuildError> {
        self.validate()?;
        let _span = cachemind_obs::global().span(cachemind_obs::names::TRACEDB_BUILD);

        // Stage 1: one task per workload — trace generation is the
        // machine-independent part, shared by every machine slot.
        type Prepared = (String, Workload, Arc<cachemind_workloads::program::ProgramImage>);
        let prepared: Vec<Result<Prepared, BuildError>> = self
            .workloads
            .clone()
            .into_par_iter()
            .map(|wname| {
                let workload = workload_by_name(&wname, self.scale)
                    .ok_or_else(|| BuildError::UnknownWorkload(wname.clone()))?;
                let program = Arc::new(workload.program.clone());
                Ok((wname, workload, program))
            })
            .collect();
        let mut workloads = Vec::with_capacity(prepared.len());
        for result in prepared {
            workloads.push(result?);
        }

        // Stage 1b: one task per workload × extra prefetcher — the
        // prefetcher transform is machine-independent (the sweep engine's
        // stage 1a), so every machine slot shares one rewritten stream.
        // Prefetcher slot 0 is the untransformed baseline.
        let num_extra_prefetchers = self.extra_prefetchers.len();
        let wp: Vec<(usize, usize)> = (0..workloads.len())
            .flat_map(|w| (0..num_extra_prefetchers).map(move |p| (w, p)))
            .collect();
        let rewritten: Vec<Vec<MemoryAccess>> = wp
            .into_par_iter()
            .map(|(w, p)| {
                transform_stream(self.extra_prefetchers[p], &workloads[w].1.accesses)
                    .expect("extra prefetchers are never PrefetcherKind::None")
            })
            .collect();
        let stream_for = |w: usize, p: usize| -> &[MemoryAccess] {
            if p == 0 {
                &workloads[w].1.accesses
            } else {
                &rewritten[w * num_extra_prefetchers + (p - 1)]
            }
        };

        // Stage 1c: one task per workload × machine × prefetcher — the
        // reuse oracle (and, for full machines, the L1/L2 filter) is the
        // expensive policy-independent part, shared by every policy
        // replaying the triple. Slot 0 is the primary machine / baseline.
        let machine_slots = 1 + self.extra_machines.len();
        let prefetcher_slots = 1 + num_extra_prefetchers;
        let wmp: Vec<(usize, usize, usize)> = (0..workloads.len())
            .flat_map(|w| {
                (0..machine_slots).flat_map(move |m| (0..prefetcher_slots).map(move |p| (w, m, p)))
            })
            .collect();
        let replays: Vec<PreparedReplay> = wmp
            .into_par_iter()
            .map(|(w, m, p)| {
                let slot = if m == 0 { None } else { Some(&self.extra_machines[m - 1]) };
                let kind =
                    if p == 0 { PrefetcherKind::None } else { self.extra_prefetchers[p - 1] };
                self.prepare_replay(&workloads[w].1, stream_for(w, p), slot, kind)
            })
            .collect();

        // Stage 2: one task per (workload, machine, prefetcher, policy)
        // cell.
        let num_policies = self.policies.len();
        let cells: Vec<(usize, usize, usize, usize)> = (0..workloads.len())
            .flat_map(|w| {
                (0..machine_slots).flat_map(move |m| {
                    (0..prefetcher_slots)
                        .flat_map(move |f| (0..num_policies).map(move |p| (w, m, f, p)))
                })
            })
            .collect();
        let entries: Vec<TraceEntry> = cells
            .into_par_iter()
            .map(|(w, m, f, p)| {
                let (wname, workload, program) = &workloads[w];
                let prepared = &replays[(w * machine_slots + m) * prefetcher_slots + f];
                self.build_entry(wname, workload, program, prepared, &self.policies[p])
            })
            .collect();

        Ok(ShardedTraceDatabase::from_entries(entries, self.num_shards, Some(self.llc.clone())))
    }

    /// Simulates everything in parallel and assembles a monolithic
    /// database (the sharded build, unified).
    pub fn try_build(self) -> Result<TraceDatabase, BuildError> {
        Ok(self.try_build_sharded()?.into_unified())
    }

    /// The serial reference implementation of [`TraceDatabaseBuilder::try_build`]:
    /// a plain double loop over `workload × policy` on the calling thread.
    /// Kept as the oracle the parallel/sharded builds are tested against.
    pub fn build_serial(self) -> Result<TraceDatabase, BuildError> {
        self.validate()?;
        let _span = cachemind_obs::global().span(cachemind_obs::names::TRACEDB_BUILD);
        let mut db = TraceDatabase { entries: BTreeMap::new(), llc: Some(self.llc.clone()) };
        for wname in &self.workloads {
            let workload: Workload = workload_by_name(wname, self.scale)
                .ok_or_else(|| BuildError::UnknownWorkload(wname.clone()))?;
            let program = Arc::new(workload.program.clone());
            for p in 0..=self.extra_prefetchers.len() {
                let kind =
                    if p == 0 { PrefetcherKind::None } else { self.extra_prefetchers[p - 1] };
                let transformed = transform_stream(kind, &workload.accesses);
                let accesses: &[MemoryAccess] = match &transformed {
                    Some(rewritten) => rewritten,
                    None => &workload.accesses,
                };
                for m in 0..=self.extra_machines.len() {
                    let slot = if m == 0 { None } else { Some(&self.extra_machines[m - 1]) };
                    let prepared = self.prepare_replay(&workload, accesses, slot, kind);
                    for pname in &self.policies {
                        db.insert(self.build_entry(wname, &workload, &program, &prepared, pname));
                    }
                }
            }
        }
        Ok(db)
    }

    /// Simulates everything and assembles the database.
    ///
    /// # Panics
    ///
    /// Panics if a workload or policy name is unknown (the builder is the
    /// trusted configuration surface at this call site; services that take
    /// names from the network use [`TraceDatabaseBuilder::try_build`] and
    /// surface [`BuildError`] instead).
    pub fn build(self) -> TraceDatabase {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A one-line description of each policy, used in trace descriptions and
/// retrieval context.
pub fn policy_description(name: &str) -> &'static str {
    match name {
        "lru" => "LRU evicts the least-recently-used line in the set.",
        "mru" => "MRU evicts the most-recently-used line in the set.",
        "fifo" => "FIFO evicts the line that was inserted earliest.",
        "random" => "Random replacement evicts a uniformly random line.",
        "belady" => {
            "Belady's optimal (MIN) evicts the line whose next use is farthest in the \
             future; an offline oracle upper bound."
        }
        "srrip" => "SRRIP predicts re-reference intervals with 2-bit counters.",
        "brrip" => "BRRIP inserts lines with distant re-reference predictions most of the time.",
        "drrip" => "DRRIP set-duels SRRIP against BRRIP insertion.",
        "dip" => "DIP set-duels LRU against bimodal insertion to resist thrashing.",
        "lip" => "LIP inserts every line at the LRU position; lines must earn promotion.",
        "bip" => "BIP inserts at the LRU position, occasionally at MRU.",
        "ship" => "SHiP biases insertion using PC-signature hit prediction.",
        "hawkeye" => "Hawkeye classifies PCs with Belady-derived labels (OPTgen).",
        "mockingjay" => {
            "Mockingjay predicts continuous reuse distances per PC and evicts the line \
             with the largest estimated time remaining."
        }
        "parrot" => {
            "PARROT imitates Belady's policy with a learned model over PC and address \
             features (imitation learning)."
        }
        "mlp" => "MLP scores lines with a multi-layer perceptron reuse predictor.",
        "bypass" => "A base policy wrapped with a per-PC bypass list.",
        _ => "Unknown policy.",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_round_trips() {
        let id = TraceId::new("lbm", "lru");
        assert_eq!(id.key(), "lbm_evictions_lru");
        assert_eq!(TraceId::parse("lbm_evictions_lru"), Some(id));
        assert_eq!(TraceId::parse("garbage"), None);
        assert_eq!(TraceId::parse("_evictions_"), None);
    }

    #[test]
    fn scoped_trace_ids_round_trip() {
        let id = TraceId::scoped("lbm", "lru", "table2@llc2048x16+dram160");
        assert_eq!(id.key(), "lbm_evictions_lru@table2@llc2048x16+dram160");
        assert_eq!(TraceId::parse(&id.key()), Some(id));
        assert_eq!(TraceId::parse("lbm_evictions_lru@"), None, "empty machine is invalid");
        // Unqualified parse keeps machine = None.
        assert_eq!(TraceId::parse("lbm_evictions_lru").unwrap().machine, None);
    }

    #[test]
    fn extra_machines_add_scoped_entries_without_touching_primary_keys() {
        use crate::store::TraceStore;
        use cachemind_sim::scenario::ScenarioSelector;

        let base = || {
            TraceDatabaseBuilder::quick_demo().workloads(["mcf", "lbm"]).policies(["lru", "belady"])
        };
        let plain = base().build();
        let multi = base()
            .machine(MachineConfig::preset("table2").expect("preset"))
            .machine(MachineConfig::preset("small").expect("preset"))
            .build();

        // Primary entries are byte-identical to the machine-free build.
        assert_eq!(multi.len(), 3 * plain.len(), "one extra entry set per machine");
        for key in plain.trace_ids() {
            let a = plain.get(key).expect("plain entry");
            let b = multi.get(key).expect("primary entry survives");
            assert_eq!(a.metadata, b.metadata, "{key}");
            assert_eq!(a.frame.rows(), b.frame.rows(), "{key}");
            assert_eq!(a.machine, b.machine, "{key}");
        }

        // The store sees all three machines, and scoped lookups land on
        // the right one.
        let labels = TraceStore::machines(&multi);
        assert_eq!(labels.len(), 3, "{labels:?}");
        assert!(labels.iter().any(|l| l.starts_with("table2@")), "{labels:?}");
        assert!(labels.iter().any(|l| l.starts_with("small@")), "{labels:?}");

        let id = TraceId::new("mcf", "lru");
        let unscoped = multi.get_scoped(&id, &ScenarioSelector::all()).expect("primary");
        assert_eq!(unscoped.id.machine, None, "unscoped lookups stay on the primary machine");
        let on_table2 = multi
            .get_scoped(&id, &ScenarioSelector::all().with_machine("table2"))
            .expect("table2 entry");
        assert!(on_table2.machine.starts_with("table2@"));
        assert_eq!(meta::extract_machine(&on_table2.metadata), Some(on_table2.machine.as_str()));
        let on_small = multi
            .get_scoped(&id, &ScenarioSelector::all().with_machine("small"))
            .expect("small entry");
        assert!(on_small.machine.starts_with("small@"));
        assert!(
            multi.get_scoped(&id, &ScenarioSelector::all().with_machine("cray-1")).is_none(),
            "unknown machines select nothing"
        );

        // Different machines, different IPC estimates in the metadata.
        assert!(on_table2.ipc > 0.0 && on_small.ipc > 0.0);
        assert_ne!(on_table2.ipc, on_small.ipc, "machines must not share an IPC estimate");

        // select() scopes the full entry iterator.
        let scoped: Vec<_> = multi.select(&ScenarioSelector::all().with_machine("small")).collect();
        assert_eq!(scoped.len(), 4, "2 workloads x 2 policies on the small machine");
        assert!(scoped.iter().all(|e| e.machine.starts_with("small@")));
    }

    #[test]
    fn prefetcher_qualified_trace_ids_round_trip() {
        let id = TraceId::qualified("mcf", "lru", None, Some("stride4"));
        assert_eq!(id.key(), "mcf_evictions_lru+stride4");
        assert_eq!(TraceId::parse(&id.key()), Some(id));

        let id =
            TraceId::qualified("mcf", "lru", Some("table2@llc2048x16+dram160"), Some("nextline"));
        assert_eq!(id.key(), "mcf_evictions_lru@table2@llc2048x16+dram160+nextline");
        assert_eq!(TraceId::parse(&id.key()), Some(id));

        // A machine label's own `+dram...` segment never parses as a
        // prefetcher qualification.
        let id = TraceId::parse("mcf_evictions_lru@table2@llc2048x16+dram160").unwrap();
        assert_eq!(id.machine.as_deref(), Some("table2@llc2048x16+dram160"));
        assert_eq!(id.prefetcher, None);
    }

    #[test]
    fn extra_prefetchers_add_qualified_entries_without_touching_primary_keys() {
        use crate::meta;
        use crate::store::TraceStore;
        use cachemind_sim::scenario::ScenarioSelector;

        let base = || TraceDatabaseBuilder::quick_demo().workloads(["mcf"]).policies(["lru"]);
        let plain = base().build();
        let multi = base()
            .machine(MachineConfig::preset("table2").expect("preset"))
            .prefetcher(PrefetcherKind::Stride { degree: 4 })
            .build();

        // One entry per machine slot × prefetcher slot × pair; primary
        // baseline entries are byte-identical to the axis-free build.
        assert_eq!(multi.len(), 4 * plain.len());
        for key in plain.trace_ids() {
            let a = plain.get(key).expect("plain entry");
            let b = multi.get(key).expect("primary entry survives");
            assert_eq!(a.metadata, b.metadata, "{key}");
            assert_eq!(a.frame.rows(), b.frame.rows(), "{key}");
            assert_eq!(b.prefetcher, "none", "{key}");
            assert_eq!(b.prefetch_fills, 0, "{key}");
        }
        assert_eq!(TraceStore::prefetchers(&multi), vec!["none", "stride4"]);

        // A +stride4 scope lands on the qualified entry, on either machine.
        let id = TraceId::new("mcf", "lru");
        let baseline = multi.get_scoped(&id, &ScenarioSelector::all()).expect("baseline");
        let pf = ScenarioSelector::parse("+stride4").expect("selector");
        let strided = multi.get_scoped(&id, &pf).expect("prefetcher-qualified entry");
        assert_eq!(strided.prefetcher, "stride4");
        assert_eq!(strided.id.prefetcher.as_deref(), Some("stride4"));
        assert_eq!(strided.id.machine, None, "machine-unscoped stays primary");
        assert_eq!(meta::extract_prefetcher(&strided.metadata), Some("stride4"));
        assert!(strided.prefetch_fills > 0, "transformed stream must fill lines");
        assert!(strided.prefetch_accuracy > 0.0 && strided.prefetch_accuracy <= 1.0);
        assert!(strided.prefetch_coverage > 0.0 && strided.prefetch_coverage < 1.0);
        assert_ne!(strided.ipc, baseline.ipc, "prefetch-aware IPC must differ");
        assert_eq!(meta::extract_prefetcher(&baseline.metadata), None);

        let both = ScenarioSelector::parse("@table2+stride4").expect("selector");
        let on_table2 = multi.get_scoped(&id, &both).expect("fully qualified entry");
        assert!(on_table2.machine.starts_with("table2@"));
        assert_eq!(on_table2.prefetcher, "stride4");
        assert!(
            multi.get_scoped(&id, &ScenarioSelector::parse("+nextline").unwrap()).is_none(),
            "unbuilt prefetchers select nothing"
        );

        // select() scopes the full entry iterator by prefetcher.
        let scoped: Vec<_> = multi.select(&pf).collect();
        assert_eq!(scoped.len(), 2, "one stride4 entry per machine slot");
        assert!(scoped.iter().all(|e| e.prefetcher == "stride4"));
    }

    #[test]
    fn multi_prefetcher_parallel_build_matches_serial() {
        let make = || {
            TraceDatabaseBuilder::quick_demo()
                .workloads(["mcf"])
                .policies(["lru", "belady"])
                .machine(MachineConfig::preset("small").expect("preset"))
                .prefetchers([PrefetcherKind::NextLine, PrefetcherKind::Stride { degree: 2 }])
        };
        let serial = make().build_serial().expect("serial build");
        let parallel = make().shards(3).try_build().expect("parallel build");
        assert_eq!(parallel.len(), serial.len());
        assert_eq!(parallel.len(), 2 * 2 * 3, "pairs x machine slots x prefetcher slots");
        for (a, b) in parallel.entries().zip(serial.entries()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.metadata, b.metadata);
            assert_eq!(a.prefetcher, b.prefetcher);
            assert_eq!(a.frame.rows(), b.frame.rows(), "{} rows diverge", a.id);
        }
    }

    #[test]
    fn none_and_duplicate_prefetchers_collapse() {
        let db = TraceDatabaseBuilder::quick_demo()
            .workloads(["mcf"])
            .policies(["lru"])
            .prefetchers([PrefetcherKind::None, PrefetcherKind::NextLine, PrefetcherKind::NextLine])
            .build();
        // None is the always-built baseline; the duplicate collapses.
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn multi_machine_parallel_build_matches_serial() {
        let make = || {
            TraceDatabaseBuilder::quick_demo()
                .workloads(["mcf"])
                .policies(["lru", "belady"])
                .machine(MachineConfig::preset("small").expect("preset"))
        };
        let serial = make().build_serial().expect("serial build");
        let parallel = make().shards(3).try_build().expect("parallel build");
        assert_eq!(parallel.len(), serial.len());
        for (a, b) in parallel.entries().zip(serial.entries()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.metadata, b.metadata);
            assert_eq!(a.frame.rows(), b.frame.rows(), "{} rows diverge", a.id);
        }
    }

    #[test]
    fn builder_builds_all_pairs() {
        let db = TraceDatabaseBuilder::new()
            .workloads(["mcf", "lbm"])
            .policies(["lru", "belady"])
            .scale(Scale::Tiny)
            .build();
        assert_eq!(db.len(), 4);
        assert_eq!(db.workloads(), vec!["lbm", "mcf"]);
        assert_eq!(db.policies(), vec!["belady", "lru"]);
        let entry = db.get("mcf_evictions_belady").unwrap();
        assert!(entry.metadata.contains("miss rate"));
        assert!(entry.description.contains("Belady"));
        assert!(!entry.frame.is_empty());
    }

    #[test]
    fn entries_record_machine_and_ipc() {
        let db = TraceDatabaseBuilder::quick_demo().build();
        let llc = db.llc_config().expect("builder records llc").clone();
        let expected_label = cachemind_sim::config::MachineConfig::llc_only(llc).machine_label();
        for entry in db.entries() {
            assert_eq!(entry.machine, expected_label, "{}", entry.id);
            assert!(entry.ipc > 0.0, "{} has no IPC", entry.id);
            assert_eq!(meta::extract_machine(&entry.metadata), Some(entry.machine.as_str()));
            let cited = meta::extract_ipc(&entry.metadata).expect("metadata cites IPC");
            assert!((cited - entry.ipc).abs() < 1e-6, "{} vs {}", cited, entry.ipc);
        }
        // Belady's IPC dominates LRU's on every workload, as its misses do.
        for w in db.workloads() {
            let opt = db.get(&format!("{w}_evictions_belady")).unwrap();
            let lru = db.get(&format!("{w}_evictions_lru")).unwrap();
            assert!(opt.ipc >= lru.ipc, "OPT slower than LRU on {w}");
        }
    }

    #[test]
    fn belady_dominates_lru_in_every_built_trace() {
        let db = TraceDatabaseBuilder::quick_demo().build();
        for w in db.workloads() {
            let opt = db.get(&format!("{w}_evictions_belady")).unwrap();
            let lru = db.get(&format!("{w}_evictions_lru")).unwrap();
            let miss = |e: &TraceEntry| e.frame.rows().iter().filter(|r| r.is_miss).count();
            assert!(miss(opt) <= miss(lru), "OPT must not miss more than LRU on {w}");
        }
    }

    #[test]
    fn extended_policy_set_builds() {
        // The paper sketches "an extended database with potentially 8-10
        // replacement policies"; the builder supports any registered policy.
        let db = TraceDatabaseBuilder::new()
            .workloads(["lbm"])
            .policies(["lru", "belady", "ship", "hawkeye", "mockingjay", "drrip", "dip", "lip"])
            .scale(Scale::Tiny)
            .build();
        assert_eq!(db.len(), 8);
        assert_eq!(db.policies().len(), 8);
        for entry in db.entries() {
            assert!(!entry.frame.is_empty(), "{} has rows", entry.id);
            assert!(entry.metadata.contains("miss rate"));
        }
    }

    #[test]
    fn extended_workload_set_builds() {
        let db = TraceDatabaseBuilder::new()
            .workloads(["bzip2", "milc"])
            .policies(["lru"])
            .scale(Scale::Tiny)
            .build();
        assert_eq!(db.workloads(), vec!["bzip2", "milc"]);
        let entry = db.get("bzip2_evictions_lru").unwrap();
        let pc = entry.frame.rows()[0].pc;
        assert!(entry.frame.function_name(pc).is_some(), "bzip2 PCs map to code");
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn unknown_policy_panics() {
        let _ = TraceDatabaseBuilder::new()
            .workloads(["mcf"])
            .policies(["optimal-prime"])
            .scale(Scale::Tiny)
            .build();
    }

    #[test]
    fn unknown_names_surface_as_errors_not_panics() {
        let err = TraceDatabaseBuilder::new()
            .workloads(["mcf"])
            .policies(["optimal-prime"])
            .scale(Scale::Tiny)
            .try_build()
            .unwrap_err();
        assert_eq!(err, BuildError::UnknownPolicy("optimal-prime".into()));
        assert_eq!(err.to_string(), "unknown policy \"optimal-prime\"");

        let err = TraceDatabaseBuilder::new()
            .workloads(["spectre"])
            .policies(["lru"])
            .scale(Scale::Tiny)
            .try_build_sharded()
            .unwrap_err();
        assert_eq!(err, BuildError::UnknownWorkload("spectre".into()));

        // Documented order: workloads are validated before policies.
        let err = TraceDatabaseBuilder::new()
            .workloads(["mcf", "spectre"])
            .policies(["optimal-prime"])
            .scale(Scale::Tiny)
            .try_build()
            .unwrap_err();
        assert_eq!(err, BuildError::UnknownWorkload("spectre".into()));
    }

    #[test]
    fn parallel_build_matches_serial_reference() {
        let make = || {
            TraceDatabaseBuilder::new()
                .workloads(["mcf", "lbm"])
                .policies(["lru", "belady"])
                .scale(Scale::Tiny)
        };
        let serial = make().build_serial().expect("serial build");
        for shards in [1usize, 3, 16] {
            let parallel = make().shards(shards).try_build().expect("parallel build");
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in parallel.entries().zip(serial.entries()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.metadata, b.metadata);
                assert_eq!(a.description, b.description);
                assert_eq!(a.frame.rows(), b.frame.rows(), "{} rows diverge", a.id);
            }
            assert_eq!(parallel.llc_config(), serial.llc_config());
        }
    }

    #[test]
    fn snapshot_sampling_reduces_stored_context() {
        let full = TraceDatabaseBuilder::new()
            .workloads(["mcf"])
            .policies(["lru"])
            .scale(Scale::Tiny)
            .build();
        let sampled = TraceDatabaseBuilder::new()
            .workloads(["mcf"])
            .policies(["lru"])
            .scale(Scale::Tiny)
            .keep_snapshots_every(16)
            .build();
        let count_hist = |db: &TraceDatabase| {
            db.get("mcf_evictions_lru")
                .unwrap()
                .frame
                .rows()
                .iter()
                .filter(|r| !r.access_history.is_empty())
                .count()
        };
        assert!(count_hist(&sampled) < count_hist(&full));
    }
}
