//! Trace-level metadata strings — the paper's "Cache Performance Summary".
//!
//! The paper stores whole-trace statistics as a *single free-form string*
//! that downstream retrievers parse with string matching. We generate the
//! same format and provide the matching extraction helpers.

use cachemind_sim::replay::ReplayReport;

/// Renders the paper-format metadata string for a replay.
///
/// Format (from §3.3/§4.3):
///
/// ```text
/// Cache Performance Summary: 140704 total accesses, 133542 total misses,
/// 94.91% miss rate, 100.00% capacity misses, 0.00% conflict misses,
/// 133478 total evictions, 87085 (65.24%) wrong evictions where evicted
/// line has lower reuse distance. The correlation between accessed address
/// recency and cache misses is 0.18.
/// ```
pub fn render(report: &ReplayReport) -> String {
    let stats = &report.stats;
    let classified = report.capacity_misses + report.conflict_misses;
    let (cap_pct, conf_pct) = if classified == 0 {
        (0.0, 0.0)
    } else {
        (
            report.capacity_misses as f64 * 100.0 / classified as f64,
            report.conflict_misses as f64 * 100.0 / classified as f64,
        )
    };
    let wrong_pct = if stats.evictions == 0 {
        0.0
    } else {
        report.wrong_evictions as f64 * 100.0 / stats.evictions as f64
    };
    format!(
        "Cache Performance Summary: {} total accesses, {} total misses, {:.2}% miss rate, \
         {:.2}% capacity misses, {:.2}% conflict misses, {} compulsory misses, \
         {} total evictions, {} ({:.2}%) wrong evictions where evicted line has lower \
         reuse distance. The correlation between accessed address recency and cache \
         misses is {:.2}.",
        stats.accesses,
        stats.misses,
        stats.miss_rate() * 100.0,
        cap_pct,
        conf_pct,
        report.compulsory_misses,
        stats.evictions,
        report.wrong_evictions,
        wrong_pct,
        report.recency_miss_correlation(),
    )
}

/// Renders the paper-format metadata string plus the scenario sentence:
/// which machine the trace was produced on and the model-estimated IPC of
/// the replay. Retrieval plans and serve answers cite both through
/// [`extract_machine`] and [`extract_ipc`].
pub fn render_scenario(report: &ReplayReport, machine_label: &str, ipc: f64) -> String {
    format!(
        "{} Simulated on machine {machine_label} with an estimated IPC of {ipc:.6}.",
        render(report)
    )
}

/// Renders the scenario metadata of a *prefetcher-qualified* trace: the
/// [`render_scenario`] string plus the prefetcher sentence — which hardware
/// prefetcher rewrote the stream before replay and how well it did
/// (accuracy = useful fills / fills, coverage = covered fraction of
/// would-be demand misses; both in `[0, 1]` here, rendered as percent).
///
/// Baseline (`none`-prefetcher) traces keep the [`render_scenario`] form
/// byte-for-byte, so a database without extra prefetchers is identical to
/// what earlier builders produced; [`extract_prefetcher`] returns `None`
/// on them.
pub fn render_scenario_prefetched(
    report: &ReplayReport,
    machine_label: &str,
    prefetcher_label: &str,
    ipc: f64,
    accuracy: f64,
    coverage: f64,
) -> String {
    format!(
        "{} Hardware prefetcher {prefetcher_label} was active with {:.2}% accuracy and \
         {:.2}% coverage.",
        render_scenario(report, machine_label, ipc),
        accuracy * 100.0,
        coverage * 100.0,
    )
}

/// Extracts the prefetcher label from the prefetcher sentence (see
/// [`render_scenario_prefetched`]).
///
/// Returns `None` (quietly) when the sentence is absent — a baseline trace
/// replayed without a prefetcher. Like [`extract_machine`], a *present but
/// malformed* sentence trips a debug assertion; release builds still return
/// `None`. The accuracy and coverage percentages ride the legacy
/// [`extract_percent`] helper (`extract_percent(meta, "accuracy")`,
/// `extract_percent(meta, "coverage")`).
pub fn extract_prefetcher(metadata: &str) -> Option<&str> {
    let marker = "Hardware prefetcher ";
    let pos = metadata.find(marker)? + marker.len();
    let rest = &metadata[pos..];
    let Some(end) = rest.find(' ').filter(|&end| end > 0) else {
        debug_assert!(
            false,
            "malformed prefetcher sentence: {marker:?} not followed by a space-terminated label \
             in {metadata:?}"
        );
        return None;
    };
    Some(&rest[..end])
}

/// The citation phrase scoped single-trace IPC facts use: `estimated IPC
/// of <workload> under <policy> on machine <label>`, extended with
/// `with prefetcher <label>` when the entry's metadata carries the
/// prefetcher sentence.
///
/// This is the **one** definition of the phrase: both retrievers (Sieve's
/// IPC arm, Ranger's `WorkloadIpc` plan) render it, and the serve layer
/// resolves the cited machine/prefetcher of a scoped answer by matching
/// the literal `prefetcher <label>` substring — a shared helper keeps the
/// three crates from drifting out of sync. Baseline metadata yields the
/// pre-prefetcher string byte-for-byte.
pub fn ipc_citation(workload: &str, policy: &str, metadata: &str) -> String {
    let machine = extract_machine(metadata).unwrap_or("unknown machine");
    match extract_prefetcher(metadata) {
        Some(prefetcher) => format!(
            "estimated IPC of {workload} under {policy} on machine {machine} with prefetcher \
             {prefetcher}"
        ),
        None => format!("estimated IPC of {workload} under {policy} on machine {machine}"),
    }
}

/// The scenario suffix comparison facts append to their metric when the
/// grounded entry is prefetcher-qualified: `" on machine <label> with
/// prefetcher <label>"`, or `""` for baseline entries — so cross-policy
/// and cross-workload rankings read from qualified traces cite the
/// scenario (and serve responses can report it) while baseline
/// comparisons keep their legacy metric strings byte-for-byte.
pub fn scenario_citation_suffix(metadata: &str) -> String {
    match extract_prefetcher(metadata) {
        Some(prefetcher) => {
            let machine = extract_machine(metadata).unwrap_or("unknown machine");
            format!(" on machine {machine} with prefetcher {prefetcher}")
        }
        None => String::new(),
    }
}

/// Extracts the machine label from the scenario sentence.
///
/// Returns `None` (quietly) when the sentence is absent altogether. A
/// *present but malformed* sentence — the marker with no space-terminated
/// label after it — trips a debug assertion: upstream only
/// [`render_scenario`] writes the marker, so a malformed form means a
/// writer bug, not a missing sentence. Release builds still return `None`.
pub fn extract_machine(metadata: &str) -> Option<&str> {
    let marker = "Simulated on machine ";
    let pos = metadata.find(marker)? + marker.len();
    let rest = &metadata[pos..];
    let Some(end) = rest.find(' ').filter(|&end| end > 0) else {
        debug_assert!(
            false,
            "malformed scenario sentence: {marker:?} not followed by a space-terminated label \
             in {metadata:?}"
        );
        return None;
    };
    Some(&rest[..end])
}

/// Extracts the estimated IPC from the scenario sentence.
///
/// Like [`extract_machine`], an absent sentence is `None` quietly while a
/// present-but-unparseable IPC token trips a debug assertion (release
/// builds return `None`).
pub fn extract_ipc(metadata: &str) -> Option<f64> {
    let marker = "estimated IPC of ";
    let pos = metadata.find(marker)? + marker.len();
    let rest = &metadata[pos..];
    let token: String =
        rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    // The sentence ends with a period, which the scan captures.
    let parsed = token.trim_end_matches('.').parse().ok();
    debug_assert!(
        parsed.is_some(),
        "malformed scenario sentence: {marker:?} not followed by a numeric IPC in {metadata:?}"
    );
    parsed
}

/// Extracts the first number appearing before `label` in `metadata`
/// (e.g. `extract_count(meta, "total misses")`).
pub fn extract_count(metadata: &str, label: &str) -> Option<u64> {
    let pos = metadata.find(label)?;
    let prefix = &metadata[..pos];
    let token = prefix.split_whitespace().last()?;
    token.replace(',', "").parse().ok()
}

/// Extracts the percentage appearing before `label`
/// (e.g. `extract_percent(meta, "miss rate")` -> `94.91`).
pub fn extract_percent(metadata: &str, label: &str) -> Option<f64> {
    let pos = metadata.find(label)?;
    let prefix = &metadata[..pos];
    let token = prefix.split_whitespace().last()?;
    token.trim_end_matches('%').parse().ok()
}

/// Extracts the recency/miss correlation from the summary sentence.
pub fn extract_correlation(metadata: &str) -> Option<f64> {
    let marker = "cache misses is ";
    let pos = metadata.find(marker)? + marker.len();
    let rest = &metadata[pos..];
    let token: String =
        rest.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    // The sentence ends with a period, which the scan captures.
    token.trim_end_matches('.').parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::stats::CacheStats;

    fn report() -> ReplayReport {
        let stats = CacheStats {
            accesses: 140_704,
            misses: 133_542,
            hits: 140_704 - 133_542,
            evictions: 133_478,
            ..Default::default()
        };
        ReplayReport {
            policy: "lru".to_owned(),
            records: Vec::new(),
            stats,
            wrong_evictions: 87_085,
            capacity_misses: 133_542,
            conflict_misses: 0,
            compulsory_misses: 0,
        }
    }

    #[test]
    fn renders_paper_shape() {
        let m = render(&report());
        assert!(m.starts_with("Cache Performance Summary:"));
        assert!(m.contains("140704 total accesses"));
        assert!(m.contains("133542 total misses"));
        assert!(m.contains("94.91% miss rate"));
        assert!(m.contains("100.00% capacity misses"));
        assert!(m.contains("0.00% conflict misses"));
        assert!(m.contains("87085 (65.24%) wrong evictions"));
    }

    #[test]
    fn extraction_round_trips() {
        let m = render(&report());
        assert_eq!(extract_count(&m, "total accesses"), Some(140_704));
        assert_eq!(extract_count(&m, "total misses"), Some(133_542));
        assert_eq!(extract_count(&m, "total evictions"), Some(133_478));
        assert_eq!(extract_percent(&m, "miss rate"), Some(94.91));
        assert_eq!(extract_percent(&m, "capacity misses"), Some(100.0));
        assert_eq!(extract_correlation(&m), Some(0.0));
    }

    #[test]
    fn extraction_handles_missing_labels() {
        assert_eq!(extract_count("no numbers here", "total misses"), None);
        assert_eq!(extract_percent("", "miss rate"), None);
        assert_eq!(extract_correlation("nothing"), None);
        assert_eq!(extract_machine("no scenario sentence"), None);
        assert_eq!(extract_ipc("no scenario sentence"), None);
    }

    // A present-but-malformed scenario sentence is a writer bug: the
    // extractors trip a debug assertion instead of quietly degrading into
    // "no scenario" behaviour. One test per malformed form.

    #[test]
    #[should_panic(expected = "malformed scenario sentence")]
    #[cfg(debug_assertions)]
    fn truncated_machine_label_trips_debug_assertion() {
        // Marker present, but the label is never space-terminated.
        let _ = extract_machine("... Simulated on machine LLC@256x8");
    }

    #[test]
    #[should_panic(expected = "malformed scenario sentence")]
    #[cfg(debug_assertions)]
    fn empty_machine_label_trips_debug_assertion() {
        // Marker present, label empty (double space before "with").
        let _ = extract_machine("Simulated on machine  with an estimated IPC of 0.5.");
    }

    #[test]
    #[should_panic(expected = "malformed scenario sentence")]
    #[cfg(debug_assertions)]
    fn non_numeric_ipc_trips_debug_assertion() {
        // Marker present, but the IPC token is not a number.
        let _ = extract_ipc("... with an estimated IPC of fast.");
    }

    #[test]
    #[should_panic(expected = "malformed scenario sentence")]
    #[cfg(debug_assertions)]
    fn empty_ipc_token_trips_debug_assertion() {
        // Marker present, the sentence ends before any digits.
        let _ = extract_ipc("... with an estimated IPC of .");
    }

    #[test]
    fn absent_scenario_sentence_stays_quietly_none() {
        // No marker at all: not a writer bug, just a pre-scenario trace.
        assert_eq!(extract_machine("Cache Performance Summary: 1 total accesses."), None);
        assert_eq!(extract_ipc("Cache Performance Summary: 1 total accesses."), None);
    }

    #[test]
    fn prefetcher_sentence_round_trips() {
        let m = render_scenario_prefetched(
            &report(),
            "table2@llc2048x16+dram160",
            "stride4",
            0.813402,
            0.9371,
            0.8812,
        );
        assert!(m.contains("Hardware prefetcher stride4 was active"));
        assert_eq!(extract_prefetcher(&m), Some("stride4"));
        assert_eq!(extract_machine(&m), Some("table2@llc2048x16+dram160"));
        assert_eq!(extract_ipc(&m), Some(0.813402));
        assert_eq!(extract_percent(&m, "accuracy"), Some(93.71));
        assert_eq!(extract_percent(&m, "coverage"), Some(88.12));
        // The prefetcher sentence must not confuse the legacy extractors.
        assert_eq!(extract_percent(&m, "miss rate"), Some(94.91));
        assert_eq!(extract_correlation(&m), Some(0.0));

        // Baseline sentences carry no prefetcher, quietly.
        let baseline = render_scenario(&report(), "LLC@256x8", 0.476981);
        assert_eq!(extract_prefetcher(&baseline), None);
        assert_eq!(extract_prefetcher("no scenario sentence at all"), None);
    }

    #[test]
    fn ipc_citation_has_one_shape_per_qualification() {
        let baseline = render_scenario(&report(), "LLC@256x8", 0.476981);
        assert_eq!(
            ipc_citation("mcf", "lru", &baseline),
            "estimated IPC of mcf under lru on machine LLC@256x8"
        );
        assert_eq!(scenario_citation_suffix(&baseline), "");

        let prefetched = render_scenario_prefetched(
            &report(),
            "table2@llc2048x16+dram160",
            "stride4",
            0.81,
            0.93,
            0.88,
        );
        assert_eq!(
            ipc_citation("mcf", "lru", &prefetched),
            "estimated IPC of mcf under lru on machine table2@llc2048x16+dram160 with \
             prefetcher stride4"
        );
        assert_eq!(
            scenario_citation_suffix(&prefetched),
            " on machine table2@llc2048x16+dram160 with prefetcher stride4"
        );
    }

    #[test]
    #[should_panic(expected = "malformed prefetcher sentence")]
    #[cfg(debug_assertions)]
    fn truncated_prefetcher_label_trips_debug_assertion() {
        // Marker present, but the label is never space-terminated.
        let _ = extract_prefetcher("... Hardware prefetcher stride4");
    }

    #[test]
    fn scenario_sentence_round_trips() {
        let m = render_scenario(&report(), "LLC@256x8", 0.476981);
        assert!(m.starts_with("Cache Performance Summary:"));
        assert!(m.contains("Simulated on machine LLC@256x8"));
        assert_eq!(extract_machine(&m), Some("LLC@256x8"));
        assert_eq!(extract_ipc(&m), Some(0.476981));
        // The scenario sentence must not confuse the legacy extractors.
        assert_eq!(extract_percent(&m, "miss rate"), Some(94.91));
        assert_eq!(extract_correlation(&m), Some(0.0));
    }
}
