//! Symbolic predicates over trace rows — the Sieve retriever's filter
//! language.

use serde::{Deserialize, Serialize};

use cachemind_sim::addr::{Address, Pc, SetId};
use cachemind_sim::replay::MissType;

use crate::record::TraceRow;

/// A composable predicate over [`TraceRow`]s.
///
/// ```rust
/// use cachemind_tracedb::filter::Predicate;
/// use cachemind_sim::addr::Pc;
///
/// let p = Predicate::PcEquals(Pc::new(0x401e31)).and(Predicate::IsMiss(true));
/// assert!(format!("{p:?}").contains("PcEquals"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// `program_counter == pc`.
    PcEquals(Pc),
    /// `program_counter ∈ set`.
    PcIn(Vec<Pc>),
    /// `memory_address == addr` (byte-exact).
    AddressEquals(Address),
    /// The access touches the cache line containing `addr` (64 B lines).
    LineOf(Address),
    /// `cache_set_id == set`.
    SetEquals(SetId),
    /// `is_miss == value`.
    IsMiss(bool),
    /// `miss_type == value`.
    MissTypeIs(MissType),
    /// The access kind equals `value` (load/store/fetch/prefetch) — the
    /// gem5-extension "access types" filter.
    KindIs(cachemind_sim::access::AccessKind),
    /// The fill was bypassed.
    Bypassed(bool),
    /// `accessed_address_reuse_distance_numeric >= value`.
    ReuseDistanceAtLeast(u64),
    /// `accessed_address_recency_numeric >= value`.
    RecencyAtLeast(u64),
    /// Stream index in `[lo, hi)`.
    IndexInRange(u64, u64),
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Conjunction, consuming both sides.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction, consuming both sides.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate against one row.
    pub fn matches(&self, row: &TraceRow) -> bool {
        match self {
            Predicate::True => true,
            Predicate::PcEquals(pc) => row.pc == *pc,
            Predicate::PcIn(pcs) => pcs.contains(&row.pc),
            Predicate::AddressEquals(addr) => row.address == *addr,
            Predicate::LineOf(addr) => row.address.line(6) == addr.line(6),
            Predicate::SetEquals(set) => row.set == *set,
            Predicate::IsMiss(v) => row.is_miss == *v,
            Predicate::MissTypeIs(t) => row.miss_type == Some(*t),
            Predicate::KindIs(k) => row.kind == *k,
            Predicate::Bypassed(v) => row.bypassed == *v,
            Predicate::ReuseDistanceAtLeast(v) => {
                row.accessed_reuse_distance.is_some_and(|d| d >= *v)
            }
            Predicate::RecencyAtLeast(v) => row.recency.is_some_and(|d| d >= *v),
            Predicate::IndexInRange(lo, hi) => row.index >= *lo && row.index < *hi,
            Predicate::And(a, b) => a.matches(row) && b.matches(row),
            Predicate::Or(a, b) => a.matches(row) || b.matches(row),
            Predicate::Not(p) => !p.matches(row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> TraceRow {
        TraceRow {
            index: 7,
            pc: Pc::new(0x401e31),
            address: Address::new(0x35e798a637f),
            kind: cachemind_sim::access::AccessKind::Load,
            set: SetId::new(12),
            is_miss: true,
            miss_type: Some(MissType::Capacity),
            evicted_address: None,
            accessed_reuse_distance: Some(2304),
            evicted_reuse_distance: None,
            recency: Some(55),
            resident_lines: Vec::new(),
            access_history: Vec::new(),
            eviction_scores: Vec::new(),
            bypassed: false,
        }
    }

    #[test]
    fn atomic_predicates() {
        let r = row();
        assert!(Predicate::True.matches(&r));
        assert!(Predicate::PcEquals(Pc::new(0x401e31)).matches(&r));
        assert!(!Predicate::PcEquals(Pc::new(0x1)).matches(&r));
        assert!(Predicate::AddressEquals(Address::new(0x35e798a637f)).matches(&r));
        assert!(Predicate::LineOf(Address::new(0x35e798a6340)).matches(&r));
        assert!(Predicate::SetEquals(SetId::new(12)).matches(&r));
        assert!(Predicate::IsMiss(true).matches(&r));
        assert!(Predicate::MissTypeIs(MissType::Capacity).matches(&r));
        assert!(Predicate::ReuseDistanceAtLeast(2304).matches(&r));
        assert!(!Predicate::ReuseDistanceAtLeast(2305).matches(&r));
        assert!(Predicate::IndexInRange(0, 8).matches(&r));
        assert!(!Predicate::IndexInRange(8, 9).matches(&r));
    }

    #[test]
    fn combinators_compose() {
        let r = row();
        let p = Predicate::PcEquals(Pc::new(0x401e31))
            .and(Predicate::IsMiss(true))
            .or(Predicate::SetEquals(SetId::new(999)));
        assert!(p.matches(&r));
        assert!(!p.clone().not().matches(&r));
        assert!(Predicate::PcIn(vec![Pc::new(1), Pc::new(0x401e31)]).matches(&r));
    }
}
