//! Machine-readable schema description — the "detailed schema of the
//! external database" handed to the Ranger retrieval LLM (Fig. 3).

use serde::{Deserialize, Serialize};

/// One column of the dataframe schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name, exactly as in the paper (§4.3).
    pub name: &'static str,
    /// What the column holds.
    pub description: &'static str,
}

/// The full per-access schema of §4.3, in paper order.
pub const COLUMNS: &[Column] = &[
    Column { name: "program_counter", description: "Instruction identity (e.g., 0x401d9b)" },
    Column {
        name: "memory_address",
        description: "Accessed memory location (e.g., 0x35e798a637f)",
    },
    Column { name: "cache_set_id", description: "Target cache set" },
    Column { name: "evict", description: "Access outcome (Cache Hit/Cache Miss)" },
    Column { name: "miss_type", description: "Miss taxonomy (Compulsory, Capacity, Conflict)" },
    Column { name: "evicted_address", description: "Line evicted by this access (if any)" },
    Column { name: "accessed_address_recency", description: "Textual recency descriptor" },
    Column {
        name: "accessed_address_reuse_distance",
        description: "Reuse distance for the accessed line",
    },
    Column {
        name: "evicted_address_reuse_distance",
        description: "Reuse distance for the evicted line",
    },
    Column { name: "function_name", description: "Source-level function name mapped from PC" },
    Column { name: "function_code", description: "Short source snippet around the PC" },
    Column { name: "assembly_code", description: "Disassembly around the PC" },
    Column {
        name: "current_cache_lines",
        description: "Snapshot of (PC, address) pairs resident in the set at access time",
    },
    Column {
        name: "recent_access_history",
        description: "Recent (PC, address) tuples for context",
    },
    Column {
        name: "cache_line_eviction_scores",
        description: "Per-line scores used by the policy to decide evictions",
    },
    Column {
        name: "current_cache_line_addresses",
        description: "Addresses resident in the set at access time",
    },
    Column {
        name: "evicted_address_reuse_distance_numeric",
        description: "Reuse distance for the evicted line (numeric)",
    },
    Column {
        name: "accessed_address_reuse_distance_numeric",
        description: "Reuse distance for the accessed line (numeric)",
    },
    Column {
        name: "accessed_address_recency_numeric",
        description: "Access recency (number of intervening accesses)",
    },
    Column { name: "is_miss", description: "Indicator for miss/hit (1 = miss, 0 = hit)" },
];

/// Renders the schema card embedded in the Ranger system prompt.
pub fn schema_card(workloads: &[&str], policies: &[&str]) -> String {
    let mut out = String::new();
    out.push_str("Data Structure Overview\n");
    out.push_str("- loaded_data: a store with keys like lbm_evictions_lru.\n");
    out.push_str("- Values: \"data_frame\" (per-access rows), \"metadata\" (string), \"description\" (string).\n");
    out.push_str(&format!("- Workloads: {}.\n", workloads.join(", ")));
    out.push_str(&format!("- Policies: {}.\n", policies.join(", ")));
    out.push_str("\nDataframe Structure (data_frame)\nColumns:\n");
    for col in COLUMNS {
        out.push_str(&format!("- {} : {}\n", col.name, col.description));
    }
    out.push_str(
        "\nMetadata (metadata)\n\
         - A single string summarizing trace stats (accesses, misses, evictions, \
         miss rate, correlations, etc.).\n\
         - Access via loaded_data[trace_id][\"metadata\"].\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_all_paper_columns() {
        assert_eq!(COLUMNS.len(), 20);
        for name in [
            "program_counter",
            "memory_address",
            "cache_set_id",
            "evict",
            "miss_type",
            "is_miss",
            "accessed_address_reuse_distance_numeric",
        ] {
            assert!(COLUMNS.iter().any(|c| c.name == name), "missing {name}");
        }
    }

    #[test]
    fn schema_card_mentions_keys_and_columns() {
        let card = schema_card(&["astar", "lbm", "mcf"], &["belady", "lru", "mlp", "parrot"]);
        assert!(card.contains("lbm_evictions_lru"));
        assert!(card.contains("program_counter"));
        assert!(card.contains("Policies: belady, lru, mlp, parrot."));
    }
}
