//! The "Cache Statistical Expert" (§3.2.3): per-PC and per-set statistics
//! computed over retrieved trace slices.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use cachemind_sim::addr::{Address, Pc};

use crate::filter::Predicate;
use crate::frame::TraceFrame;

/// Per-PC statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcStats {
    /// The PC.
    pub pc: Pc,
    /// Accesses issued by this PC.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Mean forward reuse distance of the accessed lines (when known).
    pub mean_accessed_reuse: Option<f64>,
    /// Mean reuse distance of lines evicted by this PC's accesses.
    pub mean_evicted_reuse: Option<f64>,
    /// Standard deviation of the accessed reuse distance.
    pub reuse_stddev: Option<f64>,
    /// Evictions caused by this PC's fills.
    pub evictions_caused: u64,
}

impl PcStats {
    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Coefficient of variation of the reuse distance (stddev / mean) — the
    /// "stability" measure of the Mockingjay use case.
    pub fn reuse_cv(&self) -> Option<f64> {
        match (self.reuse_stddev, self.mean_accessed_reuse) {
            (Some(sd), Some(mean)) if mean > 0.0 => Some(sd / mean),
            _ => None,
        }
    }
}

/// Per-set statistics (the set-hotness use case).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetStats {
    /// Set index.
    pub set: usize,
    /// Accesses mapping to the set.
    pub accesses: u64,
    /// Hits in the set.
    pub hits: u64,
}

impl SetStats {
    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Computes statistics over a [`TraceFrame`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStatisticalExpert;

impl CacheStatisticalExpert {
    /// Creates the expert.
    pub fn new() -> Self {
        CacheStatisticalExpert
    }

    /// Per-PC statistics over the whole frame, ascending by PC.
    pub fn per_pc(&self, frame: &TraceFrame) -> Vec<PcStats> {
        #[derive(Default)]
        struct Acc {
            accesses: u64,
            hits: u64,
            misses: u64,
            reuse: Vec<f64>,
            evicted_reuse: Vec<f64>,
            evictions: u64,
        }
        let mut map: HashMap<Pc, Acc> = HashMap::new();
        for row in frame.rows() {
            let acc = map.entry(row.pc).or_default();
            acc.accesses += 1;
            if row.is_miss {
                acc.misses += 1;
            } else {
                acc.hits += 1;
            }
            if let Some(d) = row.accessed_reuse_distance {
                acc.reuse.push(d as f64);
            }
            if let Some(d) = row.evicted_reuse_distance {
                acc.evicted_reuse.push(d as f64);
            }
            if row.evicted_address.is_some() {
                acc.evictions += 1;
            }
        }
        let mut out: Vec<PcStats> = map
            .into_iter()
            .map(|(pc, acc)| {
                let (mean, sd) = mean_stddev(&acc.reuse);
                let (emean, _) = mean_stddev(&acc.evicted_reuse);
                PcStats {
                    pc,
                    accesses: acc.accesses,
                    hits: acc.hits,
                    misses: acc.misses,
                    mean_accessed_reuse: mean,
                    mean_evicted_reuse: emean,
                    reuse_stddev: sd,
                    evictions_caused: acc.evictions,
                }
            })
            .collect();
        out.sort_by_key(|s| s.pc);
        out
    }

    /// Statistics for one PC, if it appears in the frame.
    pub fn pc_stats(&self, frame: &TraceFrame, pc: Pc) -> Option<PcStats> {
        self.per_pc(&frame.select(&Predicate::PcEquals(pc))).pop()
    }

    /// Per-set statistics, ascending by set index.
    pub fn per_set(&self, frame: &TraceFrame) -> Vec<SetStats> {
        let mut map: HashMap<usize, SetStats> = HashMap::new();
        for row in frame.rows() {
            let s = map.entry(row.set.index()).or_insert(SetStats {
                set: row.set.index(),
                accesses: 0,
                hits: 0,
            });
            s.accesses += 1;
            s.hits += (!row.is_miss) as u64;
        }
        let mut out: Vec<SetStats> = map.into_values().collect();
        out.sort_by_key(|s| s.set);
        out
    }

    /// Per-access-kind counters — the "access types" breakdown the paper's
    /// gem5 extension provides. Returns `(kind, accesses, misses)` in a
    /// fixed load/store/fetch/prefetch order, skipping absent kinds.
    pub fn per_kind(
        &self,
        frame: &TraceFrame,
    ) -> Vec<(cachemind_sim::access::AccessKind, u64, u64)> {
        use cachemind_sim::access::AccessKind;
        let mut out = Vec::new();
        for kind in [AccessKind::Load, AccessKind::Store, AccessKind::Fetch, AccessKind::Prefetch] {
            let (mut accesses, mut misses) = (0u64, 0u64);
            for row in frame.rows() {
                if row.kind == kind {
                    accesses += 1;
                    misses += row.is_miss as u64;
                }
            }
            if accesses > 0 {
                out.push((kind, accesses, misses));
            }
        }
        out
    }

    /// All recorded outcomes for accesses by `pc` to `address` (byte-exact),
    /// in stream order. `true` = miss.
    pub fn outcomes_for(&self, frame: &TraceFrame, pc: Pc, address: Address) -> Vec<bool> {
        frame
            .rows()
            .iter()
            .filter(|r| r.pc == pc && r.address == address)
            .map(|r| r.is_miss)
            .collect()
    }

    /// Mean of the `evicted_address_reuse_distance_numeric` column over a
    /// slice.
    pub fn mean_evicted_reuse(&self, frame: &TraceFrame, predicate: &Predicate) -> Option<f64> {
        let values: Vec<f64> = frame
            .filter(predicate)
            .into_iter()
            .filter_map(|r| r.evicted_reuse_distance.map(|d| d as f64))
            .collect();
        mean_stddev(&values).0
    }
}

fn mean_stddev(values: &[f64]) -> (Option<f64>, Option<f64>) {
    if values.is_empty() {
        return (None, None);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (Some(mean), Some(var.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRow;
    use cachemind_sim::addr::SetId;
    use cachemind_workloads::program::ProgramImage;
    use std::sync::Arc;

    fn frame() -> TraceFrame {
        let mut rows = Vec::new();
        // PC 0x10: 3 accesses, 1 miss, reuse distances 10, 20, 30.
        // PC 0x20: 2 accesses, 2 misses, evicts lines.
        for (i, (pc, miss, reuse, evicted)) in [
            (0x10u64, false, Some(10), None),
            (0x10, true, Some(20), Some(0x999)),
            (0x10, false, Some(30), None),
            (0x20, true, None, Some(0x888)),
            (0x20, true, Some(100), Some(0x777)),
        ]
        .iter()
        .enumerate()
        {
            rows.push(TraceRow {
                index: i as u64,
                pc: Pc::new(*pc),
                address: Address::new(0x5000 + i as u64 * 64),
                kind: cachemind_sim::access::AccessKind::Load,
                set: SetId::new(i % 2),
                is_miss: *miss,
                miss_type: None,
                evicted_address: evicted.map(Address::new),
                accessed_reuse_distance: *reuse,
                evicted_reuse_distance: evicted.map(|_| 50),
                recency: None,
                resident_lines: Vec::new(),
                access_history: Vec::new(),
                eviction_scores: Vec::new(),
                bypassed: false,
            });
        }
        TraceFrame::new(rows, Arc::new(ProgramImage::new()))
    }

    #[test]
    fn per_pc_aggregates_correctly() {
        let expert = CacheStatisticalExpert::new();
        let stats = expert.per_pc(&frame());
        assert_eq!(stats.len(), 2);
        let pc10 = &stats[0];
        assert_eq!(pc10.pc, Pc::new(0x10));
        assert_eq!(pc10.accesses, 3);
        assert_eq!(pc10.misses, 1);
        assert!((pc10.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(pc10.mean_accessed_reuse, Some(20.0));
        let pc20 = &stats[1];
        assert_eq!(pc20.misses, 2);
        assert_eq!(pc20.evictions_caused, 2);
    }

    #[test]
    fn per_set_counts_hits() {
        let expert = CacheStatisticalExpert::new();
        let sets = expert.per_set(&frame());
        assert_eq!(sets.len(), 2);
        let total: u64 = sets.iter().map(|s| s.accesses).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn outcomes_for_is_byte_exact() {
        let expert = CacheStatisticalExpert::new();
        let f = frame();
        assert_eq!(expert.outcomes_for(&f, Pc::new(0x10), Address::new(0x5000)), vec![false]);
        assert!(expert.outcomes_for(&f, Pc::new(0x10), Address::new(0x5001)).is_empty());
    }

    #[test]
    fn reuse_cv_requires_samples() {
        let expert = CacheStatisticalExpert::new();
        let stats = expert.pc_stats(&frame(), Pc::new(0x10)).unwrap();
        assert!(stats.reuse_cv().is_some());
    }

    #[test]
    fn per_kind_breaks_down_access_types() {
        let expert = CacheStatisticalExpert::new();
        let kinds = expert.per_kind(&frame());
        assert_eq!(kinds.len(), 1, "test frame only contains loads");
        let (kind, accesses, misses) = kinds[0];
        assert_eq!(kind, cachemind_sim::access::AccessKind::Load);
        assert_eq!(accesses, 5);
        assert_eq!(misses, 3);
    }

    #[test]
    fn mean_evicted_reuse_over_predicate() {
        let expert = CacheStatisticalExpert::new();
        let f = frame();
        let m = expert.mean_evicted_reuse(&f, &Predicate::PcEquals(Pc::new(0x20)));
        assert_eq!(m, Some(50.0));
    }
}
