//! Persistent on-disk snapshots of a [`ShardedTraceDatabase`] — the
//! offline-build / online-serve split.
//!
//! Every serve process used to rebuild its trace database from scratch by
//! re-running simulations; a snapshot turns that build into an offline job
//! and makes serve cold-start a millisecond-scale file read. The format is
//! a compact, versioned binary layout (see `docs/SNAPSHOT.md` for the
//! byte-level diagram):
//!
//! ```text
//! +----------------------------------------------------------------------+
//! | header                                                               |
//! |   magic            "CMDBSNAP" (8 bytes)                              |
//! |   version          u32 LE  (SNAPSHOT_VERSION)                        |
//! |   llc config       option<CacheConfig>                               |
//! |   shard count      u32                                               |
//! |   label tables     workload / policy / machine / prefetcher          |
//! |                    (count + length-prefixed UTF-8 strings, sorted)   |
//! |   program table    interned ProgramImages, first-use order           |
//! |   segment directory per shard: entry count, byte length,             |
//! |                    8-lane FNV-1a over the segment payload            |
//! | header checksum    u64 LE  FNV-1a over every header byte above       |
//! +----------------------------------------------------------------------+
//! | shard segment 0    entries in ascending key order (see below)        |
//! | shard segment 1    ...                                               |
//! +----------------------------------------------------------------------+
//! ```
//!
//! Every entry carries its full [`TraceEntry`] payload — trace id (as
//! label-table indices), metadata and description strings, machine and
//! prefetcher labels, prefetch counters, IPC, and the complete row frame
//! (miss taxonomy, reuse distances, snapshot columns). Strings that repeat
//! across entries (workload, policy, machine, prefetcher names) are
//! interned once in the header's label tables; program images are interned
//! once per distinct image and shared by [`Arc`] on load, exactly as the
//! builder shares them.
//!
//! # Row compression
//!
//! Rows dominate the byte budget, so they are LEB128-varint encoded with
//! three cross-row delta modes that exploit how consecutive trace rows
//! relate (each mode falls back to a raw encoding whenever its invariant
//! does not hold, so arbitrary rows still round-trip exactly):
//!
//! * `access_history` is a sliding window — usually one new head (the
//!   row's own `(pc, address)`, stored once) plus a shared tail of the
//!   previous row's history;
//! * `resident_lines` frequently repeats the previous row's snapshot
//!   verbatim (hits do not change cache contents);
//! * `eviction_scores` lists the same line addresses as `resident_lines`
//!   in the same order, so only the scores are stored (scores are written
//!   `score.wrapping_add(1)` so the `u64::MAX` "never evict" sentinel
//!   encodes in one byte).
//!
//! # Determinism
//!
//! [`write_snapshot`] is a pure function of the database *contents*:
//! entries are walked in ascending key order, label tables are sorted,
//! program interning follows first use in that same order, and every
//! delta-mode choice is a deterministic function of the rows — so the
//! bytes are identical no matter how many threads built the database, and
//! save → load → save reproduces the first byte stream exactly.
//!
//! # Corruption safety
//!
//! The reader never panics and never returns a partial database: magic and
//! version are checked first, the header is structurally scanned and then
//! verified against its FNV-1a checksum before any of its content is
//! trusted, and each shard segment's checksum is verified before a single
//! entry is decoded. Every failure is a typed [`SnapshotError`].
//!
//! # Instant startup
//!
//! [`VerifiedSnapshot`] splits loading into its two halves: `open` reads
//! the file and verifies *every* checksum (so all realistic corruption —
//! bit rot, truncation, partial writes — fails fast at startup), while
//! `decode` materializes the entries. A serving process can hold a
//! `VerifiedSnapshot` and decode lazily on first use, making cold-start
//! an order of magnitude faster than an in-process simulation build.
//! Segment checksums use [`fnv64_wide`] — eight interleaved FNV-1a lanes
//! folded with FNV-1a — because a single FNV chain is a serial data
//! dependency that caps verification near 0.6 GB/s; the laned variant
//! verifies the same bytes about four times faster.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use cachemind_sim::access::AccessKind;
use cachemind_sim::addr::{Address, Pc, SetId};
use cachemind_sim::config::CacheConfig;
use cachemind_sim::replay::MissType;
use cachemind_workloads::program::ProgramImage;

use crate::database::{TraceEntry, TraceId};
use crate::frame::TraceFrame;
use crate::record::TraceRow;
use crate::shard::ShardedTraceDatabase;
use crate::store::{fnv64, TraceStore};

/// The 8-byte magic prefix of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CMDBSNAP";

/// The format version this build writes and reads. Any layout change —
/// new field, reordered section, different encoding — must bump this (the
/// golden-bytes fixture test fails loudly otherwise).
pub const SNAPSHOT_VERSION: u32 = 1;

/// A failure loading (or writing) a snapshot. The reader returns a typed
/// error for every malformed input — it never panics and never yields a
/// partially-decoded database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`] — not a snapshot.
    BadMagic,
    /// The file is a snapshot, but of a format version this build does not
    /// read.
    VersionMismatch {
        /// The version the file declares.
        found: u32,
    },
    /// A section's FNV-1a checksum does not match its bytes.
    ChecksumMismatch {
        /// Which section failed (`"header"` or `"shard segment N"`).
        section: String,
    },
    /// The byte stream ended before a section was complete.
    Truncated {
        /// The section being read when the bytes ran out.
        section: String,
    },
    /// The bytes passed their checksum but decode to an impossible value
    /// (an out-of-range label index, invalid UTF-8, trailing garbage).
    /// Unreachable for files this build wrote; kept so no input panics.
    Corrupt {
        /// What was wrong.
        detail: String,
    },
    /// The underlying file could not be read or written.
    Io {
        /// The rendered `std::io::Error`.
        detail: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a trace-database snapshot (bad magic)"),
            SnapshotError::VersionMismatch { found } => {
                write!(f, "snapshot version {found} unsupported (expected {SNAPSHOT_VERSION})")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot {section} checksum mismatch")
            }
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated while reading {section}")
            }
            SnapshotError::Corrupt { detail } => write!(f, "snapshot corrupt: {detail}"),
            SnapshotError::Io { detail } => write!(f, "snapshot io error: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io { detail: e.to_string() }
    }
}

// ---------------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Wide (8-lane interleaved) FNV-1a over arbitrary bytes.
///
/// Byte `i` feeds lane `i % 8`, each lane running the standard FNV-1a
/// update; the eight lane values are then folded into one digest with
/// plain FNV-1a over their little-endian bytes. Detection behaviour
/// matches FNV-1a (any single-byte change flips its lane and therefore
/// the fold), but the eight independent multiply chains give the
/// out-of-order core real instruction-level parallelism — segment
/// verification runs ~4x faster than a single chain, which is what keeps
/// [`VerifiedSnapshot::open`] in the low single-digit milliseconds.
pub fn fnv64_wide(bytes: &[u8]) -> u64 {
    const LANES: usize = 8;
    let mut lanes = [FNV_OFFSET; LANES];
    let mut chunks = bytes.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (lane, &byte) in lanes.iter_mut().zip(chunk) {
            *lane = (*lane ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }
    for (lane, &byte) in lanes.iter_mut().zip(chunks.remainder()) {
        *lane = (*lane ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    let mut hash = FNV_OFFSET;
    for lane in lanes {
        for byte in lane.to_le_bytes() {
            hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// LEB128: seven value bits per byte, high bit = continuation.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    // Bit-exact: the round-trip preserves NaN payloads and signed zeros.
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            put_u32(out, x);
        }
    }
}

/// A bounds-checked little-endian reader. Every primitive read fails with
/// [`SnapshotError::Truncated`] naming the current section instead of
/// slicing out of range — the reader never panics on short input.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], section: &'static str) -> Self {
        Cursor { bytes, pos: 0, section }
    }

    fn section(&mut self, name: &'static str) {
        self.section = name;
    }

    fn truncated(&self) -> SnapshotError {
        SnapshotError::Truncated { section: self.section.to_owned() }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        // Checked arithmetic: a corrupt length near usize::MAX must not
        // overflow the position.
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        if end > self.bytes.len() {
            return Err(self.truncated());
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// LEB128 decode, capped at the ten bytes a u64 can need; longer or
    /// overflowing encodings are [`SnapshotError::Corrupt`], not panics.
    fn varint(&mut self) -> Result<u64, SnapshotError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let part = u64::from(byte & 0x7f);
            if shift == 63 && part > 1 {
                return Err(SnapshotError::Corrupt {
                    detail: format!("varint overflow in {}", self.section),
                });
            }
            value |= part << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(SnapshotError::Corrupt { detail: format!("varint too long in {}", self.section) })
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt {
            detail: format!("invalid UTF-8 in {}", self.section),
        })
    }

    /// Skips a length-prefixed string without validating its contents —
    /// the structural pre-scan that locates the header checksum before any
    /// header content is trusted.
    fn skip_str(&mut self) -> Result<(), SnapshotError> {
        let len = self.u32()? as usize;
        self.take(len)?;
        Ok(())
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            tag => Err(SnapshotError::Corrupt {
                detail: format!("bad option tag {tag} in {}", self.section),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Component encodings
// ---------------------------------------------------------------------------

fn put_cache_config(out: &mut Vec<u8>, cfg: &CacheConfig) {
    put_str(out, &cfg.name);
    put_u32(out, cfg.sets_log2);
    put_u64(out, cfg.ways as u64);
    put_u32(out, cfg.line_size_log2);
    put_u64(out, cfg.latency_cycles);
    put_u64(out, cfg.mshr_entries as u64);
}

fn read_cache_config(c: &mut Cursor<'_>) -> Result<CacheConfig, SnapshotError> {
    let name = c.str()?;
    let sets_log2 = c.u32()?;
    let ways = c.u64()? as usize;
    let line_size_log2 = c.u32()?;
    let latency_cycles = c.u64()?;
    let mshr_entries = c.u64()? as usize;
    Ok(CacheConfig::new(&name, sets_log2, ways, line_size_log2)
        .with_latency(latency_cycles)
        .with_mshr(mshr_entries))
}

fn skip_cache_config(c: &mut Cursor<'_>) -> Result<(), SnapshotError> {
    c.skip_str()?;
    c.take(4 + 8 + 4 + 8 + 8)?;
    Ok(())
}

fn put_program(out: &mut Vec<u8>, program: &ProgramImage) {
    let functions = program.functions();
    put_u32(out, functions.len() as u32);
    for f in functions {
        put_str(out, &f.name);
        put_u64(out, f.base_pc.value());
        put_str(out, &f.source);
        put_u32(out, f.instructions.len() as u32);
        for ins in &f.instructions {
            put_u64(out, ins.pc.value());
            put_str(out, &ins.text);
        }
    }
}

fn read_program(c: &mut Cursor<'_>) -> Result<ProgramImage, SnapshotError> {
    let nfuncs = c.u32()?;
    let mut functions = Vec::with_capacity(nfuncs.min(1 << 16) as usize);
    for _ in 0..nfuncs {
        let name = c.str()?;
        let base_pc = c.u64()?;
        let source = c.str()?;
        let nins = c.u32()?;
        let mut instructions = Vec::new();
        for _ in 0..nins {
            let pc = c.u64()?;
            let text = c.str()?;
            instructions.push(cachemind_workloads::program::Instruction { pc: Pc::new(pc), text });
        }
        functions.push(cachemind_workloads::program::Function {
            name,
            base_pc: Pc::new(base_pc),
            instructions,
            source,
        });
    }
    Ok(ProgramImage::from_functions(functions))
}

fn skip_program(c: &mut Cursor<'_>) -> Result<(), SnapshotError> {
    let nfuncs = c.u32()?;
    for _ in 0..nfuncs {
        c.skip_str()?; // name
        c.take(8)?; // base_pc
        c.skip_str()?; // source
        let nins = c.u32()?;
        for _ in 0..nins {
            c.take(8)?; // pc
            c.skip_str()?; // text
        }
    }
    Ok(())
}

// Row flag layout. Byte one packs the enums and the history mode; byte
// two packs the two snapshot-column modes and the presence bits of the
// four optional scalars.
const HIST_RAW: u8 = 0; // count + (pc, addr) varint pairs
const HIST_TAIL: u8 = 1; // n_new + n_shared + new pairs; tail from prev row
const HIST_SLIDE: u8 = 2; // head is (row.pc, row.address); n_shared tail
const RES_RAW: u8 = 0; // count + (addr, pc) varint pairs
const RES_SAME: u8 = 1; // identical to the previous row's resident_lines
const SCORES_RAW: u8 = 0; // count + (addr, score+1) varint pairs
const SCORES_SAME: u8 = 1; // identical to the previous row's eviction_scores
const SCORES_ALIGNED: u8 = 2; // addresses = resident_lines'; scores only

fn put_row(out: &mut Vec<u8>, row: &TraceRow, prev: Option<&TraceRow>, prev_index: u64) {
    let prev_hist: &[(Pc, Address)] = prev.map(|p| p.access_history.as_slice()).unwrap_or(&[]);
    let prev_res: &[(Address, Pc)] = prev.map(|p| p.resident_lines.as_slice()).unwrap_or(&[]);
    let prev_scores: &[(Address, u64)] = prev.map(|p| p.eviction_scores.as_slice()).unwrap_or(&[]);

    let hist = &row.access_history;
    let hist_mode = if !hist.is_empty()
        && hist[0] == (row.pc, row.address)
        && hist.len() - 1 <= prev_hist.len()
        && hist[1..] == prev_hist[..hist.len() - 1]
    {
        HIST_SLIDE
    } else if shared_tail(hist, prev_hist) > 0 {
        HIST_TAIL
    } else {
        HIST_RAW
    };
    let res_mode = if row.resident_lines.as_slice() == prev_res { RES_SAME } else { RES_RAW };
    let scores_mode = if row.eviction_scores.as_slice() == prev_scores {
        SCORES_SAME
    } else if row.eviction_scores.len() == row.resident_lines.len()
        && row.eviction_scores.iter().zip(&row.resident_lines).all(|(s, r)| s.0 == r.0)
    {
        SCORES_ALIGNED
    } else {
        SCORES_RAW
    };

    let flags = match row.kind {
        AccessKind::Load => 0u8,
        AccessKind::Store => 1,
        AccessKind::Fetch => 2,
        AccessKind::Prefetch => 3,
    } | (row.is_miss as u8) << 2
        | (row.bypassed as u8) << 3
        | match row.miss_type {
            None => 0u8,
            Some(MissType::Compulsory) => 1,
            Some(MissType::Capacity) => 2,
            Some(MissType::Conflict) => 3,
        } << 4
        | hist_mode << 6;
    let flags2 = res_mode
        | scores_mode << 2
        | (row.evicted_address.is_some() as u8) << 4
        | (row.accessed_reuse_distance.is_some() as u8) << 5
        | (row.evicted_reuse_distance.is_some() as u8) << 6
        | (row.recency.is_some() as u8) << 7;
    put_u8(out, flags);
    put_u8(out, flags2);

    put_varint(out, row.index.wrapping_sub(prev_index));
    put_varint(out, row.pc.value());
    put_varint(out, row.address.value());
    put_varint(out, row.set.index() as u64);
    for value in [
        row.evicted_address.map(Address::value),
        row.accessed_reuse_distance,
        row.evicted_reuse_distance,
        row.recency,
    ]
    .into_iter()
    .flatten()
    {
        put_varint(out, value);
    }

    match hist_mode {
        HIST_SLIDE => put_varint(out, (hist.len() - 1) as u64),
        HIST_TAIL => {
            let shared = shared_tail(hist, prev_hist);
            put_varint(out, (hist.len() - shared) as u64);
            put_varint(out, shared as u64);
            for (pc, addr) in &hist[..hist.len() - shared] {
                put_varint(out, pc.value());
                put_varint(out, addr.value());
            }
        }
        _ => {
            put_varint(out, hist.len() as u64);
            for (pc, addr) in hist {
                put_varint(out, pc.value());
                put_varint(out, addr.value());
            }
        }
    }
    if res_mode == RES_RAW {
        put_varint(out, row.resident_lines.len() as u64);
        for (addr, pc) in &row.resident_lines {
            put_varint(out, addr.value());
            put_varint(out, pc.value());
        }
    }
    match scores_mode {
        SCORES_ALIGNED => {
            for (_, score) in &row.eviction_scores {
                put_varint(out, score.wrapping_add(1));
            }
        }
        SCORES_RAW => {
            put_varint(out, row.eviction_scores.len() as u64);
            for (addr, score) in &row.eviction_scores {
                put_varint(out, addr.value());
                put_varint(out, score.wrapping_add(1));
            }
        }
        _ => {}
    }
}

/// The longest tail of `cur` that is a prefix of `prev` — the shared
/// portion of a sliding access-history window. Deterministic (always the
/// maximum), which keeps save → load → save byte-identical.
fn shared_tail<T: PartialEq>(cur: &[T], prev: &[T]) -> usize {
    (0..=cur.len().min(prev.len())).rev().find(|&k| cur[cur.len() - k..] == prev[..k]).unwrap_or(0)
}

fn read_row(
    c: &mut Cursor<'_>,
    prev: Option<&TraceRow>,
    prev_index: u64,
) -> Result<TraceRow, SnapshotError> {
    let prev_hist: &[(Pc, Address)] = prev.map(|p| p.access_history.as_slice()).unwrap_or(&[]);
    let prev_res: &[(Address, Pc)] = prev.map(|p| p.resident_lines.as_slice()).unwrap_or(&[]);
    let prev_scores: &[(Address, u64)] = prev.map(|p| p.eviction_scores.as_slice()).unwrap_or(&[]);

    let flags = c.u8()?;
    let flags2 = c.u8()?;
    let kind = match flags & 0b11 {
        0 => AccessKind::Load,
        1 => AccessKind::Store,
        2 => AccessKind::Fetch,
        _ => AccessKind::Prefetch,
    };
    let is_miss = flags & (1 << 2) != 0;
    let bypassed = flags & (1 << 3) != 0;
    let miss_type = match (flags >> 4) & 0b11 {
        0 => None,
        1 => Some(MissType::Compulsory),
        2 => Some(MissType::Capacity),
        _ => Some(MissType::Conflict),
    };
    let hist_mode = flags >> 6;
    let res_mode = flags2 & 0b11;
    let scores_mode = (flags2 >> 2) & 0b11;

    let index = prev_index.wrapping_add(c.varint()?);
    let pc = Pc::new(c.varint()?);
    let address = Address::new(c.varint()?);
    let set = SetId::new(c.varint()? as usize);
    let mut opts = [None; 4];
    for (bit, slot) in opts.iter_mut().enumerate() {
        if flags2 & (1 << (4 + bit)) != 0 {
            *slot = Some(c.varint()?);
        }
    }
    let [evicted_address, accessed_reuse_distance, evicted_reuse_distance, recency] = opts;
    let evicted_address = evicted_address.map(Address::new);

    let access_history = match hist_mode {
        HIST_SLIDE => {
            let shared = c.varint()? as usize;
            if shared > prev_hist.len() {
                return Err(SnapshotError::Corrupt {
                    detail: format!("history tail {shared} exceeds previous row"),
                });
            }
            let mut hist = Vec::with_capacity(1 + shared);
            hist.push((pc, address));
            hist.extend_from_slice(&prev_hist[..shared]);
            hist
        }
        HIST_TAIL => {
            let n_new = c.varint()? as usize;
            let shared = c.varint()? as usize;
            if shared > prev_hist.len() {
                return Err(SnapshotError::Corrupt {
                    detail: format!("history tail {shared} exceeds previous row"),
                });
            }
            let mut hist = Vec::with_capacity(n_new.min(1 << 20) + shared);
            for _ in 0..n_new {
                let pc = Pc::new(c.varint()?);
                let addr = Address::new(c.varint()?);
                hist.push((pc, addr));
            }
            hist.extend_from_slice(&prev_hist[..shared]);
            hist
        }
        HIST_RAW => {
            let n = c.varint()? as usize;
            let mut hist = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let pc = Pc::new(c.varint()?);
                let addr = Address::new(c.varint()?);
                hist.push((pc, addr));
            }
            hist
        }
        mode => return Err(SnapshotError::Corrupt { detail: format!("bad history mode {mode}") }),
    };
    let resident_lines = match res_mode {
        RES_SAME => prev_res.to_vec(),
        RES_RAW => {
            let n = c.varint()? as usize;
            let mut lines = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let addr = Address::new(c.varint()?);
                let pc = Pc::new(c.varint()?);
                lines.push((addr, pc));
            }
            lines
        }
        mode => return Err(SnapshotError::Corrupt { detail: format!("bad resident mode {mode}") }),
    };
    let eviction_scores = match scores_mode {
        SCORES_SAME => prev_scores.to_vec(),
        SCORES_ALIGNED => {
            let mut scores = Vec::with_capacity(resident_lines.len());
            for (addr, _) in &resident_lines {
                scores.push((*addr, c.varint()?.wrapping_sub(1)));
            }
            scores
        }
        SCORES_RAW => {
            let n = c.varint()? as usize;
            let mut scores = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let addr = Address::new(c.varint()?);
                scores.push((addr, c.varint()?.wrapping_sub(1)));
            }
            scores
        }
        mode => return Err(SnapshotError::Corrupt { detail: format!("bad scores mode {mode}") }),
    };

    Ok(TraceRow {
        index,
        pc,
        address,
        kind,
        set,
        is_miss,
        miss_type,
        evicted_address,
        accessed_reuse_distance,
        evicted_reuse_distance,
        recency,
        resident_lines,
        access_history,
        eviction_scores,
        bypassed,
    })
}

// ---------------------------------------------------------------------------
// Label + program interning
// ---------------------------------------------------------------------------

/// One of the four header label tables: sorted distinct strings, written
/// once, referenced from entries by `u32` index.
#[derive(Debug, Default)]
struct LabelTable {
    labels: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl LabelTable {
    fn from_sorted<I: IntoIterator<Item = String>>(labels: I) -> Self {
        let mut table = LabelTable::default();
        for label in labels {
            let idx = table.labels.len() as u32;
            table.index.insert(label.clone(), idx);
            table.labels.push(label);
        }
        table
    }

    fn id(&self, label: &str) -> u32 {
        *self.index.get(label).expect("label interned during table construction")
    }

    fn write(&self, out: &mut Vec<u8>) {
        put_u32(out, self.labels.len() as u32);
        for label in &self.labels {
            put_str(out, label);
        }
    }
}

fn read_labels(c: &mut Cursor<'_>) -> Result<Vec<String>, SnapshotError> {
    let n = c.u32()?;
    let mut labels = Vec::with_capacity(n.min(1 << 16) as usize);
    for _ in 0..n {
        labels.push(c.str()?);
    }
    Ok(labels)
}

fn skip_labels(c: &mut Cursor<'_>) -> Result<(), SnapshotError> {
    let n = c.u32()?;
    for _ in 0..n {
        c.skip_str()?;
    }
    Ok(())
}

fn label_at<'t>(labels: &'t [String], idx: u32, what: &str) -> Result<&'t str, SnapshotError> {
    labels.get(idx as usize).map(String::as_str).ok_or_else(|| SnapshotError::Corrupt {
        detail: format!("{what} label index {idx} out of range ({} labels)", labels.len()),
    })
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serializes a sharded database into the versioned snapshot byte format.
///
/// Deterministic: the bytes are a pure function of the database contents
/// (entries in ascending key order, sorted label tables, first-use program
/// interning), independent of thread count and build history.
pub fn write_snapshot(db: &ShardedTraceDatabase) -> Vec<u8> {
    // Label tables: sorted distinct strings over every entry.
    let mut workloads = std::collections::BTreeSet::new();
    let mut policies = std::collections::BTreeSet::new();
    let mut machines = std::collections::BTreeSet::new();
    let mut prefetchers = std::collections::BTreeSet::new();
    for entry in TraceStore::entries(db) {
        workloads.insert(entry.id.workload.clone());
        policies.insert(entry.id.policy.clone());
        machines.insert(entry.machine.clone());
        if let Some(m) = &entry.id.machine {
            machines.insert(m.clone());
        }
        prefetchers.insert(entry.prefetcher.clone());
        if let Some(p) = &entry.id.prefetcher {
            prefetchers.insert(p.clone());
        }
    }
    let workloads = LabelTable::from_sorted(workloads);
    let policies = LabelTable::from_sorted(policies);
    let machines = LabelTable::from_sorted(machines);
    let prefetchers = LabelTable::from_sorted(prefetchers);

    // Program table: interned by pointer first (entries of one workload
    // share an Arc), then by content, in first-use order over the global
    // ascending key walk — the same walk the loader re-interns in.
    let mut programs: Vec<Arc<ProgramImage>> = Vec::new();
    let mut program_of_entry: BTreeMap<String, u32> = BTreeMap::new();
    for entry in TraceStore::entries(db) {
        let program = entry.frame.program();
        let idx = programs.iter().position(|p| **p == *program).unwrap_or_else(|| {
            programs.push(Arc::new(program.clone()));
            programs.len() - 1
        });
        program_of_entry.insert(entry.id.key(), idx as u32);
    }

    // Shard segments: entries in ascending key order within each shard.
    let mut segments: Vec<(u32, Vec<u8>)> = Vec::with_capacity(db.num_shards());
    for shard in db.shards() {
        let mut seg = Vec::new();
        let mut count = 0u32;
        for entry in shard.entries() {
            count += 1;
            put_u32(&mut seg, workloads.id(&entry.id.workload));
            put_u32(&mut seg, policies.id(&entry.id.policy));
            put_opt_u32(&mut seg, entry.id.machine.as_deref().map(|m| machines.id(m)));
            put_opt_u32(&mut seg, entry.id.prefetcher.as_deref().map(|p| prefetchers.id(p)));
            put_u32(&mut seg, machines.id(&entry.machine));
            put_u32(&mut seg, prefetchers.id(&entry.prefetcher));
            put_str(&mut seg, &entry.metadata);
            put_str(&mut seg, &entry.description);
            put_u32(&mut seg, program_of_entry[&entry.id.key()]);
            put_u64(&mut seg, entry.prefetch_fills);
            put_u64(&mut seg, entry.useful_prefetches);
            put_f64(&mut seg, entry.prefetch_accuracy);
            put_f64(&mut seg, entry.prefetch_coverage);
            put_f64(&mut seg, entry.ipc);
            let rows = entry.frame.rows();
            put_u32(&mut seg, rows.len() as u32);
            let mut prev: Option<&TraceRow> = None;
            let mut prev_index = 0u64;
            for row in rows {
                put_row(&mut seg, row, prev, prev_index);
                prev_index = row.index;
                prev = Some(row);
            }
        }
        segments.push((count, seg));
    }

    // Header: everything the segments reference, plus the segment
    // directory, checksummed as one unit.
    let mut header = Vec::new();
    header.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u32(&mut header, SNAPSHOT_VERSION);
    match TraceStore::llc_config(db) {
        None => put_u8(&mut header, 0),
        Some(cfg) => {
            put_u8(&mut header, 1);
            put_cache_config(&mut header, cfg);
        }
    }
    put_u32(&mut header, db.num_shards() as u32);
    workloads.write(&mut header);
    policies.write(&mut header);
    machines.write(&mut header);
    prefetchers.write(&mut header);
    put_u32(&mut header, programs.len() as u32);
    for program in &programs {
        put_program(&mut header, program);
    }
    for (count, seg) in &segments {
        put_u32(&mut header, *count);
        put_u64(&mut header, seg.len() as u64);
        put_u64(&mut header, fnv64_wide(seg));
    }

    let mut out = header;
    let checksum = fnv64(&out);
    put_u64(&mut out, checksum);
    for (_, seg) in &segments {
        out.extend_from_slice(seg);
    }
    out
}

/// What the structural header scan finds: where the header ends (the
/// checksum position) and where its segment directory starts.
struct HeaderScan {
    header_end: usize,
    shards: usize,
    dir_start: usize,
}

/// Structurally scans the header (no content validation) to locate the
/// header checksum: the reader trusts no header byte before the checksum
/// over all of them has been verified. Only [`SnapshotError::BadMagic`],
/// [`SnapshotError::VersionMismatch`] and [`SnapshotError::Truncated`] can
/// come out of the scan.
fn scan_header(bytes: &[u8]) -> Result<HeaderScan, SnapshotError> {
    let mut c = Cursor::new(bytes, "magic");
    if c.take(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    c.section("version");
    let version = c.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::VersionMismatch { found: version });
    }
    c.section("header");
    if c.u8()? != 0 {
        skip_cache_config(&mut c)?;
    }
    let shards = c.u32()? as usize;
    for _ in 0..4 {
        skip_labels(&mut c)?;
    }
    let nprograms = c.u32()?;
    for _ in 0..nprograms {
        skip_program(&mut c)?;
    }
    // Segment directory: (entry count, byte length, checksum) per shard.
    let dir_start = c.pos;
    c.take(shards.saturating_mul(4 + 8 + 8))?;
    Ok(HeaderScan { header_end: c.pos, shards, dir_start })
}

/// Deserializes a snapshot produced by [`write_snapshot`].
///
/// Validation order: magic, version, header checksum, then each shard
/// segment's checksum — only checksum-verified bytes are ever decoded into
/// entries, so a corrupted file yields a typed [`SnapshotError`], never a
/// partial database.
pub fn read_snapshot(bytes: &[u8]) -> Result<ShardedTraceDatabase, SnapshotError> {
    // Phase 1: locate and verify the header before trusting any of it.
    let header_end = scan_header(bytes)?.header_end;
    let mut c = Cursor::new(bytes, "header checksum");
    c.pos = header_end;
    let declared = c.u64()?;
    if fnv64(&bytes[..header_end]) != declared {
        return Err(SnapshotError::ChecksumMismatch { section: "header".to_owned() });
    }

    // Phase 2: decode the verified header.
    let mut h = Cursor::new(&bytes[..header_end], "header");
    h.take(SNAPSHOT_MAGIC.len())?;
    h.u32()?; // version, already checked
    let llc = match h.u8()? {
        0 => None,
        1 => Some(read_cache_config(&mut h)?),
        tag => return Err(SnapshotError::Corrupt { detail: format!("bad llc tag {tag}") }),
    };
    let shards = h.u32()? as usize;
    h.section("label tables");
    let workloads = read_labels(&mut h)?;
    let policies = read_labels(&mut h)?;
    let machines = read_labels(&mut h)?;
    let prefetchers = read_labels(&mut h)?;
    h.section("program table");
    let nprograms = h.u32()?;
    let mut programs: Vec<Arc<ProgramImage>> = Vec::with_capacity(nprograms.min(1 << 16) as usize);
    for _ in 0..nprograms {
        programs.push(Arc::new(read_program(&mut h)?));
    }
    h.section("segment directory");
    let mut directory = Vec::with_capacity(shards.min(1 << 16));
    for _ in 0..shards {
        let count = h.u32()?;
        let len = h.u64()? as usize;
        let checksum = h.u64()?;
        directory.push((count, len, checksum));
    }

    // Phase 3: verify each segment's checksum, then decode its entries.
    let mut entries: Vec<TraceEntry> = Vec::new();
    let mut offset = header_end + 8;
    for (shard, (count, len, checksum)) in directory.iter().enumerate() {
        let end = offset.checked_add(*len).filter(|e| *e <= bytes.len()).ok_or_else(|| {
            SnapshotError::Truncated { section: format!("shard segment {shard}") }
        })?;
        let seg = &bytes[offset..end];
        if fnv64_wide(seg) != *checksum {
            return Err(SnapshotError::ChecksumMismatch {
                section: format!("shard segment {shard}"),
            });
        }
        let mut s = Cursor::new(seg, "shard segment");
        for _ in 0..*count {
            let workload = label_at(&workloads, s.u32()?, "workload")?.to_owned();
            let policy = label_at(&policies, s.u32()?, "policy")?.to_owned();
            let id_machine = match s.opt_u32()? {
                None => None,
                Some(idx) => Some(label_at(&machines, idx, "machine")?.to_owned()),
            };
            let id_prefetcher = match s.opt_u32()? {
                None => None,
                Some(idx) => Some(label_at(&prefetchers, idx, "prefetcher")?.to_owned()),
            };
            let machine = label_at(&machines, s.u32()?, "machine")?.to_owned();
            let prefetcher = label_at(&prefetchers, s.u32()?, "prefetcher")?.to_owned();
            let metadata = s.str()?;
            let description = s.str()?;
            let program_idx = s.u32()? as usize;
            let program = programs.get(program_idx).ok_or_else(|| SnapshotError::Corrupt {
                detail: format!("program index {program_idx} out of range"),
            })?;
            let prefetch_fills = s.u64()?;
            let useful_prefetches = s.u64()?;
            let prefetch_accuracy = s.f64()?;
            let prefetch_coverage = s.f64()?;
            let ipc = s.f64()?;
            let nrows = s.u32()?;
            let mut rows: Vec<TraceRow> = Vec::with_capacity(nrows.min(1 << 22) as usize);
            let mut prev_index = 0u64;
            for _ in 0..nrows {
                let row = read_row(&mut s, rows.last(), prev_index)?;
                prev_index = row.index;
                rows.push(row);
            }
            entries.push(TraceEntry {
                id: TraceId { workload, policy, machine: id_machine, prefetcher: id_prefetcher },
                frame: TraceFrame::new(rows, Arc::clone(program)),
                metadata,
                description,
                machine,
                prefetcher,
                prefetch_fills,
                useful_prefetches,
                prefetch_accuracy,
                prefetch_coverage,
                ipc,
            });
        }
        if s.pos != seg.len() {
            return Err(SnapshotError::Corrupt {
                detail: format!("shard segment {shard} has trailing bytes"),
            });
        }
        offset = end;
    }
    if offset != bytes.len() {
        return Err(SnapshotError::Corrupt { detail: "trailing bytes after last segment".into() });
    }

    Ok(ShardedTraceDatabase::from_entries(entries, shards.max(1), llc))
}

/// Writes `db` to `path` in the snapshot format ([`write_snapshot`]).
pub fn save_to_path(db: &ShardedTraceDatabase, path: &Path) -> Result<(), SnapshotError> {
    let _span = cachemind_obs::global().span(cachemind_obs::names::TRACEDB_SNAPSHOT_SAVE);
    std::fs::write(path, write_snapshot(db))?;
    Ok(())
}

/// Loads a snapshot file written by [`save_to_path`] / [`write_snapshot`].
pub fn load_from_path(path: &Path) -> Result<ShardedTraceDatabase, SnapshotError> {
    let _span = cachemind_obs::global().span(cachemind_obs::names::TRACEDB_SNAPSHOT_LOAD);
    let bytes = std::fs::read(path)?;
    read_snapshot(&bytes)
}

/// A snapshot whose *every* checksum has been verified but whose entries
/// have not been decoded yet — the instant-startup half of snapshot
/// serving.
///
/// [`VerifiedSnapshot::open`] reads the file, structurally scans the
/// header, and verifies the header checksum plus every segment checksum
/// and segment bound, so all realistic corruption — bit rot, truncation,
/// a partial write — fails fast with a typed [`SnapshotError`] before the
/// process claims to be ready. Entry materialization ([`decode`]) is the
/// expensive half (hundreds of thousands of small allocations) and can be
/// deferred to first use; it operates on the already-verified bytes.
///
/// A checksum-valid file whose payload is structurally malformed (only
/// producible by deliberately forging checksums) still fails `decode`
/// with a typed error, never a panic.
///
/// [`decode`]: VerifiedSnapshot::decode
#[derive(Clone)]
pub struct VerifiedSnapshot {
    bytes: Vec<u8>,
    shards: usize,
    trace_count: usize,
}

impl std::fmt::Debug for VerifiedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifiedSnapshot")
            .field("bytes", &self.bytes.len())
            .field("shards", &self.shards)
            .field("trace_count", &self.trace_count)
            .finish()
    }
}

impl VerifiedSnapshot {
    /// Reads `path` and verifies every checksum without decoding entries.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let _span = cachemind_obs::global().span(cachemind_obs::names::TRACEDB_SNAPSHOT_VERIFY);
        Self::verify(std::fs::read(path.as_ref())?)
    }

    /// Verifies an in-memory snapshot byte stream without decoding
    /// entries: magic, version, header checksum, then each segment's
    /// bounds and checksum, and finally that no bytes trail the last
    /// segment.
    pub fn verify(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        let scan = scan_header(&bytes)?;
        let mut c = Cursor::new(&bytes, "header checksum");
        c.pos = scan.header_end;
        let declared = c.u64()?;
        if fnv64(&bytes[..scan.header_end]) != declared {
            return Err(SnapshotError::ChecksumMismatch { section: "header".to_owned() });
        }

        // The directory bytes are covered by the just-verified header
        // checksum; walk them and check every segment against it.
        let mut d = Cursor::new(&bytes[..scan.header_end], "segment directory");
        d.pos = scan.dir_start;
        let mut offset = scan.header_end + 8;
        let mut trace_count = 0usize;
        for shard in 0..scan.shards {
            let count = d.u32()?;
            let len = d.u64()? as usize;
            let checksum = d.u64()?;
            trace_count += count as usize;
            let end = offset.checked_add(len).filter(|e| *e <= bytes.len()).ok_or_else(|| {
                SnapshotError::Truncated { section: format!("shard segment {shard}") }
            })?;
            if fnv64_wide(&bytes[offset..end]) != checksum {
                return Err(SnapshotError::ChecksumMismatch {
                    section: format!("shard segment {shard}"),
                });
            }
            offset = end;
        }
        if offset != bytes.len() {
            return Err(SnapshotError::Corrupt {
                detail: "trailing bytes after last segment".into(),
            });
        }
        Ok(VerifiedSnapshot { bytes, shards: scan.shards, trace_count })
    }

    /// The shard count the snapshot's header declares.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Total entries across all shard segments, from the directory.
    pub fn trace_count(&self) -> usize {
        self.trace_count
    }

    /// Materializes the database from the verified bytes.
    pub fn decode(&self) -> Result<ShardedTraceDatabase, SnapshotError> {
        read_snapshot(&self.bytes)
    }
}

/// A [`TraceStore`] over a [`VerifiedSnapshot`] that materializes the
/// database on first query instead of at construction.
///
/// Construction is therefore as fast as [`VerifiedSnapshot::open`] — all
/// checksums verified, nothing decoded — which is what makes snapshot
/// serving cold-start an order of magnitude faster than an in-process
/// build. [`TraceStore::len`] and [`TraceStore::shard_count`] answer from
/// the verified header without forcing a decode, so a serving process can
/// report its startup banner cheaply; every entry-level query forces the
/// one-time decode.
///
/// Decode cannot fail for files whose checksums verified unless the
/// checksums themselves were forged; in that pathological case the store
/// degrades to an *empty* database (typed errors having no channel
/// through `&self` accessors) rather than panicking.
#[derive(Debug)]
pub struct LazyTraceDatabase {
    snapshot: VerifiedSnapshot,
    db: std::sync::OnceLock<ShardedTraceDatabase>,
    metrics: cachemind_obs::MetricsRegistry,
}

impl LazyTraceDatabase {
    /// Wraps a verified snapshot; no decoding happens until first query.
    /// Decode telemetry goes to the process-global registry unless
    /// [`LazyTraceDatabase::with_metrics`] redirects it.
    pub fn new(snapshot: VerifiedSnapshot) -> Self {
        LazyTraceDatabase {
            snapshot,
            db: std::sync::OnceLock::new(),
            metrics: cachemind_obs::global().clone(),
        }
    }

    /// Redirects decode telemetry (the `tracedb.lazy_decode*` span and
    /// counters) to `metrics` — e.g. a serve engine's own registry.
    pub fn with_metrics(mut self, metrics: &cachemind_obs::MetricsRegistry) -> Self {
        self.metrics = metrics.clone();
        self
    }

    /// The underlying verified snapshot.
    pub fn snapshot(&self) -> &VerifiedSnapshot {
        &self.snapshot
    }

    /// The decoded database, materializing it on first call.
    pub fn force(&self) -> &ShardedTraceDatabase {
        self.db.get_or_init(|| {
            let span = self.metrics.span(cachemind_obs::names::TRACEDB_LAZY_DECODE);
            let db = self.snapshot.decode().unwrap_or_else(|_| {
                ShardedTraceDatabase::from_entries(
                    Vec::new(),
                    self.snapshot.num_shards().max(1),
                    None,
                )
            });
            span.finish();
            self.metrics
                .counter(cachemind_obs::names::TRACEDB_LAZY_DECODE_SEGMENTS)
                .add(db.shard_count() as u64);
            self.metrics
                .counter(cachemind_obs::names::TRACEDB_LAZY_DECODE_TRACES)
                .add(db.len() as u64);
            db
        })
    }
}

impl TraceStore for LazyTraceDatabase {
    fn get(&self, key: &str) -> Option<&TraceEntry> {
        self.force().get(key)
    }

    fn get_id(&self, id: &TraceId) -> Option<&TraceEntry> {
        self.force().get_id(id)
    }

    fn trace_keys(&self) -> Vec<String> {
        self.force().trace_keys()
    }

    fn entries<'a>(&'a self) -> Box<dyn Iterator<Item = &'a TraceEntry> + 'a> {
        self.force().entries()
    }

    fn workloads(&self) -> Vec<String> {
        self.force().workloads()
    }

    fn policies(&self) -> Vec<String> {
        self.force().policies()
    }

    fn llc_config(&self) -> Option<&CacheConfig> {
        self.force().llc_config()
    }

    /// Answered from the verified segment directory — does not decode.
    fn len(&self) -> usize {
        self.snapshot.trace_count()
    }

    /// Answered from the verified header — does not decode.
    fn shard_count(&self) -> usize {
        self.snapshot.num_shards().max(1)
    }

    fn shard_of(&self, key: &str) -> usize {
        self.force().shard_of(key)
    }

    fn machines(&self) -> Vec<String> {
        self.force().machines()
    }

    fn prefetchers(&self) -> Vec<String> {
        self.force().prefetchers()
    }

    fn select<'a>(
        &'a self,
        selector: &cachemind_sim::scenario::ScenarioSelector,
    ) -> Box<dyn Iterator<Item = &'a TraceEntry> + 'a> {
        self.force().select(selector)
    }

    fn get_scoped(
        &self,
        id: &TraceId,
        selector: &cachemind_sim::scenario::ScenarioSelector,
    ) -> Option<&TraceEntry> {
        self.force().get_scoped(id, selector)
    }

    fn get_scoped_resolved(
        &self,
        id: &TraceId,
        scope: &cachemind_sim::scenario::ScenarioSelector,
    ) -> Option<&TraceEntry> {
        self.force().get_scoped_resolved(id, scope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TraceDatabaseBuilder;

    fn demo_db() -> ShardedTraceDatabase {
        TraceDatabaseBuilder::quick_demo()
            .workloads(["mcf", "lbm"])
            .policies(["lru", "belady"])
            .shards(3)
            .try_build_sharded()
            .expect("demo build")
    }

    #[test]
    fn round_trip_preserves_every_entry() {
        let db = demo_db();
        let bytes = write_snapshot(&db);
        let loaded = read_snapshot(&bytes).expect("round trip");
        assert_eq!(TraceStore::len(&loaded), TraceStore::len(&db));
        assert_eq!(loaded.num_shards(), db.num_shards());
        assert_eq!(TraceStore::llc_config(&loaded), TraceStore::llc_config(&db));
        assert_eq!(loaded.trace_keys(), db.trace_keys());
        for (a, b) in TraceStore::entries(&loaded).zip(TraceStore::entries(&db)) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.metadata, b.metadata);
            assert_eq!(a.description, b.description);
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.prefetcher, b.prefetcher);
            assert_eq!(a.prefetch_fills, b.prefetch_fills);
            assert_eq!(a.useful_prefetches, b.useful_prefetches);
            assert_eq!(a.prefetch_accuracy.to_bits(), b.prefetch_accuracy.to_bits());
            assert_eq!(a.prefetch_coverage.to_bits(), b.prefetch_coverage.to_bits());
            assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
            assert_eq!(a.frame.rows(), b.frame.rows(), "{} rows diverge", a.id);
            assert_eq!(a.frame.program(), b.frame.program(), "{} program diverges", a.id);
        }
    }

    #[test]
    fn second_save_is_byte_identical() {
        let db = demo_db();
        let first = write_snapshot(&db);
        let loaded = read_snapshot(&first).expect("load");
        let second = write_snapshot(&loaded);
        assert_eq!(first, second, "save -> load -> save must reproduce the byte stream");
    }

    #[test]
    fn loaded_entries_share_program_images() {
        let db = demo_db();
        let loaded = read_snapshot(&write_snapshot(&db)).expect("load");
        // Both mcf entries decode to one shared Arc, like the builder's.
        let a = TraceStore::get(&loaded, "mcf_evictions_lru").expect("entry");
        let b = TraceStore::get(&loaded, "mcf_evictions_belady").expect("entry");
        assert!(std::ptr::eq(a.frame.program(), b.frame.program()), "programs must be interned");
    }

    #[test]
    fn empty_input_is_truncated_not_a_panic() {
        assert_eq!(
            read_snapshot(&[]).unwrap_err(),
            SnapshotError::Truncated { section: "magic".into() }
        );
    }

    #[test]
    fn bad_magic_is_detected_first() {
        let mut bytes = write_snapshot(&demo_db());
        bytes[0] ^= 0xff;
        assert_eq!(read_snapshot(&bytes).unwrap_err(), SnapshotError::BadMagic);
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = write_snapshot(&demo_db());
        bytes[8] = 99; // version LSB
        assert_eq!(
            read_snapshot(&bytes).unwrap_err(),
            SnapshotError::VersionMismatch { found: 99 }
        );
    }
}
