//! [`TraceFrame`] — the database's per-trace "data_frame".

use std::sync::Arc;

use cachemind_sim::addr::Pc;
use cachemind_workloads::program::ProgramImage;

use crate::filter::Predicate;
use crate::record::TraceRow;

/// A frame of trace rows plus the program image that maps PCs to code.
///
/// Equivalent to the paper's pandas `data_frame`, with text columns
/// (`function_name`, `function_code`, `assembly_code`) joined lazily from
/// the shared [`ProgramImage`].
#[derive(Debug, Clone)]
pub struct TraceFrame {
    rows: Vec<TraceRow>,
    program: Arc<ProgramImage>,
}

impl TraceFrame {
    /// Creates a frame over `rows` with `program` as the code-lookup source.
    pub fn new(rows: Vec<TraceRow>, program: Arc<ProgramImage>) -> Self {
        TraceFrame { rows, program }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in stream order.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// The program image behind the frame's PCs.
    pub fn program(&self) -> &ProgramImage {
        &self.program
    }

    /// Rows matching `predicate`, in stream order (borrowed).
    pub fn filter(&self, predicate: &Predicate) -> Vec<&TraceRow> {
        self.rows.iter().filter(|r| predicate.matches(r)).collect()
    }

    /// Number of rows matching `predicate`.
    pub fn count(&self, predicate: &Predicate) -> usize {
        self.rows.iter().filter(|r| predicate.matches(r)).count()
    }

    /// A new frame containing only rows matching `predicate` (cloned).
    pub fn select(&self, predicate: &Predicate) -> TraceFrame {
        TraceFrame {
            rows: self.rows.iter().filter(|r| predicate.matches(r)).cloned().collect(),
            program: Arc::clone(&self.program),
        }
    }

    /// The `function_name` column value for a PC.
    pub fn function_name(&self, pc: Pc) -> Option<&str> {
        self.program.function_of(pc).map(|f| f.name.as_str())
    }

    /// The `function_code` column value for a PC.
    pub fn function_code(&self, pc: Pc) -> Option<&str> {
        self.program.source_of(pc)
    }

    /// The `assembly_code` column value for a PC (a window of disassembly).
    pub fn assembly_code(&self, pc: Pc) -> Option<String> {
        self.program.assembly_window(pc, 2)
    }

    /// Distinct PCs in first-seen order.
    pub fn unique_pcs(&self) -> Vec<Pc> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in &self.rows {
            if seen.insert(r.pc) {
                out.push(r.pc);
            }
        }
        out
    }

    /// Renders the frame as CSV, one row per access, with the paper's
    /// column names (snapshot columns are summarised by their lengths).
    /// Intended for exporting artifacts and interoperating with pandas.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "index,program_counter,memory_address,cache_set_id,evict,miss_type,\
             evicted_address,accessed_address_reuse_distance_numeric,\
             evicted_address_reuse_distance_numeric,accessed_address_recency_numeric,\
             accessed_address_recency,function_name,is_miss\n",
        );
        for r in &self.rows {
            let opt_u64 = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
            let opt_addr = |v: Option<cachemind_sim::addr::Address>| {
                v.map(|a| format!("{a}")).unwrap_or_default()
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.index,
                r.pc,
                r.address,
                r.set.index(),
                r.evict_label(),
                r.miss_type_label(),
                opt_addr(r.evicted_address),
                opt_u64(r.accessed_reuse_distance),
                opt_u64(r.evicted_reuse_distance),
                opt_u64(r.recency),
                r.recency_label(),
                self.function_name(r.pc).unwrap_or(""),
                r.is_miss as u8,
            ));
        }
        out
    }

    /// Distinct set ids, ascending.
    pub fn unique_sets(&self) -> Vec<usize> {
        let mut sets: Vec<usize> = self
            .rows
            .iter()
            .map(|r| r.set.index())
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        sets.sort_unstable();
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::addr::{Address, SetId};

    fn frame() -> TraceFrame {
        let mut rows = Vec::new();
        for i in 0..10u64 {
            rows.push(TraceRow {
                index: i,
                pc: Pc::new(0x400000 + (i % 3) * 4),
                address: Address::new(0x1000 + i * 64),
                kind: cachemind_sim::access::AccessKind::Load,
                set: SetId::new((i % 4) as usize),
                is_miss: i % 2 == 0,
                miss_type: None,
                evicted_address: None,
                accessed_reuse_distance: Some(i),
                evicted_reuse_distance: None,
                recency: None,
                resident_lines: Vec::new(),
                access_history: Vec::new(),
                eviction_scores: Vec::new(),
                bypassed: false,
            });
        }
        TraceFrame::new(rows, Arc::new(ProgramImage::new()))
    }

    #[test]
    fn filter_and_count_agree() {
        let f = frame();
        let p = Predicate::IsMiss(true);
        assert_eq!(f.filter(&p).len(), f.count(&p));
        assert_eq!(f.count(&p), 5);
    }

    #[test]
    fn select_produces_subframe() {
        let f = frame();
        let sub = f.select(&Predicate::PcEquals(Pc::new(0x400000)));
        assert_eq!(sub.len(), 4);
        assert!(sub.rows().iter().all(|r| r.pc == Pc::new(0x400000)));
    }

    #[test]
    fn unique_pcs_and_sets() {
        let f = frame();
        assert_eq!(f.unique_pcs().len(), 3);
        assert_eq!(f.unique_sets(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unmapped_pc_has_no_function() {
        let f = frame();
        assert!(f.function_name(Pc::new(0x400000)).is_none());
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let f = frame();
        let csv = f.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), f.len() + 1);
        assert!(lines[0].starts_with("index,program_counter"));
        assert!(lines[1].contains("Cache Miss") || lines[1].contains("Cache Hit"));
        // Every data row has the same number of fields as the header.
        let fields = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), fields, "row {l}");
        }
    }
}
