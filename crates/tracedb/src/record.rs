//! The row type of the trace database — the paper's per-access schema.

use serde::{Deserialize, Serialize};

use cachemind_sim::addr::{Address, Pc, SetId};
use cachemind_sim::replay::{EvictionRecord, MissType};

/// One per-access record, mirroring the paper's dataframe columns.
///
/// Text-valued columns that derive from the PC (`function_name`,
/// `function_code`, `assembly_code`) are not stored per row; the owning
/// [`crate::frame::TraceFrame`] joins them from the workload's program image
/// on demand, which keeps million-row frames compact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Position within the LLC access stream.
    pub index: u64,
    /// `program_counter`.
    pub pc: Pc,
    /// `memory_address`.
    pub address: Address,
    /// Access kind (`load`/`store`/`fetch`/`prefetch`).
    pub kind: cachemind_sim::access::AccessKind,
    /// `cache_set_id`.
    pub set: SetId,
    /// `is_miss` (and the textual `evict` column: "Cache Hit"/"Cache Miss").
    pub is_miss: bool,
    /// `miss_type`.
    pub miss_type: Option<MissType>,
    /// `evicted_address`.
    pub evicted_address: Option<Address>,
    /// `accessed_address_reuse_distance_numeric`.
    pub accessed_reuse_distance: Option<u64>,
    /// `evicted_address_reuse_distance_numeric`.
    pub evicted_reuse_distance: Option<u64>,
    /// `accessed_address_recency_numeric`.
    pub recency: Option<u64>,
    /// `current_cache_lines` — `(line base address, inserting PC)` snapshot.
    pub resident_lines: Vec<(Address, Pc)>,
    /// `recent_access_history` — most recent first.
    pub access_history: Vec<(Pc, Address)>,
    /// `cache_line_eviction_scores` — `(line base address, score)`.
    pub eviction_scores: Vec<(Address, u64)>,
    /// Whether the fill was bypassed by the policy.
    pub bypassed: bool,
}

impl TraceRow {
    /// The textual `evict` column value.
    pub fn evict_label(&self) -> &'static str {
        if self.is_miss {
            "Cache Miss"
        } else {
            "Cache Hit"
        }
    }

    /// The textual `accessed_address_recency` column value.
    pub fn recency_label(&self) -> &'static str {
        match self.recency {
            None => "first access",
            Some(d) if d <= 64 => "very recent",
            Some(d) if d <= 1024 => "recent",
            Some(d) if d <= 16384 => "distant",
            Some(_) => "very distant",
        }
    }

    /// The textual `miss_type` column value.
    pub fn miss_type_label(&self) -> &'static str {
        match self.miss_type {
            None => "",
            Some(t) => t.label(),
        }
    }

    /// Converts a simulator eviction record into a database row, optionally
    /// dropping the bulky snapshot columns.
    pub fn from_record(record: &EvictionRecord, keep_snapshots: bool) -> Self {
        TraceRow {
            index: record.index,
            pc: record.pc,
            address: record.address,
            kind: record.kind,
            set: record.set,
            is_miss: record.is_miss,
            miss_type: record.miss_type,
            evicted_address: record.evicted_address,
            accessed_reuse_distance: record.accessed_reuse_distance,
            evicted_reuse_distance: record.evicted_reuse_distance,
            recency: record.recency,
            resident_lines: if keep_snapshots { record.resident_lines.clone() } else { Vec::new() },
            access_history: if keep_snapshots { record.access_history.clone() } else { Vec::new() },
            eviction_scores: if keep_snapshots {
                record.eviction_scores.clone()
            } else {
                Vec::new()
            },
            bypassed: record.bypassed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(is_miss: bool, recency: Option<u64>) -> TraceRow {
        TraceRow {
            index: 0,
            pc: Pc::new(0x401e31),
            address: Address::new(0x35e798a637f),
            kind: cachemind_sim::access::AccessKind::Load,
            set: SetId::new(5),
            is_miss,
            miss_type: is_miss.then_some(MissType::Capacity),
            evicted_address: None,
            accessed_reuse_distance: Some(10),
            evicted_reuse_distance: None,
            recency,
            resident_lines: Vec::new(),
            access_history: Vec::new(),
            eviction_scores: Vec::new(),
            bypassed: false,
        }
    }

    #[test]
    fn labels_match_paper_vocabulary() {
        assert_eq!(row(true, None).evict_label(), "Cache Miss");
        assert_eq!(row(false, None).evict_label(), "Cache Hit");
        assert_eq!(row(true, None).miss_type_label(), "Capacity");
        assert_eq!(row(false, Some(10)).recency_label(), "very recent");
        assert_eq!(row(false, Some(100_000)).recency_label(), "very distant");
    }
}
