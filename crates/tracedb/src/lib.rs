//! # cachemind-tracedb
//!
//! The external trace database CacheMind retrieves from (§4.3 of the paper).
//!
//! The store maps trace identifiers of the form
//! `<workload>_evictions_<policy>` (e.g. `lbm_evictions_lru`) to an entry
//! with three fields, exactly as the paper describes:
//!
//! * a **frame** ([`TraceFrame`]) of per-access records following the
//!   paper's 19-column schema (PC, address, set, hit/miss, miss type,
//!   evicted line, reuse distances, recency, function/assembly context,
//!   cache snapshots, eviction scores),
//! * a **metadata** string summarising whole-trace statistics in the
//!   paper's "Cache Performance Summary" format, and
//! * a **description** of the workload and policy.
//!
//! On top of the storage sit the symbolic [`filter`] engine (the backbone
//! of the Sieve retriever) and the [`stats`] "cache statistical expert".
//!
//! # Example
//!
//! ```rust
//! use cachemind_tracedb::prelude::*;
//!
//! let db = TraceDatabaseBuilder::quick_demo().build();
//! let entry = db.get("mcf_evictions_lru").expect("built trace");
//! assert!(entry.metadata.contains("Cache Performance Summary"));
//! let misses = entry.frame.filter(&Predicate::IsMiss(true));
//! assert!(!misses.is_empty());
//! ```

pub mod database;
pub mod filter;
pub mod frame;
pub mod meta;
pub mod record;
pub mod schema;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use database::{BuildError, TraceDatabase, TraceDatabaseBuilder, TraceEntry, TraceId};
pub use filter::Predicate;
pub use frame::TraceFrame;
pub use record::TraceRow;
pub use shard::ShardedTraceDatabase;
pub use snapshot::{
    LazyTraceDatabase, SnapshotError, VerifiedSnapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use stats::{CacheStatisticalExpert, PcStats, SetStats};
pub use store::{fnv64, shard_index, TraceStore};

// The scenario-scope type of the selector-filtered query surface
// ([`TraceStore::select`], [`TraceStore::get_scoped`]), re-exported so
// store users need not depend on `cachemind-sim` directly.
pub use cachemind_sim::scenario::{ScenarioSelector, SelectorParseError};

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::database::{
        BuildError, TraceDatabase, TraceDatabaseBuilder, TraceEntry, TraceId,
    };
    pub use crate::filter::Predicate;
    pub use crate::frame::TraceFrame;
    pub use crate::record::TraceRow;
    pub use crate::shard::ShardedTraceDatabase;
    pub use crate::snapshot::SnapshotError;
    pub use crate::stats::{CacheStatisticalExpert, PcStats, SetStats};
    pub use crate::store::TraceStore;
    pub use crate::{ScenarioSelector, SelectorParseError};
}
