//! Property tests for the trace-database snapshot format.
//!
//! Two families:
//!
//! * **round-trip** — randomly-shaped databases survive save → load → save
//!   with every field bit-identical, the second save byte-identical to the
//!   first, and the loaded store answering `select` / `get_scoped` exactly
//!   like the original;
//! * **corruption** — truncating the byte stream at *every* prefix length
//!   (which covers every section boundary) and flipping a bit at every
//!   byte position must yield a typed [`SnapshotError`] — never a panic,
//!   never a partial database.

use std::sync::Arc;

use cachemind_sim::access::AccessKind;
use cachemind_sim::addr::{Address, Pc, SetId};
use cachemind_sim::config::CacheConfig;
use cachemind_sim::replay::MissType;
use cachemind_tracedb::prelude::*;
use cachemind_tracedb::snapshot::{read_snapshot, write_snapshot};
use cachemind_tracedb::SnapshotError;
use cachemind_workloads::program::{ProgramBuilder, ProgramImage};
use proptest::prelude::*;

/// A tiny deterministic PRNG (splitmix64) so each proptest case derives a
/// whole database shape from one generated seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

fn synth_program(name: &str) -> Arc<ProgramImage> {
    let mut b = ProgramBuilder::new(0x40_0000);
    b.function(
        &format!("{name}_kernel"),
        "for (i = 0; i < n; i++) sum += a[i];",
        &["mov (%rdi),%rax", "add %rax,%rsi", "jne 400000"],
    );
    b.function(&format!("{name}_init"), "memset(a, 0, n);", &["xor %eax,%eax"]);
    Arc::new(b.build())
}

fn synth_row(rng: &mut Mix, index: u64) -> TraceRow {
    let is_miss = rng.chance(2);
    TraceRow {
        index,
        pc: Pc::new(0x40_0000 + rng.below(64) * 4),
        address: Address::new(rng.next() & 0xffff_ffff_ffc0),
        kind: match rng.below(4) {
            0 => AccessKind::Load,
            1 => AccessKind::Store,
            2 => AccessKind::Fetch,
            _ => AccessKind::Prefetch,
        },
        set: SetId::new(rng.below(64) as usize),
        is_miss,
        miss_type: if is_miss {
            match rng.below(4) {
                0 => None,
                1 => Some(MissType::Compulsory),
                2 => Some(MissType::Capacity),
                _ => Some(MissType::Conflict),
            }
        } else {
            None
        },
        evicted_address: rng.chance(3).then(|| Address::new(rng.next() & 0xffff_ffc0)),
        accessed_reuse_distance: rng.chance(2).then(|| rng.below(1 << 20)),
        evicted_reuse_distance: rng.chance(3).then(|| rng.below(1 << 20)),
        recency: rng.chance(2).then(|| rng.below(1 << 16)),
        resident_lines: (0..rng.below(4))
            .map(|_| (Address::new(rng.next() & 0xffff_c0), Pc::new(0x40_0000 + rng.below(64) * 4)))
            .collect(),
        access_history: (0..rng.below(4))
            .map(|_| (Pc::new(0x40_0000 + rng.below(64) * 4), Address::new(rng.next() & 0xffff_c0)))
            .collect(),
        eviction_scores: (0..rng.below(3))
            .map(|_| (Address::new(rng.next() & 0xffff_c0), rng.below(1 << 32)))
            .collect(),
        bypassed: rng.chance(8),
    }
}

/// Builds a randomly-shaped sharded database: random workload/policy label
/// sets, optional machine/prefetcher qualifications, random row payloads,
/// and adversarial float values (NaN, −0.0, subnormals) to pin the
/// bit-exact f64 round-trip.
fn synth_db(seed: u64, shards: usize) -> ShardedTraceDatabase {
    let mut rng = Mix(seed);
    let workload_names = ["wa", "wb", "wλ"];
    let policy_names = ["lru", "belady", "pX"];
    let machines = [None, Some("m1@llc64x4+dram160")];
    let prefetchers = [None, Some("stride4")];
    let programs: Vec<Arc<ProgramImage>> =
        workload_names.iter().map(|w| synth_program(w)).collect();

    let mut entries = Vec::new();
    let n_workloads = 1 + rng.below(workload_names.len() as u64) as usize;
    let n_policies = 1 + rng.below(policy_names.len() as u64) as usize;
    for (w, workload) in workload_names.iter().take(n_workloads).enumerate() {
        for policy in policy_names.iter().take(n_policies) {
            for machine in &machines {
                for prefetcher in &prefetchers {
                    if machine.is_some() && rng.chance(2) {
                        continue; // ragged grids must round-trip too
                    }
                    let rows =
                        (0..rng.below(24)).map(|i| synth_row(&mut rng, i)).collect::<Vec<_>>();
                    let weird = [0.0f64, -0.0, f64::NAN, f64::MIN_POSITIVE / 2.0, 1.5e-300];
                    entries.push(TraceEntry {
                        id: TraceId::qualified(workload, policy, *machine, *prefetcher),
                        frame: TraceFrame::new(rows, Arc::clone(&programs[w])),
                        metadata: format!("summary {} — miss rate {:.3}", workload, 0.25),
                        description: format!("Workload: {workload}. Policy: {policy}."),
                        machine: machine.unwrap_or("primary@64x4").to_owned(),
                        prefetcher: prefetcher.unwrap_or("none").to_owned(),
                        prefetch_fills: rng.below(1 << 20),
                        useful_prefetches: rng.below(1 << 20),
                        prefetch_accuracy: weird[rng.below(5) as usize],
                        prefetch_coverage: f64::from_bits(rng.next()),
                        ipc: 0.5 + (rng.below(1000) as f64) / 500.0,
                    });
                }
            }
        }
    }
    let llc =
        rng.chance(4).then(|| CacheConfig::new("LLC", 6, 4, 6).with_latency(26).with_mshr(16));
    ShardedTraceDatabase::from_entries(entries, shards, llc)
}

fn assert_same_entry(a: &TraceEntry, b: &TraceEntry) {
    assert_eq!(a.id, b.id);
    assert_eq!(a.metadata, b.metadata);
    assert_eq!(a.description, b.description);
    assert_eq!(a.machine, b.machine);
    assert_eq!(a.prefetcher, b.prefetcher);
    assert_eq!(a.prefetch_fills, b.prefetch_fills);
    assert_eq!(a.useful_prefetches, b.useful_prefetches);
    assert_eq!(a.prefetch_accuracy.to_bits(), b.prefetch_accuracy.to_bits(), "{}", a.id);
    assert_eq!(a.prefetch_coverage.to_bits(), b.prefetch_coverage.to_bits(), "{}", a.id);
    assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "{}", a.id);
    assert_eq!(a.frame.rows(), b.frame.rows(), "{} rows diverge", a.id);
    assert_eq!(a.frame.program(), b.frame.program(), "{} program diverges", a.id);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn save_load_save_round_trips(seed in any::<u64>(), shards in 1usize..9) {
        let db = synth_db(seed, shards);
        let first = write_snapshot(&db);
        let loaded = read_snapshot(&first).expect("snapshot loads");

        prop_assert_eq!(loaded.num_shards(), db.num_shards());
        prop_assert_eq!(loaded.trace_keys(), db.trace_keys());
        prop_assert_eq!(loaded.llc_config(), db.llc_config());
        for (a, b) in loaded.entries().zip(db.entries()) {
            assert_same_entry(a, b);
        }

        // Byte stability: a second save reproduces the first byte stream.
        let second = write_snapshot(&loaded);
        prop_assert!(first == second, "save -> load -> save changed the bytes");
    }

    #[test]
    fn loaded_store_answers_queries_identically(seed in any::<u64>()) {
        let db = synth_db(seed, 4);
        let loaded = read_snapshot(&write_snapshot(&db)).expect("snapshot loads");

        let selectors = [
            ScenarioSelector::all(),
            ScenarioSelector::all().with_machine("m1"),
            ScenarioSelector::parse("+stride4").expect("selector"),
            ScenarioSelector::parse("@m1@llc64x4+dram160+stride4").expect("selector"),
        ];
        for selector in &selectors {
            let a: Vec<String> = db.select(selector).map(|e| e.id.key()).collect();
            let b: Vec<String> = loaded.select(selector).map(|e| e.id.key()).collect();
            prop_assert_eq!(a, b, "select diverged under {}", selector);

            for key in db.trace_keys() {
                let id = TraceId::parse(&key).expect("stored keys parse");
                let base = TraceId::new(&id.workload, &id.policy);
                let a = db.get_scoped(&base, selector).map(|e| e.id.key());
                let b = loaded.get_scoped(&base, selector).map(|e| e.id.key());
                prop_assert_eq!(a, b, "get_scoped diverged for {} under {}", key, selector);
            }
        }
    }

    #[test]
    fn corrupted_snapshots_never_panic(seed in any::<u64>()) {
        let db = synth_db(seed, 2);
        let mut bytes = write_snapshot(&db);
        // A random single-bit flip somewhere in the stream.
        let mut rng = Mix(seed ^ 0xdead_beef);
        let pos = rng.below(bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << rng.below(8);
        prop_assert!(read_snapshot(&bytes).is_err(), "bit flip at {} went undetected", pos);
    }
}

/// A small fixed database for the exhaustive corruption sweeps (every
/// prefix length, every byte) — kept tiny so the O(bytes²) truncation scan
/// stays fast.
fn tiny_db() -> ShardedTraceDatabase {
    synth_db(7, 3)
}

#[test]
fn truncation_at_every_prefix_is_a_typed_error() {
    let bytes = write_snapshot(&tiny_db());
    for len in 0..bytes.len() {
        let err = read_snapshot(&bytes[..len])
            .expect_err(&format!("prefix of {len}/{} bytes must not load", bytes.len()));
        // Every prefix is one of the reader's typed failures; which one
        // depends on where the cut lands.
        match err {
            SnapshotError::Truncated { .. }
            | SnapshotError::ChecksumMismatch { .. }
            | SnapshotError::Corrupt { .. } => {}
            other => panic!("unexpected error for prefix {len}: {other:?}"),
        }
    }
}

#[test]
fn bit_flip_at_every_byte_is_detected() {
    let bytes = write_snapshot(&tiny_db());
    for pos in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 1 << (pos % 8);
        assert!(
            read_snapshot(&corrupted).is_err(),
            "flip at byte {pos}/{} went undetected",
            bytes.len()
        );
    }
}

#[test]
fn corruption_errors_are_specifically_typed() {
    let bytes = write_snapshot(&tiny_db());

    // Magic: not a snapshot at all.
    let mut b = bytes.clone();
    b[3] ^= 0x20;
    assert_eq!(read_snapshot(&b).unwrap_err(), SnapshotError::BadMagic);

    // Version: typed mismatch carrying the found version.
    let mut b = bytes.clone();
    b[8] = 42;
    assert_eq!(read_snapshot(&b).unwrap_err(), SnapshotError::VersionMismatch { found: 42 });

    // Header body: flip a byte inside a machine label's text (the first
    // occurrence of the label lives in the header's label table). The
    // structural scan is unaffected — the checksum catches it.
    let needle = b"primary@64x4";
    let pos = bytes
        .windows(needle.len())
        .position(|w| w == needle)
        .expect("machine label interned in the header");
    let mut b = bytes.clone();
    b[pos] ^= 0x01;
    assert_eq!(
        read_snapshot(&b).unwrap_err(),
        SnapshotError::ChecksumMismatch { section: "header".into() }
    );

    // Segment payload: the last byte belongs to the last shard segment.
    let mut b = bytes.clone();
    let last = b.len() - 1;
    b[last] ^= 0x80;
    match read_snapshot(&b).unwrap_err() {
        SnapshotError::ChecksumMismatch { section } => {
            assert!(section.starts_with("shard segment"), "{section}");
        }
        other => panic!("expected a segment checksum failure, got {other:?}"),
    }

    // Truncation inside the magic is named as such.
    assert_eq!(
        read_snapshot(&bytes[..4]).unwrap_err(),
        SnapshotError::Truncated { section: "magic".into() }
    );

    // Trailing garbage after the last segment is corruption, not silence.
    let mut b = bytes.clone();
    b.push(0xAA);
    assert!(matches!(read_snapshot(&b).unwrap_err(), SnapshotError::Corrupt { .. }));
}

#[test]
fn missing_file_surfaces_as_io_error() {
    let err = ShardedTraceDatabase::load("/nonexistent/path/db.snap").unwrap_err();
    assert!(matches!(err, SnapshotError::Io { .. }), "{err:?}");
}
