//! Golden-bytes test for the snapshot format.
//!
//! `tests/fixtures/golden_v1.snap` is a committed snapshot of a small
//! hand-constructed database (no simulation output — the fixture must not
//! move when simulator behaviour changes). Two invariants are pinned:
//!
//! * today's **writer** reproduces the fixture byte-for-byte, and
//! * today's **reader** loads the fixture into the expected entries.
//!
//! If either fails, the format changed: bump
//! [`cachemind_tracedb::SNAPSHOT_VERSION`], regenerate the fixture as
//! `golden_v<N>.snap` (run the `#[ignore]`d `regenerate_golden_fixture`
//! test), and document the change in `docs/SNAPSHOT.md`.

use std::path::PathBuf;
use std::sync::Arc;

use cachemind_sim::access::AccessKind;
use cachemind_sim::addr::{Address, Pc, SetId};
use cachemind_sim::config::CacheConfig;
use cachemind_sim::replay::MissType;
use cachemind_tracedb::prelude::*;
use cachemind_tracedb::snapshot::{read_snapshot, write_snapshot};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_v1.snap")
}

/// The golden database: fully hand-specified, covering both qualified and
/// unqualified trace ids, shared program images, every `Option` arm, the
/// full miss taxonomy, and adversarial floats (−0.0 and a quiet NaN) so
/// bit-exact f64 handling stays pinned.
fn golden_db() -> ShardedTraceDatabase {
    let mut b = cachemind_workloads::program::ProgramBuilder::new(0x40_0000);
    b.function(
        "mainSimpleSort",
        "while (unLo <= unHi) { ... }",
        &["test %al,%al", "jne 4032d7", "mov -0x14(%rbp),%eax"],
    );
    b.function("refresh_potential", "node->potential = ...;", &["mov (%rdi),%rax"]);
    let program = Arc::new(b.build());

    let full_row = TraceRow {
        index: 0,
        pc: Pc::new(0x40_0000),
        address: Address::new(0x7f3a_1b40),
        kind: AccessKind::Load,
        set: SetId::new(13),
        is_miss: true,
        miss_type: Some(MissType::Conflict),
        evicted_address: Some(Address::new(0x7f3a_0a00)),
        accessed_reuse_distance: Some(512),
        evicted_reuse_distance: Some(4096),
        recency: Some(65),
        resident_lines: vec![
            (Address::new(0x7f3a_0a00), Pc::new(0x40_0004)),
            (Address::new(0x7f3a_0a40), Pc::new(0x40_0008)),
        ],
        access_history: vec![(Pc::new(0x40_0008), Address::new(0x7f3a_0a40))],
        eviction_scores: vec![(Address::new(0x7f3a_0a00), 9000)],
        bypassed: false,
    };
    let sparse_row = TraceRow {
        index: 1,
        pc: Pc::new(0x40_0008),
        address: Address::new(0x7f3a_1b80),
        kind: AccessKind::Prefetch,
        set: SetId::new(14),
        is_miss: false,
        miss_type: None,
        evicted_address: None,
        accessed_reuse_distance: None,
        evicted_reuse_distance: None,
        recency: None,
        resident_lines: Vec::new(),
        access_history: Vec::new(),
        eviction_scores: Vec::new(),
        bypassed: true,
    };

    let entries = vec![
        TraceEntry {
            id: TraceId::new("mcf", "lru"),
            frame: TraceFrame::new(
                vec![full_row.clone(), sparse_row.clone()],
                Arc::clone(&program),
            ),
            metadata: "Cache Performance Summary — golden fixture entry".to_owned(),
            description: "Workload: mcf. Replacement Policy: LRU.".to_owned(),
            machine: "LLC@32x4".to_owned(),
            prefetcher: "none".to_owned(),
            prefetch_fills: 0,
            useful_prefetches: 0,
            prefetch_accuracy: 0.0,
            prefetch_coverage: -0.0,
            ipc: 1.25,
        },
        TraceEntry {
            id: TraceId::new("mcf", "belady"),
            frame: TraceFrame::new(vec![sparse_row.clone()], Arc::clone(&program)),
            metadata: "Cache Performance Summary — belady golden entry".to_owned(),
            description: "Workload: mcf. Replacement Policy: Belady.".to_owned(),
            machine: "LLC@32x4".to_owned(),
            prefetcher: "none".to_owned(),
            prefetch_fills: 0,
            useful_prefetches: 0,
            prefetch_accuracy: f64::from_bits(0x7ff8_0000_0000_0001), // quiet NaN, pinned bits
            prefetch_coverage: 0.0,
            ipc: 1.5,
        },
        TraceEntry {
            id: TraceId::qualified(
                "mcf",
                "lru",
                Some("table2@llc2048x16+dram160"),
                Some("stride4"),
            ),
            frame: TraceFrame::new(vec![full_row], Arc::clone(&program)),
            metadata: "Cache Performance Summary — qualified golden entry".to_owned(),
            description: "Workload: mcf. Replacement Policy: LRU. Prefetched.".to_owned(),
            machine: "table2@llc2048x16+dram160".to_owned(),
            prefetcher: "stride4".to_owned(),
            prefetch_fills: 128,
            useful_prefetches: 96,
            prefetch_accuracy: 0.75,
            prefetch_coverage: 0.6,
            ipc: 2.0,
        },
    ];
    let llc = CacheConfig::new("LLC", 5, 4, 6).with_latency(26).with_mshr(16);
    ShardedTraceDatabase::from_entries(entries, 2, Some(llc))
}

#[test]
fn writer_reproduces_golden_bytes() {
    let expected = std::fs::read(fixture_path()).expect(
        "missing tests/fixtures/golden_v1.snap — run \
         `cargo test -p cachemind-tracedb --test snapshot_golden -- --ignored` to generate it",
    );
    let actual = write_snapshot(&golden_db());
    assert_eq!(
        actual, expected,
        "snapshot writer output changed: this is a format change — bump SNAPSHOT_VERSION, \
         regenerate the fixture, and document the new layout in docs/SNAPSHOT.md"
    );
}

#[test]
fn reader_loads_golden_fixture() {
    let bytes = std::fs::read(fixture_path()).expect("golden fixture present");
    let db = read_snapshot(&bytes).expect("golden fixture loads");
    let reference = golden_db();

    assert_eq!(db.num_shards(), 2);
    assert_eq!(db.trace_keys(), reference.trace_keys());
    assert_eq!(db.llc_config(), reference.llc_config());

    let belady = db.get("mcf_evictions_belady").expect("golden entry");
    assert_eq!(belady.prefetch_accuracy.to_bits(), 0x7ff8_0000_0000_0001);
    let lru = db.get("mcf_evictions_lru").expect("golden entry");
    assert_eq!(lru.prefetch_coverage.to_bits(), (-0.0f64).to_bits());
    assert_eq!(lru.frame.rows().len(), 2);
    assert_eq!(lru.frame.rows()[0].miss_type, Some(MissType::Conflict));
    let qualified = db
        .get("mcf_evictions_lru@table2@llc2048x16+dram160+stride4")
        .expect("qualified golden entry");
    assert_eq!(qualified.prefetch_fills, 128);
    assert_eq!(qualified.machine, "table2@llc2048x16+dram160");

    // The three entries share one interned program image after load.
    assert!(std::ptr::eq(lru.frame.program(), belady.frame.program()));
}

/// Regenerates the committed fixture. Run explicitly after an intentional
/// format change (with a version bump):
///
/// ```text
/// cargo test -p cachemind-tracedb --test snapshot_golden -- --ignored
/// ```
#[test]
#[ignore = "writes tests/fixtures/golden_v1.snap; run only to regenerate"]
fn regenerate_golden_fixture() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
    std::fs::write(&path, write_snapshot(&golden_db())).expect("write fixture");
}
