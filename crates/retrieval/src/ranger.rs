//! CacheMind-Ranger: Retrieval via Agentic Neural Generation and Execution
//! Runtime (§3.3).
//!
//! The planner half simulates the code-writing retrieval LLM: given the
//! parsed query and the database schema card, it emits a [`Plan`] ("the
//! generated code"). The runtime half executes the plan over the full
//! database. Because plans iterate whole frames, counts and aggregates are
//! *complete* — the mechanistic reason Ranger repairs the Count and
//! Arithmetic categories that cripple Sieve (Fig. 8).
//!
//! When a plan's filters match nothing, the runtime performs the premise
//! investigation the paper highlights for trick questions: it searches the
//! other traces for the PC and reports where it actually lives.

use cachemind_lang::context::{ContextQuality, Fact, RetrievedContext};
use cachemind_lang::intent::{QueryCategory, QueryIntent, Tier};
use cachemind_tracedb::schema;
use cachemind_tracedb::store::TraceStore;

use crate::optimize::optimize;
use crate::plan::{AggColumn, AggFunc, Plan, PlanError};
use crate::quality::grade;
use crate::retriever::{resolve_trace_slots, Retriever};

/// The Ranger retriever.
#[derive(Debug, Clone)]
pub struct RangerRetriever {
    /// Whether the planner sees the schema card. Without it, plans bind to
    /// wrong column names and retrieval degrades — the "context can
    /// suppress latent knowledge" ablation.
    with_schema: bool,
    /// Sink for the `retrieval.plan_compile` / `retrieval.plan_run` span
    /// histograms — the process-global registry unless an owner (e.g. a
    /// serve engine) redirects it.
    metrics: cachemind_obs::MetricsRegistry,
}

impl Default for RangerRetriever {
    fn default() -> Self {
        RangerRetriever::new()
    }
}

impl RangerRetriever {
    /// Creates the retriever with the schema card enabled.
    pub fn new() -> Self {
        RangerRetriever { with_schema: true, metrics: cachemind_obs::global().clone() }
    }

    /// Removes the schema card from the planner's prompt (ablation).
    pub fn without_schema(mut self) -> Self {
        self.with_schema = false;
        self
    }

    /// Redirects plan-stage telemetry to `metrics` instead of the
    /// process-global registry.
    pub fn with_metrics(mut self, metrics: &cachemind_obs::MetricsRegistry) -> Self {
        self.metrics = metrics.clone();
        self
    }

    /// The system prompt handed to the code-writing model (Figure 3).
    pub fn system_prompt(db: &dyn TraceStore) -> String {
        let workloads = db.workloads();
        let policies = db.policies();
        let mut out = String::from(
            "SYSTEM PROMPT\nYou are a Python code-writing assistant for analyzing cache \
             memory trace data. Your task is to generate Python code that extracts \
             string-formatted answers from a dictionary named loaded_data.\n\n",
        );
        out.push_str(&schema::schema_card(
            &workloads.iter().map(String::as_str).collect::<Vec<_>>(),
            &policies.iter().map(String::as_str).collect::<Vec<_>>(),
        ));
        out.push_str(
            "\nTask Instructions\n\
             - First check matching workload/policy; then check PC/address; finally fall \
             back to metadata.\n\
             - Return a single result string with hit/miss, reuse/recency, relevant \
             metadata summary, and assembly context.\n\
             - If nothing is found, return a clear message.\n\n\
             Output Rules\n\
             - Must set result = \"...\" (a Python string).\n\
             - No markdown, explanations, print, or comments.\n",
        );
        out
    }

    /// The planner: compiles an intent into a plan. `None` when the query
    /// gives the planner nothing to bind to.
    pub fn compile(&self, db: &dyn TraceStore, intent: &QueryIntent) -> Option<Plan> {
        let (workload, policy) = resolve_trace_slots(db, intent, true);
        let fallback_policy = || policy.clone().unwrap_or_else(|| "lru".to_owned());
        match intent.category {
            QueryCategory::HitMiss => Some(Plan::Lookup {
                workload: workload?,
                policy: fallback_policy(),
                pc: intent.pc,
                address: intent.address,
            }),
            QueryCategory::MissRate => {
                if intent.raw.to_lowercase().contains("ipc") {
                    return Some(Plan::WorkloadIpc {
                        workload: workload?,
                        policy: fallback_policy(),
                    });
                }
                match intent.pc {
                    Some(pc) => Some(Plan::PcMissRate {
                        workload: workload?,
                        policy: fallback_policy(),
                        pc,
                    }),
                    None => Some(Plan::WorkloadMissRate {
                        workload: workload?,
                        policy: fallback_policy(),
                    }),
                }
            }
            QueryCategory::PolicyComparison => {
                if intent.raw.to_lowercase().contains("ipc") {
                    return Some(Plan::CompareIpcAcrossPolicies { workload: workload? });
                }
                Some(Plan::CompareAcrossPolicies { workload: workload?, pc: intent.pc })
            }
            QueryCategory::WorkloadAnalysis => {
                if intent.raw.to_lowercase().contains("ipc") {
                    return Some(Plan::CompareIpcAcrossWorkloads { policy: fallback_policy() });
                }
                Some(Plan::CompareAcrossWorkloads { policy: fallback_policy() })
            }
            QueryCategory::Count => Some(Plan::CountRows {
                workload: workload?,
                policy: fallback_policy(),
                pc: intent.pc,
                address: intent.address,
                misses_only: intent.raw.to_lowercase().contains("miss"),
            }),
            QueryCategory::Arithmetic => {
                // Column/function selection needs the schema card; without
                // it the planner guesses the accessed-reuse column.
                let lower = intent.raw.to_lowercase();
                let column = if !self.with_schema {
                    AggColumn::AccessedReuse
                } else if lower.contains("evicted") {
                    AggColumn::EvictedReuse
                } else if lower.contains("recency") {
                    AggColumn::Recency
                } else {
                    AggColumn::AccessedReuse
                };
                let func = if lower.contains("standard deviation") || lower.contains("std") {
                    AggFunc::Std
                } else if lower.contains("sum") || lower.contains("total") {
                    AggFunc::Sum
                } else if lower.contains("max") || lower.contains("largest") {
                    AggFunc::Max
                } else if lower.contains("min") || lower.contains("smallest") {
                    AggFunc::Min
                } else {
                    AggFunc::Mean
                };
                Some(Plan::Aggregate {
                    workload: workload?,
                    policy: fallback_policy(),
                    pc: intent.pc,
                    column,
                    func,
                })
            }
            // Reasoning tier: pull the data tables the analysis needs.
            _ => Some(Plan::ContextBundle {
                workload: workload.or_else(|| db.workloads().first().cloned())?,
                policy: fallback_policy(),
                pc: intent.pc,
            }),
        }
    }

    /// The premise investigation run on an empty result. The scan ranges
    /// over every workload and policy but stays inside the intent's
    /// machine/prefetcher scope — a PC that only exists on another machine
    /// is still a premise violation for this one.
    fn investigate_empty(db: &dyn TraceStore, intent: &QueryIntent) -> Option<Fact> {
        let pc = intent.pc?;
        let homes: Vec<String> = db
            .select(&intent.selector.machine_scope())
            .filter(|e| e.frame.rows().iter().any(|r| r.pc == pc))
            .map(|e| e.id.workload.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let reason = if homes.is_empty() {
            format!("PC {pc} does not appear in any trace")
        } else if let Some(w) = &intent.workload {
            if homes.contains(w) {
                format!("PC {pc} exists in {w} but never with the queried address")
            } else {
                format!("PC {pc} appears only in {}", homes.join(", "))
            }
        } else {
            format!("PC {pc} appears only in {}", homes.join(", "))
        };
        Some(Fact::PremiseViolation { reason })
    }
}

impl Retriever for RangerRetriever {
    fn name(&self) -> &'static str {
        "ranger"
    }

    fn retrieve(&self, db: &dyn TraceStore, intent: &QueryIntent) -> RetrievedContext {
        let compile_span = self.metrics.span(cachemind_obs::names::RETRIEVAL_PLAN_COMPILE);
        let compiled = self.compile(db, intent);
        compile_span.finish();
        let Some(plan) = compiled else {
            return RetrievedContext::empty("ranger");
        };
        // Execute the optimized rewrite (pushdown + collapse + hoisting);
        // the rewrite-equivalence harness pins its facts byte-identical to
        // the naive plan's. The *naive* plan stays the one rendered for
        // code-generation answers below — the optimizer accelerates
        // execution without changing what "the generated code" looks like.
        let optimized = optimize(plan.clone(), &intent.selector);
        let run_span = self.metrics.span(cachemind_obs::names::RETRIEVAL_PLAN_RUN);
        let run_result = optimized.run_scoped(db, &intent.selector.machine_scope());
        run_span.finish();
        let mut facts = match run_result {
            Ok(facts) => facts,
            Err(PlanError::EmptyResult) => {
                let mut facts = Vec::new();
                if let Some(violation) = Self::investigate_empty(db, intent) {
                    facts.push(violation);
                }
                facts
            }
            Err(PlanError::UnknownTrace(_)) => Vec::new(),
        };
        // Code-generation questions get the generated program itself.
        if intent.category == QueryCategory::CodeGen {
            facts.push(Fact::Snippet {
                title: "Generated retrieval code".to_owned(),
                text: plan.render_code(),
            });
        }
        let mut quality = grade(intent, &facts);
        // Ranger's reasoning bundles are data-dense but *narrow*: no policy
        // descriptions or assembly context. The paper observes exactly this
        // (Sieve 84.8% vs Ranger 64.8% on the reasoning tier).
        if intent.category.tier() == Tier::Reasoning
            && intent.category != QueryCategory::CodeGen
            && quality == ContextQuality::High
        {
            quality = ContextQuality::Medium;
        }
        RetrievedContext { facts, quality, retriever: "ranger".to_owned() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_tracedb::{TraceDatabase, TraceDatabaseBuilder};

    fn db() -> TraceDatabase {
        TraceDatabaseBuilder::quick_demo().build()
    }

    fn intent(db: &TraceDatabase, q: &str) -> QueryIntent {
        let workloads = db.workloads();
        let policies = db.policies();
        QueryIntent::parse(
            q,
            &workloads.iter().map(String::as_str).collect::<Vec<_>>(),
            &policies.iter().map(String::as_str).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn count_is_complete_under_ranger() {
        let db = db();
        let entry = db.get("astar_evictions_lru").unwrap();
        let pc = entry.frame.rows()[0].pc;
        let truth = entry.frame.rows().iter().filter(|r| r.pc == pc).count() as u64;
        let q = format!("How many times did PC {pc} appear in astar under LRU?");
        let ctx = RangerRetriever::new().retrieve(&db, &intent(&db, &q));
        let Some(Fact::CountValue { value, complete, .. }) = ctx.facts.first() else {
            panic!("expected count fact: {:?}", ctx.facts);
        };
        assert!(*complete);
        assert_eq!(*value, truth);
        assert_eq!(ctx.quality, ContextQuality::High);
    }

    #[test]
    fn arithmetic_selects_evicted_column() {
        let db = db();
        let q = "What is the average evicted reuse distance for the lbm workload with LRU?";
        let plan = RangerRetriever::new().compile(&db, &intent(&db, q)).unwrap();
        assert!(matches!(
            plan,
            Plan::Aggregate { column: AggColumn::EvictedReuse, func: AggFunc::Mean, .. }
        ));
    }

    #[test]
    fn schema_ablation_breaks_column_binding() {
        let db = db();
        let q = "What is the average evicted reuse distance for the lbm workload with LRU?";
        let plan = RangerRetriever::new().without_schema().compile(&db, &intent(&db, q)).unwrap();
        assert!(matches!(plan, Plan::Aggregate { column: AggColumn::AccessedReuse, .. }));
    }

    #[test]
    fn ipc_questions_compile_to_ipc_plans() {
        let db = db();
        let q = "What is the estimated IPC for mcf under LRU?";
        let plan = RangerRetriever::new().compile(&db, &intent(&db, q)).unwrap();
        assert!(matches!(plan, Plan::WorkloadIpc { .. }), "got {plan:?}");
        let ctx = RangerRetriever::new().retrieve(&db, &intent(&db, q));
        let Some(Fact::NumericValue { value, what, .. }) = ctx.facts.first() else {
            panic!("expected an IPC fact: {:?}", ctx.facts);
        };
        assert!(what.contains("machine"), "answer must cite the machine: {what}");
        assert!((value - db.get("mcf_evictions_lru").unwrap().ipc).abs() < 1e-6);

        let q = "Which policy gives the highest IPC on mcf?";
        let plan = RangerRetriever::new().compile(&db, &intent(&db, q)).unwrap();
        assert!(matches!(plan, Plan::CompareIpcAcrossPolicies { .. }), "got {plan:?}");

        // Workload rankings by IPC must rank by IPC, not by miss rate.
        let q = "Which workload has the highest IPC under LRU?";
        let plan = RangerRetriever::new().compile(&db, &intent(&db, q)).unwrap();
        assert!(matches!(plan, Plan::CompareIpcAcrossWorkloads { .. }), "got {plan:?}");
        let ctx = RangerRetriever::new().retrieve(&db, &intent(&db, q));
        for fact in &ctx.facts {
            let Fact::PolicyValue { policy: w, value, metric } = fact else {
                panic!("expected per-workload facts: {:?}", ctx.facts)
            };
            assert!(metric.contains("IPC"), "{metric}");
            let entry = db.get(&format!("{w}_evictions_lru")).unwrap();
            assert!((value - entry.ipc).abs() < 1e-6, "{w}: {value} vs {}", entry.ipc);
        }
    }

    #[test]
    fn selector_scope_picks_the_machine_a_plan_answers_from() {
        use cachemind_sim::config::MachineConfig;
        use cachemind_sim::scenario::ScenarioSelector;
        use cachemind_tracedb::database::TraceId;
        use cachemind_tracedb::store::TraceStore;

        let db = TraceDatabaseBuilder::quick_demo()
            .workloads(["mcf"])
            .policies(["lru"])
            .machine(MachineConfig::preset("table2").expect("preset"))
            .machine(MachineConfig::preset("small").expect("preset"))
            .build();
        let plan = Plan::WorkloadIpc { workload: "mcf".into(), policy: "lru".into() };

        // Unscoped: the primary machine answers, exactly as before.
        let unscoped = plan.run(&db).expect("primary runs");
        let primary = db.get("mcf_evictions_lru").unwrap();
        let Fact::NumericValue { value, what, .. } = &unscoped[0] else { panic!("IPC fact") };
        assert!((value - primary.ipc).abs() < 1e-6);
        assert!(what.contains(&primary.machine), "{what}");

        // Scoped: each machine cites its own label and IPC.
        for name in ["table2", "small"] {
            let scope = ScenarioSelector::all().with_machine(name);
            let entry = db.get_scoped(&TraceId::new("mcf", "lru"), &scope).expect("scoped entry");
            let facts = plan.run_scoped(&db, &scope).expect("scoped run");
            let Fact::NumericValue { value, what, .. } = &facts[0] else { panic!("IPC fact") };
            assert!((value - entry.ipc).abs() < 1e-6, "{name}: {value} vs {}", entry.ipc);
            assert!(what.contains(&entry.machine), "{name}: {what}");
            assert!(entry.machine.starts_with(&format!("{name}@")));
        }

        // End-to-end through the retriever: the inline @machine syntax
        // scopes retrieval without any new plumbing at the call site.
        let q = "What is the estimated IPC for mcf@small under LRU?";
        let ctx = RangerRetriever::new().retrieve(&db, &intent(&db, q));
        let Some(Fact::NumericValue { value, what, .. }) = ctx.facts.first() else {
            panic!("expected an IPC fact: {:?}", ctx.facts);
        };
        let small = db
            .get_scoped(&TraceId::new("mcf", "lru"), &ScenarioSelector::all().with_machine("small"))
            .unwrap();
        assert!((value - small.ipc).abs() < 1e-6);
        assert!(what.contains(&small.machine), "{what}");
    }

    #[test]
    fn empty_result_triggers_premise_investigation() {
        let db = db();
        let mcf_pc = db.get("mcf_evictions_lru").unwrap().frame.rows()[0].pc;
        let q = format!("Does PC {mcf_pc} hit in the cache on lbm under LRU?");
        let ctx = RangerRetriever::new().retrieve(&db, &intent(&db, &q));
        let reason = ctx.premise_violation().expect("violation detected");
        assert!(reason.contains("mcf"), "reason: {reason}");
    }

    #[test]
    fn reasoning_bundles_are_graded_medium() {
        let db = db();
        let pc = db.get("astar_evictions_lru").unwrap().frame.rows()[0].pc;
        let q = format!("Why does Belady outperform LRU on PC {pc} in astar?");
        let ctx = RangerRetriever::new().retrieve(&db, &intent(&db, &q));
        assert_eq!(ctx.quality, ContextQuality::Medium);
    }

    #[test]
    fn system_prompt_matches_figure3() {
        let db = db();
        let prompt = RangerRetriever::system_prompt(&db);
        assert!(prompt.contains("Python code-writing assistant"));
        assert!(prompt.contains("loaded_data"));
        assert!(prompt.contains("program_counter"));
        assert!(prompt.contains("result = \"...\""));
    }
}
