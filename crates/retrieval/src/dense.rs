//! The dense-embedding baseline (LlamaIndex-style RAG, §6.2).
//!
//! Trace rows are chunked to text, embedded with
//! [`cachemind_lang::embed::HashedEmbedder`], and retrieved by cosine
//! top-k. The paper's diagnosis applies verbatim: "cosine similarity over
//! embeddings ... fails for microarchitectural traces where records differ
//! only by small numerical or bit-level changes. As a result,
//! embedding-based retrievers often return imprecise or incorrect context"
//! — which is exactly what the probe evaluation (Figure 9) measures.

use cachemind_lang::context::{Fact, RetrievedContext};
use cachemind_lang::intent::QueryIntent;
use cachemind_lang::vector::VectorStore;
use cachemind_tracedb::database::TraceId;
use cachemind_tracedb::store::TraceStore;

use crate::quality::grade;
use crate::retriever::Retriever;

/// What a stored chunk points back to.
#[derive(Debug, Clone)]
enum ChunkRef {
    /// A whole-trace summary chunk.
    Summary { key: String },
    /// One trace row.
    Row { key: String, row: usize },
}

/// The dense-index retriever.
#[derive(Debug)]
pub struct DenseIndexRetriever {
    store: VectorStore,
    refs: Vec<ChunkRef>,
    top_k: usize,
}

impl DenseIndexRetriever {
    /// Indexes the database: one summary chunk per trace plus every
    /// `stride`-th row (stride 1 = all rows).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn build(db: &dyn TraceStore, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        let mut store = VectorStore::new(64);
        let mut refs = Vec::new();
        for entry in db.entries() {
            let key = entry.id.key();
            store.add(
                &format!("{key}:summary"),
                &format!("TRACE_ID: {key} DESCRIPTION: {} {}", entry.description, entry.metadata),
            );
            refs.push(ChunkRef::Summary { key: key.clone() });
            for (i, row) in entry.frame.rows().iter().enumerate().step_by(stride) {
                store.add(
                    &format!("{key}:{i}"),
                    &format!(
                        "TRACE_ID: {key} program_counter={} memory_address={} \
                         cache_set_id={} evict={} reuse_distance={}",
                        row.pc,
                        row.address,
                        row.set,
                        row.evict_label(),
                        row.accessed_reuse_distance.unwrap_or(0),
                    ),
                );
                refs.push(ChunkRef::Row { key: key.clone(), row: i });
            }
        }
        DenseIndexRetriever { store, refs, top_k: 3 }
    }

    /// Overrides the number of chunks retrieved per query.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k.max(1);
        self
    }

    /// Number of indexed chunks.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }
}

impl Retriever for DenseIndexRetriever {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn retrieve(&self, db: &dyn TraceStore, intent: &QueryIntent) -> RetrievedContext {
        let hits = self.store.search(&intent.raw, self.top_k);
        let mut facts = Vec::new();
        for hit in hits {
            match &self.refs[hit.index] {
                ChunkRef::Summary { key } => {
                    if let Some(entry) = db.get(key) {
                        facts.push(Fact::Snippet {
                            title: format!("{key} (similarity {:.3})", hit.score),
                            text: format!("{} {}", entry.description, entry.metadata),
                        });
                    }
                }
                ChunkRef::Row { key, row } => {
                    let Some(id) = TraceId::parse(key) else { continue };
                    let Some(entry) = db.get(key) else { continue };
                    let Some(r) = entry.frame.rows().get(*row) else { continue };
                    // The baseline hands whatever row embeds closest to the
                    // query — right or wrong — straight to the generator.
                    facts.push(Fact::Outcome {
                        pc: Some(r.pc),
                        address: Some(r.address),
                        workload: id.workload,
                        policy: id.policy,
                        is_miss: r.is_miss,
                        evicted: r.evicted_address.map(|e| (e, r.evicted_reuse_distance)),
                        inserted_reuse: r.accessed_reuse_distance,
                    });
                }
            }
        }
        let quality = grade(intent, &facts);
        RetrievedContext { facts, quality, retriever: "dense".to_owned() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_tracedb::{TraceDatabase, TraceDatabaseBuilder};

    fn db() -> TraceDatabase {
        TraceDatabaseBuilder::quick_demo().build()
    }

    fn intent(db: &TraceDatabase, q: &str) -> QueryIntent {
        let workloads = db.workloads();
        let policies = db.policies();
        QueryIntent::parse(
            q,
            &workloads.iter().map(String::as_str).collect::<Vec<_>>(),
            &policies.iter().map(String::as_str).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn index_covers_all_traces() {
        let db = db();
        let dense = DenseIndexRetriever::build(&db, 8);
        assert!(dense.len() > db.len(), "at least one chunk per trace plus rows");
    }

    #[test]
    fn retrieval_returns_some_context() {
        let db = db();
        let dense = DenseIndexRetriever::build(&db, 4);
        let entry = db.get("mcf_evictions_lru").unwrap();
        let row = &entry.frame.rows()[0];
        let q = format!("Does PC {} and address {} hit on mcf under LRU?", row.pc, row.address);
        let ctx = dense.retrieve(&db, &intent(&db, &q));
        assert!(!ctx.facts.is_empty());
    }

    #[test]
    fn numeric_confusion_returns_wrong_rows_often() {
        // Ask about specific rows and check how often the retrieved Outcome
        // facts actually match the requested (pc, address) pair — the
        // Figure 9 failure mode. The baseline should be wrong most times.
        let db = db();
        let dense = DenseIndexRetriever::build(&db, 2);
        let entry = db.get("astar_evictions_lru").unwrap();
        let mut exact = 0;
        let mut total = 0;
        for row in entry.frame.rows().iter().step_by(37).take(20) {
            let q = format!(
                "When PC {} and address {} is accessed on the astar workload with LRU \
                 policy, does the cache hit or miss?",
                row.pc, row.address
            );
            let ctx = dense.retrieve(&db, &intent(&db, &q));
            total += 1;
            if ctx.facts.iter().any(|f| {
                matches!(f, Fact::Outcome { pc: Some(p), address: Some(a), .. }
                    if *p == row.pc && *a == row.address)
            }) {
                exact += 1;
            }
        }
        assert!(total == 20);
        assert!(exact < total / 2, "dense retrieval matched {exact}/{total} exactly");
    }
}
