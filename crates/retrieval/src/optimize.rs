//! The plan-rewrite pass: selector pushdown, chain collapse, and
//! multi-step lookup hoisting.
//!
//! Ranger compiles a naive [`Plan`] from the parsed intent; [`optimize`]
//! rewrites it into an equivalent plan that executes faster:
//!
//! 1. **Pushdown** — the [`ScenarioSelector`] machine scope is resolved
//!    once at rewrite time and *baked into* the optimized node, so
//!    execution resolves entries through keyed
//!    [`TraceStore::select`](cachemind_tracedb::store::TraceStore::select)
//!    / [`get_scoped_resolved`](cachemind_tracedb::store::TraceStore::get_scoped_resolved)
//!    paths instead of post-filtering full scans.
//! 2. **Chain collapse** — trivial chains become single nodes:
//!    [`Plan::Lookup`]'s filter-then-take-first becomes the first-match
//!    [`Plan::TakeFirst`]; a filter-free [`Plan::CountRows`] becomes the
//!    frame-length read [`Plan::TraceLen`].
//! 3. **Hoisting** — the four multi-step `Compare*` plans, which resolve
//!    one scoped lookup per ranked value, become a single
//!    [`Plan::BatchRank`] whose runtime scans the scope once and memoizes
//!    every entry by key.
//!
//! The pass is **semantics-free**: for every plan `p` and selector `s`,
//! `optimize(p, s).run_scoped(db, s)` returns byte-identical facts (and
//! errors) to `p.run_scoped(db, s)`. The rewrite-equivalence proptest in
//! `tests/plan_equivalence.rs` pins this over random plans, selectors, and
//! multi-machine databases; `tests/golden_plans.rs` pins the rewritten
//! shapes themselves.

use cachemind_sim::scenario::ScenarioSelector;

use crate::plan::{Plan, RankAxis, RankMetric};

/// Rewrites a plan into an equivalent, faster one for execution under
/// `selector` (see the module docs for the three rewrite families).
///
/// The rewrite is total and idempotent: non-rewritable plans (tables,
/// bundles, aggregates, exploration plans) and already-optimized nodes
/// pass through unchanged. Because optimized nodes bake in the machine
/// scope, the equivalence guarantee is for running the optimized plan
/// under the *same* selector it was optimized for — which is how Ranger
/// drives it: compile, optimize, run, all against one intent.
#[must_use]
pub fn optimize(plan: Plan, selector: &ScenarioSelector) -> Plan {
    let scope = selector.machine_scope();
    match plan {
        Plan::Lookup { workload, policy, pc, address } => {
            Plan::TakeFirst { workload, policy, pc, address, scope }
        }
        Plan::CountRows { workload, policy, pc: None, address: None, misses_only: false } => {
            Plan::TraceLen { workload, policy, scope }
        }
        Plan::CompareIpcAcrossPolicies { workload } => Plan::BatchRank {
            axis: RankAxis::Policies,
            anchor: workload,
            metric: RankMetric::Ipc,
            pc: None,
            scope,
        },
        Plan::CompareIpcAcrossWorkloads { policy } => Plan::BatchRank {
            axis: RankAxis::Workloads,
            anchor: policy,
            metric: RankMetric::Ipc,
            pc: None,
            scope,
        },
        Plan::CompareAcrossPolicies { workload, pc } => Plan::BatchRank {
            axis: RankAxis::Policies,
            anchor: workload,
            metric: RankMetric::MissRate,
            pc,
            scope,
        },
        Plan::CompareAcrossWorkloads { policy } => Plan::BatchRank {
            axis: RankAxis::Workloads,
            anchor: policy,
            metric: RankMetric::MissRate,
            pc: None,
            scope,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_obs::{Counter, MetricsRegistry};
    use cachemind_sim::config::CacheConfig;
    use cachemind_tracedb::database::{TraceEntry, TraceId};
    use cachemind_tracedb::store::TraceStore;
    use cachemind_tracedb::TraceDatabaseBuilder;

    fn db() -> cachemind_tracedb::TraceDatabase {
        TraceDatabaseBuilder::quick_demo().build()
    }

    #[test]
    fn rewrites_produce_the_expected_shapes() {
        let sel = ScenarioSelector::parse("mcf@table2/lru").unwrap();
        let scope = sel.machine_scope();

        let lookup =
            Plan::Lookup { workload: "mcf".into(), policy: "lru".into(), pc: None, address: None };
        assert_eq!(
            optimize(lookup, &sel),
            Plan::TakeFirst {
                workload: "mcf".into(),
                policy: "lru".into(),
                pc: None,
                address: None,
                scope: scope.clone(),
            }
        );

        let bare_count = Plan::CountRows {
            workload: "mcf".into(),
            policy: "lru".into(),
            pc: None,
            address: None,
            misses_only: false,
        };
        assert_eq!(
            optimize(bare_count, &sel),
            Plan::TraceLen { workload: "mcf".into(), policy: "lru".into(), scope: scope.clone() }
        );

        let compare = Plan::CompareIpcAcrossPolicies { workload: "mcf".into() };
        assert_eq!(
            optimize(compare, &sel),
            Plan::BatchRank {
                axis: RankAxis::Policies,
                anchor: "mcf".into(),
                metric: RankMetric::Ipc,
                pc: None,
                scope,
            }
        );
    }

    #[test]
    fn filtered_counts_and_tables_pass_through() {
        let sel = ScenarioSelector::all();
        let filtered = Plan::CountRows {
            workload: "mcf".into(),
            policy: "lru".into(),
            pc: None,
            address: None,
            misses_only: true,
        };
        assert_eq!(optimize(filtered.clone(), &sel), filtered);
        let table = Plan::PerPcTable { workload: "mcf".into(), policy: "lru".into(), limit: 5 };
        assert_eq!(optimize(table.clone(), &sel), table);
    }

    #[test]
    fn optimize_is_idempotent() {
        let sel = ScenarioSelector::parse("@quick_demo").unwrap();
        let plan = Plan::CompareAcrossWorkloads { policy: "lru".into() };
        let once = optimize(plan, &sel);
        assert_eq!(optimize(once.clone(), &sel), once);
    }

    #[test]
    fn optimized_plans_run_byte_identically() {
        let db = db();
        let sel = ScenarioSelector::all();
        let plans = [
            Plan::Lookup { workload: "mcf".into(), policy: "lru".into(), pc: None, address: None },
            Plan::CountRows {
                workload: "lbm".into(),
                policy: "belady".into(),
                pc: None,
                address: None,
                misses_only: false,
            },
            Plan::CompareIpcAcrossPolicies { workload: "mcf".into() },
            Plan::CompareIpcAcrossWorkloads { policy: "lru".into() },
            Plan::CompareAcrossPolicies { workload: "astar".into(), pc: None },
            Plan::CompareAcrossWorkloads { policy: "belady".into() },
        ];
        for plan in plans {
            let naive = plan.run_scoped(&db, &sel);
            let optimized = optimize(plan.clone(), &sel).run_scoped(&db, &sel);
            assert_eq!(naive, optimized, "rewrite changed semantics for {plan:?}");
        }
    }

    /// A store wrapper that counts resolution traffic through the metrics
    /// registry — the pin for the resolve-once fix and for BatchRank's
    /// one-scan contract.
    #[derive(Debug)]
    struct CountingStore {
        inner: cachemind_tracedb::TraceDatabase,
        scoped_lookups: Counter,
        scans: Counter,
    }

    impl CountingStore {
        fn new(registry: &MetricsRegistry) -> Self {
            CountingStore {
                inner: db(),
                scoped_lookups: registry.counter("test.store.scoped_lookups"),
                scans: registry.counter("test.store.scans"),
            }
        }
    }

    impl TraceStore for CountingStore {
        fn get(&self, key: &str) -> Option<&TraceEntry> {
            self.inner.get(key)
        }
        fn trace_keys(&self) -> Vec<String> {
            self.inner.trace_keys()
        }
        fn entries<'a>(&'a self) -> Box<dyn Iterator<Item = &'a TraceEntry> + 'a> {
            TraceStore::entries(&self.inner)
        }
        fn workloads(&self) -> Vec<String> {
            TraceStore::workloads(&self.inner)
        }
        fn policies(&self) -> Vec<String> {
            TraceStore::policies(&self.inner)
        }
        fn llc_config(&self) -> Option<&CacheConfig> {
            TraceStore::llc_config(&self.inner)
        }
        fn len(&self) -> usize {
            TraceStore::len(&self.inner)
        }
        fn select<'a>(
            &'a self,
            selector: &ScenarioSelector,
        ) -> Box<dyn Iterator<Item = &'a TraceEntry> + 'a> {
            self.scans.inc();
            self.inner.select(selector)
        }
        fn get_scoped_resolved(
            &self,
            id: &TraceId,
            scope: &ScenarioSelector,
        ) -> Option<&TraceEntry> {
            self.scoped_lookups.inc();
            self.inner.get_scoped_resolved(id, scope)
        }
    }

    #[test]
    fn multi_step_plans_resolve_each_branch_once_and_batch_rank_scans_once() {
        let registry = MetricsRegistry::new();
        let store = CountingStore::new(&registry);
        let sel = ScenarioSelector::all();
        let plan = Plan::CompareIpcAcrossPolicies { workload: "mcf".into() };

        // Naive execution: exactly one scoped lookup per policy — the
        // machine scope is resolved once per run, not once per branch
        // (each lookup goes through get_scoped_resolved directly).
        let policies = TraceStore::policies(&store).len() as u64;
        let naive = plan.run_scoped(&store, &sel).unwrap();
        assert_eq!(store.scoped_lookups.get(), policies, "one resolved lookup per policy");
        // quick_demo has no qualified entries, so no keyed miss falls
        // through to the linear fallback scan.
        assert_eq!(store.scans.get(), 0, "no fallback scans for unscoped lookups");

        // Optimized execution: zero per-branch lookups, one scoped scan.
        let optimized_plan = optimize(plan, &sel);
        let optimized = optimized_plan.run_scoped(&store, &sel).unwrap();
        assert_eq!(store.scoped_lookups.get(), policies, "BatchRank adds no scoped lookups");
        assert_eq!(store.scans.get(), 1, "BatchRank performs exactly one scan");
        assert_eq!(naive, optimized);
    }
}
