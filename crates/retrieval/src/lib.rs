//! # cachemind-retrieval
//!
//! CacheMind's retrievers (§3 of the paper):
//!
//! * [`SieveRetriever`] — *Symbolic-Indexed Entries for Verifiable
//!   Extraction*: trace-level filtering (workload/policy matching), PC and
//!   address symbolic filters, the cache statistical expert, and context
//!   assembly. Template-driven: precise for anticipated query shapes, blind
//!   to the rest (its slice cap is why Count collapses in Figure 4/8).
//! * [`RangerRetriever`] — *Retrieval via Agentic Neural Generation and
//!   Execution Runtime*: a simulated code-writing model compiles the query
//!   into an executable [`plan::Plan`] (the paper's generated Python,
//!   replaced by a sandboxed DSL) and a runtime executes it against the
//!   full database, so counts and aggregates are complete.
//! * [`DenseIndexRetriever`] — the LlamaIndex-style baseline: chunked
//!   trace text under hashed embeddings with cosine top-k, which confuses
//!   near-identical numeric rows exactly as §6.2 describes.
//!
//! All three implement [`Retriever`] and emit the same
//! [`cachemind_lang::context::RetrievedContext`], so the generator can be
//! held fixed while the retriever is toggled — the paper's central
//! ablation.
//!
//! # Example
//!
//! ```rust
//! use cachemind_retrieval::prelude::*;
//! use cachemind_tracedb::TraceDatabaseBuilder;
//! use cachemind_lang::intent::QueryIntent;
//!
//! let db = TraceDatabaseBuilder::quick_demo().build();
//! let sieve = SieveRetriever::new();
//! let q = "What is the miss rate for the mcf workload under LRU?";
//! let intent = QueryIntent::parse(q, &["astar", "lbm", "mcf"], &["belady", "lru", "mlp", "parrot"]);
//! let ctx = sieve.retrieve(&db, &intent);
//! assert!(!ctx.facts.is_empty());
//! ```

pub mod dense;
pub mod optimize;
pub mod plan;
pub mod probes;
pub mod quality;
pub mod ranger;
pub mod retriever;
pub mod sieve;

pub use dense::DenseIndexRetriever;
pub use optimize::optimize;
pub use plan::{AggColumn, AggFunc, Plan, RankAxis, RankMetric};
pub use probes::{probe_queries, ProbeReport};
pub use ranger::RangerRetriever;
pub use retriever::Retriever;
pub use sieve::SieveRetriever;

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::dense::DenseIndexRetriever;
    pub use crate::optimize::optimize;
    pub use crate::plan::{AggColumn, AggFunc, Plan, RankAxis, RankMetric};
    pub use crate::probes::{probe_queries, ProbeReport};
    pub use crate::ranger::RangerRetriever;
    pub use crate::retriever::Retriever;
    pub use crate::sieve::SieveRetriever;
}
