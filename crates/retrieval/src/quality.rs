//! Context-quality grading and controlled degradation (Figure 5).

use cachemind_lang::context::{ContextQuality, Fact, RetrievedContext};
use cachemind_lang::intent::{QueryCategory, QueryIntent};
use cachemind_lang::profiles::{text_seed, unit_draw};

/// Grades a fact bundle for an intent: `High` when the facts directly
/// answer the category, `Medium` when only supporting material was found,
/// `Low` when nothing useful came back.
pub fn grade(intent: &QueryIntent, facts: &[Fact]) -> ContextQuality {
    if facts.is_empty() {
        return ContextQuality::Low;
    }
    if facts.iter().any(|f| matches!(f, Fact::PremiseViolation { .. })) {
        return ContextQuality::High;
    }
    let direct = facts.iter().any(|f| match intent.category {
        QueryCategory::HitMiss => matches!(f, Fact::Outcome { .. }),
        QueryCategory::MissRate => matches!(f, Fact::MissRate { .. }),
        QueryCategory::PolicyComparison => matches!(f, Fact::PolicyValue { .. }),
        QueryCategory::Count => matches!(f, Fact::CountValue { complete: true, .. }),
        QueryCategory::Arithmetic => matches!(f, Fact::NumericValue { complete: true, .. }),
        // Reasoning categories are satisfied by a rich bundle: statistics
        // plus at least one snippet of descriptive context.
        _ => matches!(f, Fact::Snippet { .. }),
    });
    if direct {
        // Reasoning bundles additionally need breadth to count as High.
        if intent.category.tier() == cachemind_lang::intent::Tier::Reasoning {
            let snippets = facts.iter().filter(|f| matches!(f, Fact::Snippet { .. })).count();
            let numbers = facts
                .iter()
                .filter(|f| {
                    matches!(
                        f,
                        Fact::MissRate { .. }
                            | Fact::PolicyValue { .. }
                            | Fact::NumericValue { .. }
                            | Fact::CountValue { .. }
                    )
                })
                .count();
            if snippets >= 2 && numbers >= 1 {
                ContextQuality::High
            } else {
                ContextQuality::Medium
            }
        } else {
            ContextQuality::High
        }
    } else {
        ContextQuality::Medium
    }
}

/// Deterministically degrades a context bundle to a target quality level —
/// the controlled-retrieval knob behind Figure 5.
///
/// * `High` — returned unchanged.
/// * `Medium` — direct-answer facts are dropped, supporting material kept.
/// * `Low` — everything but (at most) one snippet is dropped.
pub fn degrade(context: &RetrievedContext, target: ContextQuality) -> RetrievedContext {
    let mut out = context.clone();
    match target {
        ContextQuality::High => {}
        ContextQuality::Medium => {
            out.facts.retain(|f| {
                matches!(f, Fact::Snippet { .. })
                    || matches!(f, Fact::CountValue { complete: false, .. })
                    || matches!(f, Fact::NumericValue { complete: false, .. })
            });
            out.quality = ContextQuality::Medium;
        }
        ContextQuality::Low => {
            out.facts.truncate(0);
            out.quality = ContextQuality::Low;
        }
    }
    // Degradation can only lower the grade.
    out.quality = out.quality.min(context.quality);
    if target == ContextQuality::Medium && out.facts.is_empty() {
        // Keep one generic snippet so Medium is distinguishable from Low.
        out.facts.push(Fact::Snippet {
            title: "Partially relevant trace summary".to_owned(),
            text: "Matching trace located, but the requested slice was not isolated.".to_owned(),
        });
    }
    out
}

/// Assigns each question to a Low/Medium/High bucket deterministically
/// (one third each), for the Figure 5 sweep.
pub fn bucket_for(question: &str) -> ContextQuality {
    let r = unit_draw(&[text_seed(question), 0xF1 & 0xFF]);
    if r < 1.0 / 3.0 {
        ContextQuality::Low
    } else if r < 2.0 / 3.0 {
        ContextQuality::Medium
    } else {
        ContextQuality::High
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_lang::intent::QueryIntent;

    fn intent(q: &str) -> QueryIntent {
        QueryIntent::parse(q, &["mcf"], &["lru", "belady"])
    }

    #[test]
    fn empty_is_low() {
        let i = intent("miss rate for mcf under lru");
        assert_eq!(grade(&i, &[]), ContextQuality::Low);
    }

    #[test]
    fn direct_fact_is_high() {
        let i = intent("What is the miss rate for PC 0x40 in mcf under lru?");
        let facts = vec![Fact::MissRate { scope: "PC 0x40".into(), percent: 10.0, accesses: 5 }];
        assert_eq!(grade(&i, &facts), ContextQuality::High);
    }

    #[test]
    fn indirect_fact_is_medium() {
        let i = intent("What is the miss rate for PC 0x40 in mcf under lru?");
        let facts = vec![Fact::Snippet { title: "meta".into(), text: "stuff".into() }];
        assert_eq!(grade(&i, &facts), ContextQuality::Medium);
    }

    #[test]
    fn degrade_is_monotone() {
        let i = intent("What is the miss rate for PC 0x40 in mcf under lru?");
        let ctx = RetrievedContext {
            facts: vec![
                Fact::MissRate { scope: "PC 0x40".into(), percent: 10.0, accesses: 5 },
                Fact::Snippet { title: "meta".into(), text: "stuff".into() },
            ],
            quality: grade(
                &i,
                &[Fact::MissRate { scope: "PC 0x40".into(), percent: 10.0, accesses: 5 }],
            ),
            retriever: "sieve".into(),
        };
        let med = degrade(&ctx, ContextQuality::Medium);
        assert_eq!(med.quality, ContextQuality::Medium);
        assert!(!med.facts.iter().any(|f| matches!(f, Fact::MissRate { .. })));
        let low = degrade(&ctx, ContextQuality::Low);
        assert_eq!(low.quality, ContextQuality::Low);
        assert!(low.facts.is_empty());
    }

    #[test]
    fn buckets_cover_all_levels() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..60 {
            seen.insert(bucket_for(&format!("question {i}")));
        }
        assert_eq!(seen.len(), 3);
    }
}
