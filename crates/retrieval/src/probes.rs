//! The Figure 9 probe evaluation: ten trace-grounded queries, retrieval
//! correctness checked against ground truth, retrieval latency measured.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use cachemind_lang::context::{Fact, RetrievedContext};
use cachemind_lang::intent::{QueryCategory, QueryIntent};
use cachemind_tracedb::database::TraceDatabase;
use cachemind_tracedb::stats::CacheStatisticalExpert;

use crate::retriever::Retriever;

/// One probe: a query plus the machinery to verify the retrieved context.
#[derive(Debug, Clone)]
pub struct Probe {
    /// The natural-language query.
    pub question: String,
    /// The category being probed.
    pub category: QueryCategory,
    /// Ground truth to verify retrieval against.
    truth: Truth,
}

#[derive(Debug, Clone)]
enum Truth {
    Outcome {
        pc: cachemind_sim::addr::Pc,
        address: cachemind_sim::addr::Address,
        is_miss: bool,
    },
    MissRatePercent(f64),
    PolicyCount(usize),
    Count(u64),
    Numeric(f64),
    /// The probe is deliberately under-specified; correct retrieval is
    /// impossible, every retriever should fail it.
    Unanswerable,
}

impl Probe {
    /// Whether `ctx` contains the correct evidence for this probe.
    pub fn context_correct(&self, ctx: &RetrievedContext) -> bool {
        match &self.truth {
            Truth::Outcome { pc, address, is_miss } => ctx.facts.iter().any(|f| {
                matches!(f, Fact::Outcome { pc: Some(p), address: Some(a), is_miss: m, .. }
                    if p == pc && a == address && m == is_miss)
            }),
            Truth::MissRatePercent(v) => ctx
                .facts
                .iter()
                .any(|f| matches!(f, Fact::MissRate { percent, .. } if (percent - v).abs() < 0.05)),
            Truth::PolicyCount(n) => {
                ctx.facts.iter().filter(|f| matches!(f, Fact::PolicyValue { .. })).count() >= *n
            }
            Truth::Count(v) => ctx
                .facts
                .iter()
                .any(|f| matches!(f, Fact::CountValue { value, complete: true, .. } if value == v)),
            Truth::Numeric(v) => ctx.facts.iter().any(|f| {
                matches!(f, Fact::NumericValue { value, complete: true, .. }
                    if (value - v).abs() < 1e-6)
            }),
            Truth::Unanswerable => false,
        }
    }
}

/// Builds the ten-probe set from the database's actual ground truth
/// (three hit/miss lookups, two miss rates, one policy comparison, two
/// counts — one deliberately under-specified — and two aggregates).
pub fn probe_queries(db: &TraceDatabase) -> Vec<Probe> {
    let expert = CacheStatisticalExpert::new();
    let mut probes = Vec::new();

    // Three per-access lookups across workloads.
    for (w, idx) in [("astar", 5usize), ("lbm", 17), ("mcf", 29)] {
        let entry = db.get(&format!("{w}_evictions_lru")).expect("trace present");
        // Use the first occurrence of the (pc, address) pair so retrieval
        // and ground truth agree on which record answers the question.
        let row = entry.frame.rows()[idx.min(entry.frame.len() - 1)].clone();
        let first = entry
            .frame
            .rows()
            .iter()
            .find(|r| r.pc == row.pc && r.address == row.address)
            .expect("pair exists");
        probes.push(Probe {
            question: format!(
                "When PC {} and address {} is accessed on the {w} workload with LRU policy, \
                 does the cache hit or miss?",
                row.pc, row.address
            ),
            category: QueryCategory::HitMiss,
            truth: Truth::Outcome { pc: first.pc, address: first.address, is_miss: first.is_miss },
        });
    }

    // Two miss rates: one per-PC, one whole-workload.
    {
        let entry = db.get("mcf_evictions_parrot").expect("trace present");
        let pc = entry.frame.rows()[0].pc;
        let stats = expert.pc_stats(&entry.frame, pc).expect("stats");
        probes.push(Probe {
            question: format!(
                "What is the miss rate for PC {pc} on the mcf workload with PARROT \
                 replacement policy?"
            ),
            category: QueryCategory::MissRate,
            truth: Truth::MissRatePercent(stats.miss_rate() * 100.0),
        });
        let lbm = db.get("lbm_evictions_belady").expect("trace present");
        let rate =
            cachemind_tracedb::meta::extract_percent(&lbm.metadata, "miss rate").expect("rate");
        probes.push(Probe {
            question: "What is the overall miss rate of the lbm workload under Belady?".to_owned(),
            category: QueryCategory::MissRate,
            truth: Truth::MissRatePercent(rate),
        });
    }

    // One cross-policy comparison.
    {
        let entry = db.get("astar_evictions_lru").expect("trace present");
        let pc = entry.frame.rows()[0].pc;
        probes.push(Probe {
            question: format!("Which policy has the lowest miss rate for PC {pc} in astar?"),
            category: QueryCategory::PolicyComparison,
            truth: Truth::PolicyCount(db.policies().len().min(3)),
        });
    }

    // Two counts: one well-posed (full-frame iteration required), one
    // under-specified (no workload named) that every retriever should fail.
    {
        let entry = db.get("astar_evictions_lru").expect("trace present");
        let pc = entry.frame.rows()[0].pc;
        let truth = entry.frame.rows().iter().filter(|r| r.pc == pc).count() as u64;
        probes.push(Probe {
            question: format!("How many times did PC {pc} appear in astar under LRU?"),
            category: QueryCategory::Count,
            truth: Truth::Count(truth),
        });
        probes.push(Probe {
            question: format!("How many times is PC {pc} accessed under LRU?"),
            category: QueryCategory::Count,
            truth: Truth::Unanswerable,
        });
    }

    // Two aggregates.
    {
        let entry = db.get("lbm_evictions_mlp").expect("trace present");
        let pc = entry
            .frame
            .rows()
            .iter()
            .find(|r| r.evicted_reuse_distance.is_some())
            .map(|r| r.pc)
            .expect("eviction with known reuse");
        let values: Vec<f64> = entry
            .frame
            .rows()
            .iter()
            .filter(|r| r.pc == pc)
            .filter_map(|r| r.evicted_reuse_distance.map(|d| d as f64))
            .collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        probes.push(Probe {
            question: format!(
                "What is the average evicted reuse distance of PC {pc} for the lbm workload \
                 with MLP?"
            ),
            category: QueryCategory::Arithmetic,
            truth: Truth::Numeric(mean),
        });

        let entry = db.get("mcf_evictions_belady").expect("trace present");
        let values: Vec<f64> = entry
            .frame
            .rows()
            .iter()
            .filter_map(|r| r.accessed_reuse_distance.map(|d| d as f64))
            .collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        probes.push(Probe {
            question: "What is the mean reuse distance across the mcf workload under Belady?"
                .to_owned(),
            category: QueryCategory::Arithmetic,
            truth: Truth::Numeric(mean),
        });
    }

    probes
}

/// Results of running one retriever over the probe set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeReport {
    /// Retriever name.
    pub retriever: String,
    /// Correctly-retrieved probes.
    pub correct: usize,
    /// Total probes.
    pub total: usize,
    /// Mean retrieval latency in microseconds.
    pub mean_latency_us: f64,
}

impl ProbeReport {
    /// Retrieval success rate in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Runs a retriever over the probe set, checking context correctness and
/// timing each retrieval.
pub fn run_probes(db: &TraceDatabase, retriever: &dyn Retriever, probes: &[Probe]) -> ProbeReport {
    let workloads = db.workloads();
    let policies = db.policies();
    let wrefs: Vec<&str> = workloads.iter().map(String::as_str).collect();
    let prefs: Vec<&str> = policies.iter().map(String::as_str).collect();
    let mut correct = 0;
    let mut total_us = 0.0;
    for probe in probes {
        let intent = QueryIntent::parse(&probe.question, &wrefs, &prefs);
        let start = Instant::now();
        let ctx = retriever.retrieve(db, &intent);
        total_us += start.elapsed().as_secs_f64() * 1e6;
        if probe.context_correct(&ctx) {
            correct += 1;
        }
    }
    ProbeReport {
        retriever: retriever.name().to_owned(),
        correct,
        total: probes.len(),
        mean_latency_us: if probes.is_empty() { 0.0 } else { total_us / probes.len() as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseIndexRetriever;
    use crate::ranger::RangerRetriever;
    use crate::sieve::SieveRetriever;
    use cachemind_tracedb::TraceDatabaseBuilder;

    #[test]
    fn figure9_ordering_holds() {
        let db = TraceDatabaseBuilder::quick_demo().build();
        let probes = probe_queries(&db);
        assert_eq!(probes.len(), 10);

        let sieve = run_probes(&db, &SieveRetriever::new(), &probes);
        let ranger = run_probes(&db, &RangerRetriever::new(), &probes);
        let dense = DenseIndexRetriever::build(&db, 4);
        let dense_report = run_probes(&db, &dense, &probes);

        assert!(
            ranger.correct > sieve.correct,
            "ranger {} vs sieve {}",
            ranger.correct,
            sieve.correct
        );
        assert!(
            sieve.correct > dense_report.correct,
            "sieve {} vs dense {}",
            sieve.correct,
            dense_report.correct
        );
        // Paper magnitudes: Ranger 9/10, Sieve 6/10, LlamaIndex 1/10.
        assert!(ranger.correct >= 8, "ranger {}", ranger.correct);
        assert!((4..=7).contains(&sieve.correct), "sieve {}", sieve.correct);
        assert!(dense_report.correct <= 3, "dense {}", dense_report.correct);
    }
}
