//! The retriever interface shared by Sieve, Ranger and the dense baseline.

use cachemind_lang::context::RetrievedContext;
use cachemind_lang::intent::QueryIntent;
use cachemind_tracedb::store::TraceStore;

/// A retrieval strategy: maps a parsed query to a context bundle over the
/// external trace database.
///
/// Retrievers are written against the [`TraceStore`] trait, so they work
/// identically over a monolithic [`TraceDatabase`] and a
/// [`ShardedTraceDatabase`](cachemind_tracedb::shard::ShardedTraceDatabase)
/// — call sites pass either and the reference coerces.
///
/// [`TraceDatabase`]: cachemind_tracedb::database::TraceDatabase
pub trait Retriever {
    /// Stable retriever name (`"sieve"`, `"ranger"`, `"dense"`).
    fn name(&self) -> &'static str;

    /// Retrieves a context bundle for the query.
    fn retrieve(&self, db: &dyn TraceStore, intent: &QueryIntent) -> RetrievedContext;
}

/// Resolves the (workload, policy) pair an intent refers to, against the
/// database's vocabulary, with optional fuzzy ("semantic") matching for
/// near-miss names. Slots the question text leaves open fall back to the
/// intent's scenario selector (a session-pinned or inline `@` scope)
/// before resolution, so a scoped query binds like an explicit one.
/// Returns `None` for a slot neither the query nor its scope pins down.
pub fn resolve_trace_slots(
    db: &dyn TraceStore,
    intent: &QueryIntent,
    semantic: bool,
) -> (Option<String>, Option<String>) {
    let workloads = db.workloads();
    let policies = db.policies();
    let resolve = |want: Option<String>, vocab: &[String]| -> Option<String> {
        let w = want?;
        if vocab.iter().any(|v| *v == w) {
            return Some(w);
        }
        if semantic {
            // Prefix / containment fallback for morphological variants
            // ("astar's", "belady-opt").
            vocab.iter().find(|v| w.starts_with(v.as_str()) || v.starts_with(&w)).cloned()
        } else {
            None
        }
    };
    (
        resolve(intent.workload.clone().or_else(|| intent.selector.workload.clone()), &workloads),
        resolve(intent.policy.clone().or_else(|| intent.selector.policy.clone()), &policies),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_lang::intent::QueryIntent;
    use cachemind_tracedb::{TraceDatabase, TraceDatabaseBuilder};
    use cachemind_workloads::Scale;

    fn db() -> TraceDatabase {
        TraceDatabaseBuilder::new().workloads(["mcf"]).policies(["lru"]).scale(Scale::Tiny).build()
    }

    #[test]
    fn exact_slots_resolve() {
        let db = db();
        let i = QueryIntent::parse("miss rate for mcf under lru", &["mcf"], &["lru"]);
        let (w, p) = resolve_trace_slots(&db, &i, false);
        assert_eq!(w.as_deref(), Some("mcf"));
        assert_eq!(p.as_deref(), Some("lru"));
    }

    #[test]
    fn semantic_fallback_matches_prefixes() {
        let db = db();
        // "mcfs" is not in the vocabulary; semantic matching recovers it.
        let mut i = QueryIntent::parse("miss rate under lru", &["mcf"], &["lru"]);
        i.workload = Some("mcfs".to_owned());
        let (w, _) = resolve_trace_slots(&db, &i, true);
        assert_eq!(w.as_deref(), Some("mcf"));
        let (w, _) = resolve_trace_slots(&db, &i, false);
        assert_eq!(w, None);
    }
}
