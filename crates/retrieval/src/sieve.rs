//! CacheMind-Sieve: Symbolic-Indexed Entries for Verifiable Extraction
//! (§3.2).
//!
//! The four-stage pipeline of Figure 1:
//!
//! 1. **Trace-level filtering** — workload/policy names extracted from the
//!    query select the `<workload>_evictions_<policy>` store key (with an
//!    optional fuzzy fallback standing in for the sentence-embedding
//!    ranking).
//! 2. **PC and address filtering** — symbolic predicates isolate a compact
//!    slice from the frame.
//! 3. **Cache statistical expert** — per-PC/per-set statistics over the
//!    slice.
//! 4. **Context assembly** — facts, metadata and code snippets are bundled
//!    for the generator.
//!
//! Sieve is deliberately *template-bound*: slices are capped at
//! [`SieveRetriever::slice_cap`] rows, so aggregate questions (Count,
//! Arithmetic) over larger slices come back marked incomplete — the
//! mechanistic root of the universal Count failure in Figures 4 and 8.

use cachemind_lang::context::{Fact, RetrievedContext};
use cachemind_lang::intent::{QueryCategory, QueryIntent};
use cachemind_sim::addr::Pc;
use cachemind_tracedb::database::{policy_description, TraceEntry};
use cachemind_tracedb::filter::Predicate;
use cachemind_tracedb::stats::CacheStatisticalExpert;
use cachemind_tracedb::store::TraceStore;

use crate::quality::grade;
use crate::retriever::{resolve_trace_slots, Retriever};

/// The Sieve retriever.
#[derive(Debug, Clone)]
pub struct SieveRetriever {
    semantic: bool,
    slice_cap: usize,
}

impl Default for SieveRetriever {
    fn default() -> Self {
        SieveRetriever::new()
    }
}

impl SieveRetriever {
    /// Creates the retriever with semantic key matching enabled and the
    /// default 50-row slice cap.
    pub fn new() -> Self {
        SieveRetriever { semantic: true, slice_cap: 50 }
    }

    /// Disables the semantic (fuzzy) stage of trace-level filtering —
    /// the symbolic-only ablation.
    pub fn without_semantic(mut self) -> Self {
        self.semantic = false;
        self
    }

    /// Overrides the slice cap.
    pub fn with_slice_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "slice cap must be positive");
        self.slice_cap = cap;
        self
    }

    /// The maximum number of rows a retrieved slice may carry.
    pub fn slice_cap(&self) -> usize {
        self.slice_cap
    }

    /// Checks whether a PC that produced an empty slice is a premise
    /// violation, and renders the reason (e.g. "PC 0x4037aa appears only in
    /// mcf").
    fn premise_check(
        db: &dyn TraceStore,
        entry: &TraceEntry,
        intent: &QueryIntent,
    ) -> Option<Fact> {
        let pc = intent.pc?;
        let pc_in_trace = entry.frame.rows().iter().any(|r| r.pc == pc);
        if !pc_in_trace {
            let elsewhere: Vec<String> = db
                .select(&intent.selector.machine_scope())
                .filter(|e| e.frame.rows().iter().any(|r| r.pc == pc))
                .map(|e| e.id.workload.clone())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let reason = if elsewhere.is_empty() {
                format!("PC {pc} does not appear in any trace")
            } else {
                format!("PC {pc} appears only in {}", elsewhere.join(", "))
            };
            return Some(Fact::PremiseViolation { reason });
        }
        if let Some(addr) = intent.address {
            let pair_exists = entry.frame.rows().iter().any(|r| r.pc == pc && r.address == addr);
            if !pair_exists {
                return Some(Fact::PremiseViolation {
                    reason: format!("PC {pc} never accesses address {addr} in this trace"),
                });
            }
        }
        None
    }

    fn pc_stats_fact(entry: &TraceEntry, pc: Pc) -> Option<Fact> {
        let stats = CacheStatisticalExpert::new().pc_stats(&entry.frame, pc)?;
        Some(Fact::MissRate {
            scope: format!("PC {pc}"),
            percent: stats.miss_rate() * 100.0,
            accesses: stats.accesses,
        })
    }

    fn assemble_reasoning_bundle(
        &self,
        db: &dyn TraceStore,
        entry: &TraceEntry,
        intent: &QueryIntent,
        scope: &cachemind_sim::scenario::ScenarioSelector,
        facts: &mut Vec<Fact>,
    ) {
        facts.push(Fact::Snippet {
            title: "Workload and policy description".to_owned(),
            text: entry.description.clone(),
        });
        facts.push(Fact::Snippet {
            title: "Trace metadata".to_owned(),
            text: entry.metadata.clone(),
        });
        if let Some(pc) = intent.pc {
            if let Some(f) = Self::pc_stats_fact(entry, pc) {
                facts.push(f);
            }
            if let Some(asm) = entry.frame.assembly_code(pc) {
                let title = match entry.frame.function_name(pc) {
                    Some(name) => format!("Assembly ({name})"),
                    None => "Assembly".to_owned(),
                };
                facts.push(Fact::Snippet { title, text: asm });
            }
            if let Some(src) = entry.frame.function_code(pc) {
                facts.push(Fact::Snippet { title: "Source".to_owned(), text: src.to_owned() });
            }
        }
        // Cross-policy statistics for policy analysis.
        if intent.category == QueryCategory::PolicyAnalysis {
            for policy in &intent.policies {
                if let Some(other) = db.get_scoped_resolved(
                    &cachemind_tracedb::database::TraceId::new(&entry.id.workload, policy),
                    scope,
                ) {
                    if let Some(pc) = intent.pc {
                        if let Some(stats) =
                            CacheStatisticalExpert::new().pc_stats(&other.frame, pc)
                        {
                            facts.push(Fact::PolicyValue {
                                policy: policy.clone(),
                                metric: format!("miss rate % at PC {pc}"),
                                value: stats.miss_rate() * 100.0,
                            });
                        }
                    }
                }
                facts.push(Fact::Snippet {
                    title: format!("Policy {policy}"),
                    text: policy_description(policy).to_owned(),
                });
            }
        }
    }
}

impl Retriever for SieveRetriever {
    fn name(&self) -> &'static str {
        "sieve"
    }

    fn retrieve(&self, db: &dyn TraceStore, intent: &QueryIntent) -> RetrievedContext {
        let (workload, policy) = resolve_trace_slots(db, intent, self.semantic);
        let expert = CacheStatisticalExpert::new();
        let mut facts: Vec<Fact> = Vec::new();
        // The machine scope is resolved once per retrieval and handed to
        // every lookup below — the multi-branch templates (policy and
        // workload comparisons, reasoning bundles) must not re-derive it
        // per branch.
        let scope = intent.selector.machine_scope();

        // Stage 1: trace-level filtering, scoped to the intent's scenario
        // selector. Without a workload Sieve's templates have nothing to
        // bind to (except workload comparisons).
        let entry = workload.as_deref().and_then(|w| {
            let p = policy.as_deref().unwrap_or("lru");
            db.get_scoped_resolved(&cachemind_tracedb::database::TraceId::new(w, p), &scope)
        });

        match intent.category {
            QueryCategory::HitMiss => {
                if let Some(entry) = entry {
                    if let Some(violation) = Self::premise_check(db, entry, intent) {
                        facts.push(violation);
                    } else {
                        // Stage 2: symbolic PC/address filters.
                        let mut pred = Predicate::True;
                        if let Some(pc) = intent.pc {
                            pred = pred.and(Predicate::PcEquals(pc));
                        }
                        if let Some(addr) = intent.address {
                            pred = pred.and(Predicate::AddressEquals(addr));
                        }
                        if let Some(row) = entry.frame.filter(&pred).first() {
                            facts.push(Fact::Outcome {
                                pc: Some(row.pc),
                                address: Some(row.address),
                                workload: entry.id.workload.clone(),
                                policy: entry.id.policy.clone(),
                                is_miss: row.is_miss,
                                evicted: row
                                    .evicted_address
                                    .map(|e| (e, row.evicted_reuse_distance)),
                                inserted_reuse: row.accessed_reuse_distance,
                            });
                        }
                    }
                }
            }
            QueryCategory::MissRate => {
                if let Some(entry) = entry {
                    if intent.raw.to_lowercase().contains("ipc") {
                        // IPC lookups ride the MissRate category; the value
                        // comes from the metadata's scenario sentence, not
                        // the miss-rate percent.
                        if let Some(ipc) = cachemind_tracedb::meta::extract_ipc(&entry.metadata) {
                            // One shared citation phrase across Sieve,
                            // Ranger and the serve layer's cited-label
                            // resolution (see `meta::ipc_citation`).
                            facts.push(Fact::NumericValue {
                                what: cachemind_tracedb::meta::ipc_citation(
                                    &entry.id.workload,
                                    &entry.id.policy,
                                    &entry.metadata,
                                ),
                                value: ipc,
                                complete: true,
                            });
                        }
                    } else if let Some(pc) = intent.pc {
                        if let Some(violation) = Self::premise_check(db, entry, intent) {
                            facts.push(violation);
                        } else if let Some(f) = Self::pc_stats_fact(entry, pc) {
                            facts.push(f);
                        }
                    } else {
                        // Whole-workload rate comes from the metadata string.
                        if let Some(rate) =
                            cachemind_tracedb::meta::extract_percent(&entry.metadata, "miss rate")
                        {
                            facts.push(Fact::MissRate {
                                scope: format!("workload {}", entry.id.workload),
                                percent: rate,
                                accesses: cachemind_tracedb::meta::extract_count(
                                    &entry.metadata,
                                    "total accesses",
                                )
                                .unwrap_or(0),
                            });
                        }
                    }
                }
            }
            QueryCategory::PolicyComparison => {
                if let Some(w) = workload.as_deref() {
                    for policy in db.policies() {
                        let Some(entry) = db.get_scoped_resolved(
                            &cachemind_tracedb::database::TraceId::new(w, &policy),
                            &scope,
                        ) else {
                            continue;
                        };
                        let value = match intent.pc {
                            Some(pc) => {
                                expert.pc_stats(&entry.frame, pc).map(|s| s.miss_rate() * 100.0)
                            }
                            None => cachemind_tracedb::meta::extract_percent(
                                &entry.metadata,
                                "miss rate",
                            ),
                        };
                        if let Some(v) = value {
                            facts.push(Fact::PolicyValue {
                                policy: policy.clone(),
                                metric: "miss rate %".to_owned(),
                                value: v,
                            });
                        }
                    }
                }
            }
            QueryCategory::Count | QueryCategory::Arithmetic => {
                // Sieve has no aggregate template: it returns a *capped*
                // slice and computes over what it sees.
                if let Some(entry) = entry {
                    let mut pred = Predicate::True;
                    if let Some(pc) = intent.pc {
                        pred = pred.and(Predicate::PcEquals(pc));
                    }
                    if let Some(addr) = intent.address {
                        pred = pred.and(Predicate::AddressEquals(addr));
                    }
                    let rows = entry.frame.filter(&pred);
                    let total = rows.len();
                    let visible = &rows[..total.min(self.slice_cap)];
                    let complete = total <= self.slice_cap;
                    if intent.category == QueryCategory::Count {
                        facts.push(Fact::CountValue {
                            what: format!("matching accesses in {}", entry.id),
                            value: visible.len() as u64,
                            complete,
                        });
                    } else {
                        let values: Vec<f64> = visible
                            .iter()
                            .filter_map(|r| {
                                if intent.raw.contains("evicted") {
                                    r.evicted_reuse_distance.map(|d| d as f64)
                                } else {
                                    r.accessed_reuse_distance.map(|d| d as f64)
                                }
                            })
                            .collect();
                        if !values.is_empty() {
                            facts.push(Fact::NumericValue {
                                what: "mean reuse distance".to_owned(),
                                value: values.iter().sum::<f64>() / values.len() as f64,
                                complete,
                            });
                        }
                    }
                }
            }
            QueryCategory::WorkloadAnalysis => {
                let p = policy.as_deref().unwrap_or("lru");
                for w in db.workloads() {
                    if let Some(entry) = db.get_scoped_resolved(
                        &cachemind_tracedb::database::TraceId::new(&w, p),
                        &scope,
                    ) {
                        if let Some(rate) =
                            cachemind_tracedb::meta::extract_percent(&entry.metadata, "miss rate")
                        {
                            facts.push(Fact::PolicyValue {
                                policy: w.clone(),
                                metric: format!("miss rate % under {p}"),
                                value: rate,
                            });
                        }
                        facts.push(Fact::Snippet {
                            title: format!("Workload {w}"),
                            text: entry.description.clone(),
                        });
                    }
                }
            }
            // Reasoning-tier templates: assemble the rich curated bundle.
            _ => {
                if let Some(entry) = entry {
                    self.assemble_reasoning_bundle(db, entry, intent, &scope, &mut facts);
                } else if intent.category == QueryCategory::Concepts {
                    facts.push(Fact::Snippet {
                        title: "Cache geometry".to_owned(),
                        text: db
                            .llc_config()
                            .map(|c| {
                                format!(
                                    "{} sets x {} ways, {}-byte lines ({} KB)",
                                    c.sets(),
                                    c.ways,
                                    c.line_size(),
                                    c.capacity_bytes() / 1024
                                )
                            })
                            .unwrap_or_else(|| "geometry unavailable".to_owned()),
                    });
                }
            }
        }

        let quality = grade(intent, &facts);
        RetrievedContext { facts, quality, retriever: "sieve".to_owned() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_lang::context::ContextQuality;
    use cachemind_tracedb::{TraceDatabase, TraceDatabaseBuilder};
    use cachemind_workloads::Scale;

    fn db() -> TraceDatabase {
        TraceDatabaseBuilder::quick_demo().build()
    }

    fn intent(db: &TraceDatabase, q: &str) -> QueryIntent {
        let workloads = db.workloads();
        let policies = db.policies();
        QueryIntent::parse(
            q,
            &workloads.iter().map(String::as_str).collect::<Vec<_>>(),
            &policies.iter().map(String::as_str).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn ipc_questions_surface_the_stored_ipc_not_the_miss_rate() {
        let db = db();
        let entry = db.get("mcf_evictions_lru").unwrap();
        let q = "What is the estimated IPC for mcf under LRU?";
        let ctx = SieveRetriever::new().retrieve(&db, &intent(&db, q));
        let Some(Fact::NumericValue { value, what, .. }) = ctx.facts.first() else {
            panic!("expected an IPC fact, got {:?}", ctx.facts);
        };
        assert!((value - entry.ipc).abs() < 1e-6, "{value} vs {}", entry.ipc);
        assert!(what.contains("machine"), "fact must cite the machine: {what}");
        // Crucially NOT the miss-rate percent the MissRate arm normally
        // extracts from the same metadata string.
        let miss_pct =
            cachemind_tracedb::meta::extract_percent(&entry.metadata, "miss rate").unwrap();
        assert!((value - miss_pct).abs() > 1.0, "IPC answered with the miss rate");
    }

    #[test]
    fn inline_machine_scope_changes_the_cited_ipc() {
        use cachemind_sim::config::MachineConfig;
        use cachemind_sim::scenario::ScenarioSelector;
        use cachemind_tracedb::database::TraceId;
        use cachemind_tracedb::store::TraceStore;

        let db = TraceDatabaseBuilder::quick_demo()
            .workloads(["mcf"])
            .policies(["lru"])
            .machine(MachineConfig::preset("small").expect("preset"))
            .build();
        let scoped_entry = db
            .get_scoped(&TraceId::new("mcf", "lru"), &ScenarioSelector::all().with_machine("small"))
            .expect("small entry");
        let q = "What is the estimated IPC for mcf@small under LRU?";
        let ctx = SieveRetriever::new().retrieve(&db, &intent(&db, q));
        let Some(Fact::NumericValue { value, what, .. }) = ctx.facts.first() else {
            panic!("expected an IPC fact, got {:?}", ctx.facts);
        };
        assert!((value - scoped_entry.ipc).abs() < 1e-6, "{value} vs {}", scoped_entry.ipc);
        assert!(what.contains(&scoped_entry.machine), "must cite the scoped machine: {what}");
        // And the primary machine answers differently.
        let primary = db.get("mcf_evictions_lru").unwrap();
        assert_ne!(*value, primary.ipc, "scope must change the cited value");
    }

    #[test]
    fn hitmiss_retrieves_exact_outcome() {
        let db = db();
        let entry = db.get("mcf_evictions_lru").unwrap();
        let row = &entry.frame.rows()[10];
        let q = format!(
            "Does the access with PC {} and address {} hit or miss on mcf under LRU?",
            row.pc, row.address
        );
        let ctx = SieveRetriever::new().retrieve(&db, &intent(&db, &q));
        assert_eq!(ctx.quality, ContextQuality::High);
        let Some(Fact::Outcome { is_miss, .. }) = ctx.facts.first() else {
            panic!("expected outcome fact, got {:?}", ctx.facts);
        };
        assert_eq!(*is_miss, row.is_miss);
    }

    #[test]
    fn trick_premise_is_detected() {
        let db = db();
        // A PC that exists in mcf but is asked about on lbm.
        let mcf_pc = db.get("mcf_evictions_lru").unwrap().frame.rows()[0].pc;
        let in_lbm =
            db.get("lbm_evictions_lru").unwrap().frame.rows().iter().any(|r| r.pc == mcf_pc);
        assert!(!in_lbm, "workload PCs must be distinct for this test");
        let q = format!("Does PC {mcf_pc} hit in the cache on lbm under LRU?");
        let ctx = SieveRetriever::new().retrieve(&db, &intent(&db, &q));
        let reason = ctx.premise_violation().expect("premise violation");
        assert!(reason.contains("mcf"), "reason: {reason}");
    }

    #[test]
    fn count_is_truncated_beyond_cap() {
        let db = db();
        // The most frequent PC certainly exceeds a tiny cap.
        let entry = db.get("mcf_evictions_lru").unwrap();
        let pc = entry.frame.rows()[0].pc;
        let q = format!("How many times did PC {pc} appear in mcf under LRU?");
        let ctx = SieveRetriever::new().with_slice_cap(5).retrieve(&db, &intent(&db, &q));
        let Some(Fact::CountValue { complete, value, .. }) = ctx.facts.first() else {
            panic!("expected count fact");
        };
        assert!(!complete);
        assert_eq!(*value, 5);
    }

    #[test]
    fn reasoning_bundle_is_rich() {
        let db = db();
        let pc = db.get("astar_evictions_belady").unwrap().frame.rows()[0].pc;
        let q = format!("Why does Belady outperform LRU on PC {pc} in astar?");
        let ctx = SieveRetriever::new().retrieve(&db, &intent(&db, &q));
        assert_eq!(ctx.quality, ContextQuality::High);
        let snippets = ctx.facts.iter().filter(|f| matches!(f, Fact::Snippet { .. })).count();
        assert!(snippets >= 2, "bundle snippets: {snippets}");
        assert!(ctx.facts.iter().any(|f| matches!(f, Fact::PolicyValue { .. })));
    }

    #[test]
    fn policy_comparison_covers_all_policies() {
        let db = db();
        let pc = db.get("astar_evictions_lru").unwrap().frame.rows()[0].pc;
        let q = format!("Which policy has the lowest miss rate for PC {pc} in astar?");
        let ctx = SieveRetriever::new().retrieve(&db, &intent(&db, &q));
        let policies: Vec<&str> = ctx
            .facts
            .iter()
            .filter_map(|f| match f {
                Fact::PolicyValue { policy, .. } => Some(policy.as_str()),
                _ => None,
            })
            .collect();
        assert!(policies.len() >= 3, "got {policies:?}");
    }

    #[test]
    fn workload_comparison_uses_metadata() {
        let db = db();
        let q = "Which workload has the highest cache miss rate under MLP?";
        let ctx = SieveRetriever::new().retrieve(&db, &intent(&db, q));
        let names: Vec<&str> = ctx
            .facts
            .iter()
            .filter_map(|f| match f {
                Fact::PolicyValue { policy, .. } => Some(policy.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names.len(), 3, "got {names:?}");
    }

    #[test]
    fn scale_small_exists_for_integration() {
        // Guard: Scale::Small stays available for heavier tests elsewhere.
        let _ = Scale::Small;
    }
}
